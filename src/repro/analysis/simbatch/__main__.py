"""Command-line entry point: ``python -m repro.analysis.simbatch <paths>``.

Exits 1 when any violation is found, 0 on a clean tree.  With
``--report [FILE]`` the reorder oracle is written (default
``BATCH.json``) and the exit status still reflects findings.
``--check-opportunities`` runs the SB007 coverage audit — loops the
analysis proves batchable that no ``@batchable`` contract covers —
instead of the SB contract rules.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.findings import (
    add_baseline_arguments,
    apply_baseline,
    findings_json,
)
from repro.analysis.simbatch.engine import (
    TOOL,
    analyze_sources,
    build,
    build_report,
    opportunity_violations,
    read_sources,
    solve,
)
from repro.analysis.simbatch.rules import OPPORTUNITY_RULE, OPPORTUNITY_RULE_CODE, RULES


def _list_rules() -> str:
    lines = ["simbatch rule catalogue:", ""]
    for rule in RULES:
        scope = "sim scope only" if rule.sim_scope_only else "all files"
        lines.append(f"  {rule.code}  {rule.title}  [{scope}]")
        lines.append(f"         {rule.explanation}")
    lines.append(
        f"  {OPPORTUNITY_RULE_CODE}  {OPPORTUNITY_RULE.title}  "
        "[sim scope only; --check-opportunities only]"
    )
    lines.append(f"         {OPPORTUNITY_RULE.explanation}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.simbatch",
        description=(
            "Static loop-dependence & batching-safety analysis for the "
            "FlatFlash simulator."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files or directories to analyze as ONE program (directories are "
            "walked for *.py; default src/repro when --report is given)"
        ),
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all), e.g. SB001,SB003",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit findings as JSON (shared analysis-family schema)",
    )
    parser.add_argument(
        "--report",
        nargs="?",
        const="BATCH.json",
        metavar="FILE",
        help=(
            "write the loop-classification reorder oracle to FILE "
            "(default BATCH.json) in addition to reporting findings"
        ),
    )
    parser.add_argument(
        "--check-opportunities",
        action="store_true",
        help=(
            "run the SB007 coverage audit (provably batchable loops nobody "
            "declared) instead of the SB contract rules"
        ),
    )
    add_baseline_arguments(parser)
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0
    if not args.paths:
        if args.report:
            args.paths = ["src/repro"]
        else:
            parser.error(
                "no paths given (try: python -m repro.analysis.simbatch src/repro)"
            )

    select = None
    if args.select:
        select = [
            code.strip().upper() for code in args.select.split(",") if code.strip()
        ]
        known = {rule.code for rule in RULES} | {"SB000", OPPORTUNITY_RULE_CODE}
        unknown = sorted(set(select) - known)
        if unknown:
            parser.error(
                f"unknown rule code(s): {', '.join(unknown)} (see --list-rules)"
            )

    try:
        sources = read_sources(args.paths)
    except (OSError, UnicodeDecodeError) as error:
        print(f"simbatch: cannot read input: {error}", file=sys.stderr)
        return 2
    if not sources:
        print("simbatch: no Python files found under the given paths", file=sys.stderr)
        return 0

    if args.check_opportunities:
        violations = opportunity_violations(sources)
    else:
        violations = analyze_sources(sources, select=select)

    if args.report:
        program, _errors = build(sources)
        report = build_report(program, solve(program))
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        summary = report["summary"]
        print(
            f"simbatch: wrote {args.report} — "
            f"{summary['loops']} loop(s): {summary['vectorizable']} vectorizable, "
            f"{summary['reduction']} reduction, "
            f"{summary['order_dependent']} order-dependent; "
            f"{summary['certified_regions']}/{summary['regions']} "
            f"region(s) certified"
        )

    violations, done = apply_baseline(args, TOOL, violations, len(sources))
    if done is not None:
        return done

    if args.json:
        print(findings_json(TOOL, violations, files_checked=len(sources)))
        return 1 if violations else 0

    for violation in violations:
        print(violation.format())
    if violations:
        print(f"\nsimbatch: {len(violations)} violation(s) in {len(sources)} file(s)")
        return 1
    print(f"simbatch: {len(sources)} file(s) clean")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped into `head`
        sys.exit(0)
