"""simcost path evaluation: per-path cost & counter summaries.

For every function in the program this module computes a list of
control-flow **paths**, each carrying interval-valued effect maps:

* ``charges`` — how many times each cost atom (``LatencyConfig`` field)
  was charged to the sim clock via ``clock.advance`` on this path,
* ``returned`` — which atoms compose the path's returned ``TimeNs``
  value (the dominant idiom: components *return* costs and a central
  charge point advances the sum),
* ``counters`` — the delta of each stat leg (counter name, or
  ``ratio:total/hit/miss``, or ``latency:samples``).

Intervals are ``(lo, hi)`` with ``hi = None`` for loop-unbounded
effects; a path whose effects went through a widening join is marked
``imprecise`` and exempt from equality checks (rule SC004).

Branches fork paths (recording the branch condition for COSTS.json);
``RatioStat.record(<symbolic>)`` forks a hit and a miss path; loops and
``except`` handlers widen.  Calls are resolved through the call edges
the simeffect scanner already computed and inlined as *joined* callee
summaries, solved by memoized recursion over the call graph.

Accounting events detected during evaluation become rules SC001–SC003:

* SC001 — a statement discards the ``TimeNs`` result of a call whose
  callee neither advances the clock nor books the cost to a
  ``*background_ns`` counter: simulated time evaporates.
* SC002 — a value already charged (advanced, or booked to a background
  counter, transitively through sums and callee returns) is charged
  again on the same path: double accounting.
* SC003 — ``clock.advance`` with a bare numeric literal: the delta is
  not traceable to a ``LatencyConfig`` field or ``TimeNs`` expression.
"""

from __future__ import annotations

import ast
import builtins
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.simeffect.model import FunctionInfo, Program
from repro.analysis.simcost.model import (
    CLOCK_ADVANCE,
    CLOCK_ADVANCE_TO,
    COUNTER_ADD,
    HISTOGRAM_EXTEND,
    HISTOGRAM_RECORD,
    LATENCY_EXTEND,
    LATENCY_RECORD,
    RATIO_RECORD,
    RUNTIME_COST_ATTRS,
    CostModel,
    StatBinding,
    registry_stat,
)

#: Names the single-candidate call-edge fallback must never claim.
_PY_BUILTINS = frozenset(dir(builtins))

#: Most paths a function may fork into before everything is joined.
MAX_LIVE_PATHS = 40
#: Most finished paths kept per function (the rest are joined).
MAX_FINISHED_PATHS = 64
#: Longest rendered branch-condition string.
MAX_COND_CHARS = 60

Interval = Tuple[int, Optional[int]]

ZERO: Interval = (0, 0)
ONE: Interval = (1, 1)
UNBOUNDED: Interval = (0, None)


def iv_add(a: Interval, b: Interval) -> Interval:
    hi = None if a[1] is None or b[1] is None else a[1] + b[1]
    return (a[0] + b[0], hi)


def iv_join(a: Interval, b: Interval) -> Interval:
    hi = None if a[1] is None or b[1] is None else max(a[1], b[1])
    return (min(a[0], b[0]), hi)


def iv_scale(a: Interval, k: int) -> Interval:
    hi = None if a[1] is None else a[1] * k
    return (a[0] * k, hi)


def iv_widen(a: Interval) -> Interval:
    """A loop/handler may repeat or skip the effect: (lo, hi) -> (0, None)."""
    if a == ZERO:
        return ZERO
    return UNBOUNDED


def iv_exact(a: Interval) -> bool:
    return a[1] is not None and a[0] == a[1]


def _merge(into: Dict[str, Interval], key: str, delta: Interval) -> None:
    into[key] = iv_add(into.get(key, ZERO), delta)


class CostVal:
    """A symbolic cost value: atom composition + charge provenance."""

    __slots__ = ("atoms", "literal", "imprecise", "charged", "sources")

    def __init__(
        self,
        atoms: Optional[Dict[str, Interval]] = None,
        literal: Optional[int] = None,
        imprecise: bool = False,
        sources: Tuple["CostVal", ...] = (),
    ) -> None:
        self.atoms: Dict[str, Interval] = atoms or {}
        self.literal = literal
        self.imprecise = imprecise
        self.charged = False  # set via Path.charge() bookkeeping
        self.sources = sources


class TupleVal:
    """A tuple value carrying CostVals at some positions."""

    __slots__ = ("items",)

    def __init__(self, items: Sequence[Optional[object]]) -> None:
        self.items = list(items)


class StatVal:
    """A stat primitive held in a local variable."""

    __slots__ = ("binding",)

    def __init__(self, binding: StatBinding) -> None:
        self.binding = binding


class Path:
    """One control-flow path's accumulated accounting state."""

    __slots__ = (
        "charges", "returned", "counters", "conds",
        "imprecise", "raises", "returned_charged", "advanced", "charged_vals",
    )

    def __init__(self) -> None:
        self.charges: Dict[str, Interval] = {}
        self.returned: Dict[str, Interval] = {}
        self.counters: Dict[str, Interval] = {}
        self.conds: List[str] = []
        self.imprecise = False
        self.raises: Optional[str] = None
        self.returned_charged = False
        self.advanced = False
        # id -> CostVal.  The values are kept as strong references so a
        # charged CostVal can never be collected and its id() reused by a
        # later, unrelated value (which would fake a double charge).
        self.charged_vals: Dict[int, "CostVal"] = {}

    def clone(self) -> "Path":
        other = Path()
        other.charges = dict(self.charges)
        other.returned = dict(self.returned)
        other.counters = dict(self.counters)
        other.conds = list(self.conds)
        other.imprecise = self.imprecise
        other.raises = self.raises
        other.returned_charged = self.returned_charged
        other.advanced = self.advanced
        other.charged_vals = dict(self.charged_vals)
        return other

    # -- charge provenance ------------------------------------------------

    def is_charged(self, val: CostVal) -> bool:
        if id(val) in self.charged_vals:
            return True
        return any(self.is_charged(s) for s in val.sources)

    def charge_value(self, val: CostVal) -> None:
        self.charged_vals[id(val)] = val
        for source in val.sources:
            self.charge_value(source)

    # -- effect merging ---------------------------------------------------

    def add_effects(self, other: "Path", widen: bool = False) -> None:
        for key, iv in other.charges.items():
            _merge(self.charges, key, iv_widen(iv) if widen else iv)
        for key, iv in other.counters.items():
            _merge(self.counters, key, iv_widen(iv) if widen else iv)
        if widen:
            if other.charges or other.counters or other.imprecise:
                self.imprecise = True
        else:
            self.imprecise |= other.imprecise
            self.conds.extend(other.conds)
        self.advanced |= other.advanced
        self.charged_vals.update(other.charged_vals)


def join_paths(paths: Sequence[Path]) -> Path:
    """Collapse several paths into one imprecise joined path."""
    joined = Path()
    if not paths:
        return joined
    keys_c: Set[str] = set()
    keys_k: Set[str] = set()
    for path in paths:
        keys_c |= set(path.charges)
        keys_k |= set(path.counters)
    for key in keys_c:
        iv = paths[0].charges.get(key, ZERO)
        for path in paths[1:]:
            iv = iv_join(iv, path.charges.get(key, ZERO))
        joined.charges[key] = iv
    for key in keys_k:
        iv = paths[0].counters.get(key, ZERO)
        for path in paths[1:]:
            iv = iv_join(iv, path.counters.get(key, ZERO))
        joined.counters[key] = iv
    joined.imprecise = True
    joined.advanced = any(p.advanced for p in paths)
    for path in paths:
        joined.charged_vals.update(path.charged_vals)
    return joined


class Frame:
    __slots__ = ("path", "env")

    def __init__(self, path: Path, env: Dict[str, object]) -> None:
        self.path = path
        self.env = env

    def fork(self, cond: Optional[str] = None) -> "Frame":
        path = self.path.clone()
        if cond:
            path.conds.append(cond)
        return Frame(path, dict(self.env))


class Summary:
    """The joined, per-path cost summary of one function."""

    __slots__ = (
        "qualname", "paths", "events", "stat_muts",
        "charges_joined", "counters_joined", "joined_imprecise",
        "returned_atoms", "returned_charged", "returned_imprecise",
        "charges_clock", "background", "time_spec",
    )

    def __init__(
        self,
        qualname: str,
        paths: List[Path],
        events: Set[Tuple[str, int, str]],
        stat_muts: Set[Tuple[int, str]],
        time_spec: Optional[object],
    ) -> None:
        self.qualname = qualname
        self.paths = paths
        self.events = events
        self.stat_muts = stat_muts
        self.time_spec = time_spec
        self.charges_joined: Dict[str, Interval] = {}
        self.counters_joined: Dict[str, Interval] = {}
        self.returned_atoms: Dict[str, Interval] = {}
        self.joined_imprecise = any(p.imprecise for p in paths)
        self.charges_clock = any(p.advanced for p in paths)
        self.returned_charged = any(
            p.returned_charged for p in paths if p.raises is None
        )
        returning = [p for p in paths if p.raises is None]
        self.returned_imprecise = any(p.imprecise for p in returning)
        self._join("charges", "charges_joined", paths)
        self._join("counters", "counters_joined", paths)
        self._join("returned", "returned_atoms", returning)
        if len(paths) > 1:
            for mapping in (self.charges_joined, self.counters_joined):
                if any(not iv_exact(iv) for iv in mapping.values()):
                    self.joined_imprecise = True
            if any(not iv_exact(iv) for iv in self.returned_atoms.values()):
                self.returned_imprecise = True
        self.background = any(
            key.endswith("background_ns") for key in self.counters_joined
        )

    def _join(self, attr: str, out_attr: str, paths: Sequence[Path]) -> None:
        out: Dict[str, Interval] = getattr(self, out_attr)
        keys: Set[str] = set()
        for path in paths:
            keys |= set(getattr(path, attr))
        for key in keys:
            iv: Optional[Interval] = None
            for path in paths:
                piv = getattr(path, attr).get(key, ZERO)
                iv = piv if iv is None else iv_join(iv, piv)
            out[key] = iv if iv is not None else ZERO


def _top_summary(qualname: str, time_spec: Optional[object]) -> Summary:
    """Unknown (recursive) function: a single imprecise path."""
    path = Path()
    path.imprecise = True
    return Summary(qualname, [path], set(), set(), time_spec)


def _cond_str(node: ast.AST, negate: bool = False) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on valid ASTs
        text = "<cond>"
    if len(text) > MAX_COND_CHARS:
        text = text[: MAX_COND_CHARS - 1] + "…"
    return f"not ({text})" if negate else text


def _exc_name(node: Optional[ast.AST]) -> str:
    if node is None:
        return "Exception"
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return "Exception"


def _handler_names(handler: ast.ExceptHandler) -> List[str]:
    if handler.type is None:
        return ["BaseException"]
    nodes = handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    names = []
    for node in nodes:
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Attribute):
            names.append(node.attr)
    return names or ["BaseException"]


class Evaluator:
    """Memoized whole-program cost summarization."""

    def __init__(self, program: Program, model: CostModel) -> None:
        self.program = program
        self.model = model
        self.summaries: Dict[str, Summary] = {}
        self._stack: Set[str] = set()

    def solve(self) -> None:
        for qualname in sorted(self.program.functions):
            fn = self.program.functions[qualname]
            if not fn.seeded:
                self.summarize(qualname)

    def summarize(self, qualname: str) -> Summary:
        cached = self.summaries.get(qualname)
        if cached is not None:
            return cached
        fn = self.program.functions.get(qualname)
        spec = self.model.time_specs.get(qualname)
        if fn is None or fn.seeded or qualname in self._stack:
            return _top_summary(qualname, spec)
        self._stack.add(qualname)
        try:
            summary = _FunctionRunner(self, fn).run()
        finally:
            self._stack.discard(qualname)
        self.summaries[qualname] = summary
        return summary


class _FunctionRunner:
    """Symbolic execution of one function body."""

    def __init__(self, evaluator: Evaluator, fn: FunctionInfo) -> None:
        self.ev = evaluator
        self.program = evaluator.program
        self.model = evaluator.model
        self.fn = fn
        self.time_spec = evaluator.model.time_specs.get(fn.qualname)
        self.events: Set[Tuple[str, int, str]] = set()
        self.stat_muts: Set[Tuple[int, str]] = set()
        self.finished_stack: List[List[Path]] = [[]]
        self.edges: Dict[int, List[str]] = {}
        for edge in fn.calls:
            self.edges.setdefault(edge.line, []).append(edge.callee)

    # -- top level --------------------------------------------------------

    def run(self) -> Summary:
        env: Dict[str, object] = {}
        args = self.fn.node.args
        for arg in list(args.args) + list(args.kwonlyargs):
            if arg.arg in ("self", "cls"):
                continue
            annotated_time = False
            if arg.annotation is not None:
                for sub in ast.walk(arg.annotation):
                    if isinstance(sub, ast.Name) and sub.id == "TimeNs":
                        annotated_time = True
                    if isinstance(sub, ast.Attribute) and sub.attr == "TimeNs":
                        annotated_time = True
            if annotated_time or arg.arg.endswith("_ns"):
                env[arg.arg] = CostVal(imprecise=True)
            else:
                env[arg.arg] = None
        frames = self._exec_block(self._body(), [Frame(Path(), env)])
        finished = self.finished_stack[0]
        for frame in frames:  # fall-through return None
            finished.append(frame.path)
        if len(finished) > MAX_FINISHED_PATHS:
            finished = [join_paths(finished)]
        return Summary(
            self.fn.qualname, finished, self.events, self.stat_muts, self.time_spec
        )

    def _body(self) -> List[ast.stmt]:
        body = list(self.fn.node.body)
        if body and isinstance(body[0], ast.Expr) and isinstance(
            body[0].value, ast.Constant
        ):
            body = body[1:]  # docstring
        return body

    def _finish(self, path: Path) -> None:
        self.finished_stack[-1].append(path)

    def _event(self, code: str, line: int, message: str) -> None:
        self.events.add((code, line, message))

    # -- statements -------------------------------------------------------

    def _exec_block(self, stmts: Sequence[ast.stmt], frames: List[Frame]
                    ) -> List[Frame]:
        for stmt in stmts:
            next_frames: List[Frame] = []
            for frame in frames:
                next_frames.extend(self._exec_stmt(stmt, frame))
            if len(next_frames) > MAX_LIVE_PATHS:
                joined = join_paths([f.path for f in next_frames])
                env = self._join_envs([f.env for f in next_frames])
                next_frames = [Frame(joined, env)]
            frames = next_frames
            if not frames:
                break
        return frames

    def _join_envs(self, envs: List[Dict[str, object]]) -> Dict[str, object]:
        if not envs:
            return {}
        joined: Dict[str, object] = {}
        for key in envs[0]:
            values = [env.get(key) for env in envs]
            if all(isinstance(v, CostVal) for v in values):
                atoms: Dict[str, Interval] = {}
                for v in values:
                    for atom, iv in v.atoms.items():  # type: ignore[union-attr]
                        atoms[atom] = iv_join(atoms.get(atom, ZERO), iv)
                joined[key] = CostVal(
                    atoms=atoms, imprecise=True,
                    sources=tuple(v for v in values),  # type: ignore[misc]
                )
            else:
                joined[key] = None
        return joined

    def _exec_stmt(self, stmt: ast.stmt, frame: Frame) -> List[Frame]:
        if isinstance(stmt, ast.Return):
            value = None
            if stmt.value is not None:
                value = self._eval(stmt.value, frame)
            if self.time_spec is not None:
                self._record_return(value, frame.path)
            self._finish(frame.path)
            return []
        if isinstance(stmt, ast.Raise):
            frame.path.raises = _exc_name(stmt.exc)
            self._finish(frame.path)
            return []
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return []  # rejoins through the loop widening
        if isinstance(stmt, ast.If):
            return self._exec_if(stmt, frame)
        if isinstance(stmt, (ast.While, ast.For)):
            return self._exec_loop(stmt, frame)
        if isinstance(stmt, ast.Try):
            return self._exec_try(stmt, frame)
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self._eval(item.context_expr, frame)
                if item.optional_vars is not None and isinstance(
                    item.optional_vars, ast.Name
                ):
                    frame.env[item.optional_vars.id] = None
            return self._exec_block(stmt.body, [frame])
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, frame)
            for target in stmt.targets:
                self._bind(target, value, frame)
            return [frame]
        if isinstance(stmt, ast.AnnAssign):
            value = self._eval(stmt.value, frame) if stmt.value is not None else None
            self._bind(stmt.target, value, frame)
            return [frame]
        if isinstance(stmt, ast.AugAssign):
            value = self._eval(stmt.value, frame)
            if isinstance(stmt.target, ast.Name):
                current = frame.env.get(stmt.target.id)
                frame.env[stmt.target.id] = self._combine(
                    current, value, isinstance(stmt.op, ast.Add)
                )
            return [frame]
        if isinstance(stmt, ast.Expr):
            return self._exec_expr_stmt(stmt, frame)
        if isinstance(stmt, ast.Assert):
            self._eval(stmt.test, frame)
            return [frame]
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return [frame]
        if isinstance(stmt, ast.Delete):
            return [frame]
        # anything else: evaluate child expressions for call side effects
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._eval(child, frame)
        return [frame]

    def _exec_if(self, stmt: ast.If, frame: Frame) -> List[Frame]:
        self._eval(stmt.test, frame)  # tests can call (side effects)
        then_frame = frame.fork(_cond_str(stmt.test))
        else_frame = frame.fork(_cond_str(stmt.test, negate=True))
        out = self._exec_block(stmt.body, [then_frame])
        out += self._exec_block(stmt.orelse, [else_frame])
        return out

    def _exec_loop(self, stmt, frame: Frame) -> List[Frame]:
        if isinstance(stmt, ast.For):
            self._eval(stmt.iter, frame)
            probe_env = dict(frame.env)
            if isinstance(stmt.target, ast.Name):
                probe_env[stmt.target.id] = None
        else:
            self._eval(stmt.test, frame)
            probe_env = dict(frame.env)
        # Run the body once with an empty path to discover its effects,
        # then widen them into the real path: 0..N iterations.
        probe_live, probe_finished = self._probe(stmt.body, probe_env)
        for done in probe_finished:
            # return/raise inside the loop: a real exit, but the number
            # of completed iterations before it is unknown
            real = frame.path.clone()
            real.add_effects(done)
            real.imprecise = True
            real.raises = done.raises
            real.returned_charged |= done.returned_charged
            self._finish(real)
        body_paths = [pf.path for pf in probe_live]
        for path in body_paths:
            frame.path.add_effects(path, widen=True)
        changed: Set[str] = set()
        for pf in probe_live:
            for key, value in pf.env.items():
                if frame.env.get(key) is not value:
                    changed.add(key)
        for key in changed:
            vals = [pf.env.get(key) for pf in probe_live]
            if any(isinstance(v, CostVal) for v in vals):
                atoms: Dict[str, Interval] = {}
                sources: List[CostVal] = []
                for v in vals:
                    if isinstance(v, CostVal):
                        sources.append(v)
                        for atom in v.atoms:
                            atoms[atom] = UNBOUNDED
                base = frame.env.get(key)
                if isinstance(base, CostVal):
                    sources.append(base)
                    for atom in base.atoms:
                        atoms.setdefault(atom, UNBOUNDED)
                frame.env[key] = CostVal(
                    atoms=atoms, imprecise=True, sources=tuple(sources)
                )
            else:
                frame.env[key] = None
        infinite = isinstance(stmt, ast.While) and isinstance(
            stmt.test, ast.Constant
        ) and bool(stmt.test.value)
        out: List[Frame] = [] if infinite else [frame]
        if stmt.orelse and not infinite:
            out = self._exec_block(stmt.orelse, out)
        return out

    def _probe(self, stmts: Sequence[ast.stmt], env: Dict[str, object]
               ) -> Tuple[List[Frame], List[Path]]:
        sink: List[Path] = []
        self.finished_stack.append(sink)
        try:
            live = self._exec_block(list(stmts), [Frame(Path(), env)])
        finally:
            self.finished_stack.pop()
        return live, sink

    def _exec_try(self, stmt: ast.Try, frame: Frame) -> List[Frame]:
        probe_live, probe_finished = self._probe(stmt.body, dict(frame.env))
        handler_names = [name for h in stmt.handlers for name in _handler_names(h)]

        def covered(exc: str) -> bool:
            for name in handler_names:
                if name in ("BaseException", "Exception") or name == exc:
                    return True
                if self.program.exc_subsumes(name, exc):
                    return True
            return False

        out: List[Frame] = []
        # success paths: body (and else) completed
        for pf in probe_live:
            success = frame.fork()
            success.path.add_effects(pf.path)
            success.env.update(pf.env)
            out.extend(
                self._exec_block(stmt.orelse, [success]) if stmt.orelse else [success]
            )
        # early exits from the body (return, or a raise no handler covers)
        for done in probe_finished:
            if done.raises is not None and covered(done.raises):
                continue  # flows into a handler path below
            real = frame.path.clone()
            real.add_effects(done)
            real.raises = done.raises
            real.returned_charged |= done.returned_charged
            if self.time_spec is not None:
                for key, iv in done.returned.items():
                    _merge(real.returned, key, iv)
            self._finish(real)
        # handler paths: pre-try state + widened partial body effects
        for handler in stmt.handlers:
            hframe = frame.fork(f"except {' | '.join(_handler_names(handler))}")
            for pf in probe_live:
                hframe.path.add_effects(pf.path, widen=True)
            for done in probe_finished:
                hframe.path.add_effects(done, widen=True)
            if handler.name:
                hframe.env[handler.name] = None
            out.extend(self._exec_block(handler.body, [hframe]))
        if stmt.finalbody:
            out = self._exec_block(stmt.finalbody, out)
        return out

    def _exec_expr_stmt(self, stmt: ast.Expr, frame: Frame) -> List[Frame]:
        node = stmt.value
        if isinstance(node, ast.Call):
            # RatioStat.record(<symbolic>) forks a hit and a miss path
            fork = self._ratio_fork(node, frame)
            if fork is not None:
                return fork
            value = self._eval_call(node, frame)
            self._check_discard(node, frame)
            _ = value
            return [frame]
        self._eval(node, frame)
        return [frame]

    def _ratio_fork(self, node: ast.Call, frame: Frame) -> Optional[List[Frame]]:
        if not (isinstance(node.func, ast.Attribute) and node.func.attr == "record"):
            return None
        binding = self._stat_receiver(node.func.value, frame)
        if binding is None or binding.kind != "ratio" or not node.args:
            return None
        arg = node.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, bool):
            return None  # literal: handled precisely by _eval_call
        self._eval(arg, frame)
        self.stat_muts.add((node.lineno, binding.name))
        hit = frame.fork(_cond_str(arg))
        _merge(hit.path.counters, f"{binding.name}:total", ONE)
        _merge(hit.path.counters, f"{binding.name}:hit", ONE)
        miss = frame.fork(_cond_str(arg, negate=True))
        _merge(miss.path.counters, f"{binding.name}:total", ONE)
        _merge(miss.path.counters, f"{binding.name}:miss", ONE)
        return [hit, miss]

    def _check_discard(self, node: ast.Call, frame: Frame) -> None:
        """SC001: a bare statement discarding an uncharged TimeNs result."""
        for qualname in self._matched_callees(node):
            spec = self.model.time_specs.get(qualname)
            if spec is None:
                continue
            summary = self.ev.summarize(qualname)
            if summary.charges_clock or summary.background:
                continue
            short = qualname.replace("repro.", "", 1)
            self._event(
                "SC001",
                node.lineno,
                f"TimeNs result of {short} is discarded without being "
                f"charged to the clock (uncharged timed path)",
            )

    def _record_return(self, value: object, path: Path) -> None:
        vals: List[CostVal] = []
        if isinstance(value, CostVal):
            vals = [value]
        elif isinstance(value, TupleVal):
            vals = [item for item in value.items if isinstance(item, CostVal)]
        for val in vals:
            for atom, iv in val.atoms.items():
                _merge(path.returned, atom, iv)
            if path.is_charged(val):
                path.returned_charged = True
            if val.imprecise:
                path.imprecise = True

    # -- bindings ---------------------------------------------------------

    def _bind(self, target: ast.AST, value: object, frame: Frame) -> None:
        if isinstance(target, ast.Name):
            frame.env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            items = value.items if isinstance(value, TupleVal) else [None] * len(
                target.elts
            )
            if len(items) != len(target.elts):
                items = [None] * len(target.elts)
            for elem, item in zip(target.elts, items):
                self._bind(elem, item, frame)
        # stores to attributes/subscripts don't track cost values

    def _combine(self, a: object, b: object, additive: bool) -> object:
        if not isinstance(a, CostVal) and not isinstance(b, CostVal):
            return None
        atoms: Dict[str, Interval] = {}
        sources: List[CostVal] = []
        imprecise = not additive
        for val in (a, b):
            if isinstance(val, CostVal):
                sources.append(val)
                imprecise |= val.imprecise
                for atom, iv in val.atoms.items():
                    atoms[atom] = iv_add(atoms.get(atom, ZERO), iv)
            elif val is not None or not additive:
                imprecise = True
        literal = None
        if (
            additive
            and isinstance(a, CostVal) and isinstance(b, CostVal)
            and a.literal is not None and b.literal is not None
        ):
            literal = a.literal + b.literal
        return CostVal(
            atoms=atoms, literal=literal, imprecise=imprecise,
            sources=tuple(sources),
        )

    # -- expressions ------------------------------------------------------

    def _eval(self, node: Optional[ast.AST], frame: Frame) -> object:
        if node is None:
            return None
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(node.value, int):
                return None
            return CostVal(literal=node.value)
        if isinstance(node, ast.Name):
            return frame.env.get(node.id)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node, frame)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node, frame)
        if isinstance(node, ast.Call):
            return self._eval_call(node, frame)
        if isinstance(node, ast.IfExp):
            self._eval(node.test, frame)
            a = self._eval(node.body, frame)
            b = self._eval(node.orelse, frame)
            return self._join_values(a, b)
        if isinstance(node, ast.Tuple):
            return TupleVal([self._eval(elem, frame) for elem in node.elts])
        if isinstance(node, (ast.BoolOp,)):
            for value in node.values:
                self._eval(value, frame)
            return None
        if isinstance(node, ast.Compare):
            self._eval(node.left, frame)
            for comp in node.comparators:
                self._eval(comp, frame)
            return None
        if isinstance(node, ast.UnaryOp):
            self._eval(node.operand, frame)
            return None
        if isinstance(node, (ast.Subscript, ast.Starred, ast.Await)):
            self._eval(node.value, frame)
            return None
        if isinstance(node, (ast.List, ast.Set)):
            for elem in node.elts:
                self._eval(elem, frame)
            return None
        if isinstance(node, ast.Dict):
            for key in node.keys:
                self._eval(key, frame)
            for value in node.values:
                self._eval(value, frame)
            return None
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self._eval(value.value, frame)
            return None
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp, ast.Lambda)):
            return None  # comprehensions/lambdas: out of the cost model
        return None

    def _join_values(self, a: object, b: object) -> object:
        if not isinstance(a, CostVal) and not isinstance(b, CostVal):
            return None
        atoms: Dict[str, Interval] = {}
        sources: List[CostVal] = []
        for val in (a, b):
            if isinstance(val, CostVal):
                sources.append(val)
        keys: Set[str] = set()
        for val in sources:
            keys |= set(val.atoms)
        for key in keys:
            ivs = [
                val.atoms.get(key, ZERO) if isinstance(val, CostVal) else ZERO
                for val in (a, b)
            ]
            atoms[key] = iv_join(ivs[0], ivs[1])
        imprecise = any(v.imprecise for v in sources) or not all(
            isinstance(v, CostVal) for v in (a, b)
        ) or (isinstance(a, CostVal) and isinstance(b, CostVal)
              and a.atoms != b.atoms)
        return CostVal(atoms=atoms, imprecise=imprecise, sources=tuple(sources))

    def _eval_attribute(self, node: ast.Attribute, frame: Frame) -> object:
        if node.attr in self.model.latency_fields:
            return CostVal(atoms={node.attr: ONE})
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            cls = self.fn.cls
            if cls is not None:
                atoms = self.model.cost_of(cls, node.attr, self.program)
                if atoms:
                    if len(atoms) == 1:
                        return CostVal(atoms={next(iter(atoms)): ONE})
                    return CostVal(
                        atoms={a: (0, 1) for a in sorted(atoms)}, imprecise=True
                    )
                binding = self.model.stat_of(cls, node.attr, self.program)
                if binding is not None:
                    return StatVal(binding)
        if node.attr in RUNTIME_COST_ATTRS:
            self._eval(node.value, frame)
            return CostVal(imprecise=True)
        self._eval(node.value, frame)
        return None

    def _eval_binop(self, node: ast.BinOp, frame: Frame) -> object:
        left = self._eval(node.left, frame)
        right = self._eval(node.right, frame)
        if isinstance(node.op, ast.Add):
            return self._combine(left, right, additive=True)
        if isinstance(node.op, ast.Mult):
            for cost, other, other_node in (
                (left, right, node.right), (right, left, node.left),
            ):
                if isinstance(cost, CostVal) and cost.atoms:
                    k = None
                    if isinstance(other, CostVal) and other.literal is not None:
                        k = other.literal
                    elif isinstance(other_node, ast.Constant) and isinstance(
                        other_node.value, int
                    ):
                        k = other_node.value
                    if k is not None:
                        return CostVal(
                            atoms={a: iv_scale(iv, k) for a, iv in cost.atoms.items()},
                            imprecise=cost.imprecise,
                            sources=(cost,),
                        )
                    return CostVal(
                        atoms={a: UNBOUNDED for a in cost.atoms},
                        imprecise=True,
                        sources=(cost,),
                    )
            if (
                isinstance(left, CostVal) and isinstance(right, CostVal)
                and left.literal is not None and right.literal is not None
            ):
                return CostVal(literal=left.literal * right.literal)
            return None
        # Sub, FloorDiv, ...: cost arithmetic survives imprecisely
        sources = tuple(v for v in (left, right) if isinstance(v, CostVal))
        if any(v.atoms for v in sources):
            atoms: Dict[str, Interval] = {}
            for val in sources:
                for atom in val.atoms:
                    atoms[atom] = UNBOUNDED
            return CostVal(atoms=atoms, imprecise=True, sources=sources)
        return None

    # -- calls ------------------------------------------------------------

    def _matched_callees(self, node: ast.Call) -> List[str]:
        candidates = self.edges.get(node.lineno, [])
        if not candidates:
            return []
        name = None
        if isinstance(node.func, ast.Attribute):
            name = node.func.attr
        elif isinstance(node.func, ast.Name):
            name = node.func.id
        matched = []
        for callee in candidates:
            last = callee.rsplit(".", 1)[-1]
            if last == name:
                matched.append(callee)
            elif last == "__init__" and name is not None:
                class_qual = callee[: -len(".__init__")]
                cls = self.program.classes.get(class_qual)
                if cls is not None and cls.name == name:
                    matched.append(callee)
        if not matched and len(candidates) == 1:
            # Edges are keyed by line, so two calls on one line share a
            # candidate list.  A bare builtin call (``x.add(sum(y))``)
            # must not inherit the attribute call's edge.
            if not (isinstance(node.func, ast.Name)
                    and node.func.id in _PY_BUILTINS):
                matched = list(candidates)
        return matched

    def _stat_receiver(self, node: ast.AST, frame: Frame
                       ) -> Optional[StatBinding]:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and self.fn.cls is not None
        ):
            return self.model.stat_of(self.fn.cls, node.attr, self.program)
        if isinstance(node, ast.Name):
            value = frame.env.get(node.id)
            if isinstance(value, StatVal):
                return value.binding
            return None
        if isinstance(node, ast.Call):
            return registry_stat(node)
        return None

    def _eval_call(self, node: ast.Call, frame: Frame) -> object:
        # a registry factory is a value, not an effect
        factory = registry_stat(node)
        if factory is not None:
            return StatVal(factory)

        arg_vals = [self._eval(arg, frame) for arg in node.args]
        for kw in node.keywords:
            arg_vals.append(self._eval(kw.value, frame))

        callees = self._matched_callees(node)

        if CLOCK_ADVANCE in callees:
            self._apply_advance(node, arg_vals, frame)
            return None
        if CLOCK_ADVANCE_TO in callees:
            frame.path.advanced = True
            return None
        if isinstance(node.func, ast.Attribute) and (
            COUNTER_ADD in callees
            or (node.func.attr == "add"
                and self._stat_receiver(node.func.value, frame) is not None)
        ):
            self._apply_counter_add(node, arg_vals, frame)
            return None
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "record", "extend"
        ):
            handled = self._apply_record(node, arg_vals, frame, callees)
            if handled:
                return None

        result: object = None
        inlined = False
        for qualname in callees:
            if qualname not in self.program.functions:
                continue
            if self.program.functions[qualname].seeded:
                continue
            summary = self.ev.summarize(qualname)
            self._inline(summary, frame, arg_vals)
            inlined = True
            value = self._call_result(summary)
            result = value if result is None else self._join_call_results(
                result, value
            )
        _ = inlined
        return result

    def _apply_advance(self, node: ast.Call, arg_vals: List[object],
                       frame: Frame) -> None:
        frame.path.advanced = True
        val = arg_vals[0] if arg_vals else None
        if not isinstance(val, CostVal):
            _merge(frame.path.charges, "<unattributed>", UNBOUNDED)
            frame.path.imprecise = True
            return
        if val.literal is not None and not val.atoms and not val.imprecise:
            if val.literal != 0:
                self._event(
                    "SC003",
                    node.lineno,
                    f"clock.advance({val.literal}) charges a magic number: "
                    f"the delta is not traceable to a LatencyConfig field "
                    f"or TimeNs expression",
                )
            return
        if frame.path.is_charged(val):
            atoms = ", ".join(sorted(val.atoms)) or "a TimeNs value"
            self._event(
                "SC002",
                node.lineno,
                f"double charge: {atoms} already charged to the clock on "
                f"this path is advanced again",
            )
        for atom, iv in val.atoms.items():
            _merge(frame.path.charges, atom, iv)
        if not val.atoms:
            _merge(frame.path.charges, "<unattributed>", UNBOUNDED)
        if val.imprecise:
            frame.path.imprecise = True
        frame.path.charge_value(val)

    def _apply_counter_add(self, node: ast.Call, arg_vals: List[object],
                           frame: Frame) -> None:
        binding = self._stat_receiver(node.func.value, frame)  # type: ignore[union-attr]
        if binding is None or binding.kind != "counter":
            return
        self.stat_muts.add((node.lineno, binding.name))
        amount: Interval = ONE
        if node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, int):
                amount = (first.value, first.value)
            else:
                amount = UNBOUNDED
        _merge(frame.path.counters, binding.name, amount)
        if binding.name.endswith("background_ns"):
            # booking a cost to a background counter charges it: advancing
            # the same value afterwards would double-account it
            val = arg_vals[0] if arg_vals else None
            if isinstance(val, CostVal):
                frame.path.charge_value(val)

    def _apply_record(self, node: ast.Call, arg_vals: List[object],
                      frame: Frame, callees: List[str]) -> bool:
        binding = self._stat_receiver(node.func.value, frame)  # type: ignore[union-attr]
        if binding is None:
            return RATIO_RECORD in callees or LATENCY_RECORD in callees or (
                HISTOGRAM_RECORD in callees
            ) or LATENCY_EXTEND in callees or HISTOGRAM_EXTEND in callees
        self.stat_muts.add((node.lineno, binding.name))
        if binding.kind == "ratio":
            arg = node.args[0] if node.args else None
            if isinstance(arg, ast.Constant) and isinstance(arg.value, bool):
                leg = "hit" if arg.value else "miss"
                _merge(frame.path.counters, f"{binding.name}:total", ONE)
                _merge(frame.path.counters, f"{binding.name}:{leg}", ONE)
            else:
                # nested symbolic record (statement-level records fork
                # instead — see _ratio_fork)
                _merge(frame.path.counters, f"{binding.name}:total", ONE)
                _merge(frame.path.counters, f"{binding.name}:hit", (0, 1))
                _merge(frame.path.counters, f"{binding.name}:miss", (0, 1))
                frame.path.imprecise = True
            return True
        amount = ONE if node.func.attr == "record" else UNBOUNDED  # type: ignore[union-attr]
        _merge(frame.path.counters, f"{binding.name}:samples", amount)
        return True

    def _inline(self, summary: Summary, frame: Frame,
                arg_vals: List[object]) -> None:
        for atom, iv in summary.charges_joined.items():
            _merge(frame.path.charges, atom, iv)
        for leg, iv in summary.counters_joined.items():
            _merge(frame.path.counters, leg, iv)
        if summary.joined_imprecise and (
            summary.charges_joined or summary.counters_joined
        ):
            frame.path.imprecise = True
        if summary.charges_clock:
            frame.path.advanced = True
        if summary.charges_clock or summary.background:
            # a callee that advances the clock (or books to a background
            # counter) consumes the cost values passed to it
            for val in arg_vals:
                if isinstance(val, CostVal):
                    frame.path.charge_value(val)

    def _call_result(self, summary: Summary) -> object:
        spec = summary.time_spec
        if spec is None:
            return None
        val = CostVal(
            atoms=dict(summary.returned_atoms),
            imprecise=summary.returned_imprecise,
        )
        if summary.returned_charged:
            val.charged = True
        if spec == "scalar":
            return val
        _tag, indices, length = spec  # ("tuple", indices, length)
        items: List[Optional[object]] = [None] * length
        for index in indices:
            items[index] = val
        return TupleVal(items)

    def _join_call_results(self, a: object, b: object) -> object:
        if isinstance(a, TupleVal) and isinstance(b, TupleVal):
            length = max(len(a.items), len(b.items))
            items = []
            for i in range(length):
                items.append(
                    self._join_values(
                        a.items[i] if i < len(a.items) else None,
                        b.items[i] if i < len(b.items) else None,
                    )
                )
            return TupleVal(items)
        return self._join_values(
            a if isinstance(a, CostVal) else None,
            b if isinstance(b, CostVal) else None,
        )
