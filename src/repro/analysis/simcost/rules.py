"""SC rule catalogue: checks over the solved per-path cost summaries.

SC001–SC003 are *accounting events* detected during path evaluation
(``paths.py``) and reported at the offending call site; SC004–SC006 are
whole-program checks over the solved summaries and the ``@counters``
contracts (:mod:`repro.costs`).  SC007 (dead config knob) only runs
under ``--check-config`` — it audits tuning surface, not accounting.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.costs import Invariant
from repro.analysis.simeffect.model import FunctionInfo, Program
from repro.analysis.simcost.model import CONFIG_CLASSES, CostModel
from repro.analysis.simcost.paths import (
    Evaluator,
    Interval,
    Path,
    ZERO,
    iv_add,
    iv_exact,
)

Report = Callable[[str, str, int, int, str], None]


@dataclass
class Analysis:
    """Everything the rules need: program + cost model + solved summaries."""

    program: Program
    model: CostModel
    evaluator: Evaluator


def _short(qualname: str) -> str:
    return qualname.replace("repro.", "", 1)


def _def_site(analysis: Analysis, fn: FunctionInfo) -> Tuple[str, int]:
    return analysis.program.paths[fn.module], fn.lineno


class Rule:
    """One SC rule; ``check`` walks the solved analysis and reports."""

    code = "SC000"
    title = ""
    sim_scope_only = True
    explanation = ""

    def check(self, analysis: Analysis, report: Report) -> None:
        raise NotImplementedError


class _EventRule(Rule):
    """SC001–SC003 replay accounting events recorded during evaluation."""

    def check(self, analysis: Analysis, report: Report) -> None:
        for qualname in sorted(analysis.evaluator.summaries):
            summary = analysis.evaluator.summaries[qualname]
            fn = analysis.program.functions.get(qualname)
            if fn is None:
                continue
            path = analysis.program.paths[fn.module]
            for code, line, message in sorted(summary.events):
                if code == self.code:
                    report(code, path, line, 0, message)


class UnchargedTimedPath(_EventRule):
    code = "SC001"
    title = "TimeNs result discarded without being charged"
    explanation = (
        "A statement discards the TimeNs return value of a call whose "
        "callee neither advances the sim clock nor books the cost to a "
        "*background_ns counter.  The simulated work happened but its "
        "latency evaporated — the scorecard silently under-reports."
    )


class DoubleCharge(_EventRule):
    code = "SC002"
    title = "same cost value charged to the clock twice on one path"
    explanation = (
        "A TimeNs value that was already charged (via clock.advance, a "
        "charging callee, or a *background_ns counter) is advanced again "
        "on the same control-flow path.  The charge provenance is tracked "
        "through sums and callee returns, so two *independent* reads of "
        "the same LatencyConfig field do not trip this rule."
    )


class MagicNumberTime(_EventRule):
    code = "SC003"
    title = "clock.advance with a magic-number delta"
    explanation = (
        "clock.advance is called with a bare numeric literal.  All charged "
        "time must be traceable to a LatencyConfig field (the Table-2 cost "
        "constants) or a TimeNs expression derived from one, or the "
        "vectorized engine cannot reproduce the charge."
    )


# --------------------------------------------------------------------------
# SC004: counter conservation
# --------------------------------------------------------------------------


@dataclass
class InvariantResult:
    """Outcome of checking one declared invariant (shared with --report)."""

    class_qualname: str
    owner: str
    invariant: Invariant
    status: str  # "verified" | "violated" | "unchecked"
    detail: str = ""
    site: Tuple[str, int] = ("", 0)
    violations: List[str] = field(default_factory=list)


def _sum_terms(terms, counters: Dict[str, Interval]) -> Interval:
    total: Interval = ZERO
    for kind, value in terms:
        if kind == "const":
            total = iv_add(total, (value, value))
        else:
            total = iv_add(total, counters.get(value, ZERO))
    return total


def _path_holds(invariant: Invariant, path: Path) -> Optional[bool]:
    """True/False if decidable on this path, None if imprecise.

    Decidability is judged on the interval sums of the legs the
    invariant actually names, not on the path's global imprecision
    flag — a loop elsewhere in the function must not make a directly
    bumped counter unverifiable.
    """
    lhs = _sum_terms(invariant.lhs, path.counters)
    rhs = _sum_terms(invariant.rhs, path.counters)
    if invariant.op == "==":
        if iv_exact(lhs) and iv_exact(rhs):
            return lhs[0] == rhs[0]
        return None
    if invariant.op == "<=":
        low, high = lhs, rhs
    else:  # ">=" mirrors "<="
        low, high = rhs, lhs
    if low[1] is not None and low[1] <= high[0]:
        return True  # even the largest LHS fits under the smallest RHS
    if high[1] is not None and low[0] > high[1]:
        return False
    return None


def _known_stat_legs(model: CostModel) -> Set[str]:
    legs: Set[str] = set()
    for binding in model.stat_attrs.values():
        if binding.kind == "counter":
            legs.add(binding.name)
        elif binding.kind == "ratio":
            for leg in ("total", "hit", "miss"):
                legs.add(f"{binding.name}:{leg}")
        else:
            legs.add(f"{binding.name}:samples")
    return legs


def _conds_str(path: Path) -> str:
    return " and ".join(path.conds) if path.conds else "<always>"


def check_invariants(analysis: Analysis) -> List[InvariantResult]:
    """Evaluate every declared @counters invariant; shared with --report."""
    results: List[InvariantResult] = []
    known_legs = _known_stat_legs(analysis.model)
    for class_qualname in sorted(analysis.model.contracts):
        contract = analysis.model.contracts[class_qualname]
        cls = analysis.program.classes.get(class_qualname)
        if cls is None:
            continue
        cls_path = analysis.program.paths[cls.module]
        for invariant in contract.invariants:
            unknown = [leg for leg in invariant.legs() if leg not in known_legs]
            if unknown:
                results.append(InvariantResult(
                    class_qualname, contract.owner, invariant, "unchecked",
                    f"unknown stat leg {unknown[0]!r}",
                    (cls_path, contract.lineno),
                ))
                continue
            if invariant.scope is not None:
                fn = analysis.program.find_method(class_qualname, invariant.scope)
                if fn is None:
                    results.append(InvariantResult(
                        class_qualname, contract.owner, invariant, "unchecked",
                        f"scopes unknown method {invariant.scope!r}",
                        (cls_path, contract.lineno),
                    ))
                    continue
                methods = [fn]
                site = (analysis.program.paths[fn.module], fn.lineno)
            else:
                methods = sorted(
                    cls.methods.values(), key=lambda f: f.qualname
                )
                site = (cls_path, contract.lineno)
            checked = 0
            violations: List[str] = []
            for fn in methods:
                summary = analysis.evaluator.summaries.get(fn.qualname)
                if summary is None:
                    continue
                for path in summary.paths:
                    if invariant.scope is not None and path.raises is not None:
                        continue  # scoped invariants cover completed calls
                    holds = _path_holds(invariant, path)
                    if holds is None:
                        continue
                    checked += 1
                    if not holds:
                        violations.append(
                            f"{_short(fn.qualname)} on path "
                            f"[{_conds_str(path)}]"
                        )
            if violations:
                status, detail = "violated", violations[0]
            elif checked:
                status, detail = "verified", f"{checked} path(s)"
            else:
                status, detail = "unchecked", "no precise path to check"
            results.append(InvariantResult(
                class_qualname, contract.owner, invariant, status, detail,
                site, violations,
            ))
    return results


class ConservationViolated(Rule):
    code = "SC004"
    title = "counter-conservation invariant violated"
    explanation = (
        "A @counters(conserve=...) invariant fails on at least one precise "
        "control-flow path: per-path stat deltas do not satisfy the "
        "declared equation (e.g. PLB hits + misses == lookups).  Also "
        "fires on malformed contracts and invariants naming unknown stats."
    )

    def check(self, analysis: Analysis, report: Report) -> None:
        for class_qualname in sorted(analysis.model.contracts):
            contract = analysis.model.contracts[class_qualname]
            cls = analysis.program.classes.get(class_qualname)
            if cls is None:
                continue
            path = analysis.program.paths[cls.module]
            for line, message in contract.errors:
                report(
                    self.code, path, line, 0,
                    f"invalid @counters contract on {cls.name}: {message}",
                )
        for result in check_invariants(analysis):
            if result.status == "violated":
                report(
                    self.code, result.site[0], result.site[1], 0,
                    f"invariant {result.invariant.raw!r} violated: "
                    f"{result.detail}",
                )
            elif result.status == "unchecked" and (
                "unknown" in result.detail
            ):
                report(
                    self.code, result.site[0], result.site[1], 0,
                    f"invariant {result.invariant.raw!r} is unverifiable: "
                    f"{result.detail}",
                )


class ForeignStatMutation(Rule):
    code = "SC005"
    title = "stat mutated outside its owning component"
    explanation = (
        "A stat whose name prefix is owned by a @counters component is "
        "mutated from a class that does not declare that ownership.  "
        "Scattered mutation sites make the conservation invariants — and "
        "the vectorized replay — unauditable."
    )

    def check(self, analysis: Analysis, report: Report) -> None:
        model = analysis.model
        program = analysis.program
        for qualname in sorted(analysis.evaluator.summaries):
            summary = analysis.evaluator.summaries[qualname]
            if not summary.stat_muts:
                continue
            fn = program.functions.get(qualname)
            if fn is None:
                continue
            declared: Set[str] = set()
            if fn.cls is not None:
                for ancestor in program.mro_of(fn.cls) or [fn.cls]:
                    contract = model.contracts.get(ancestor)
                    if contract is not None and contract.owner:
                        declared.add(contract.owner)
            path = program.paths[fn.module]
            for line, stat_name in sorted(summary.stat_muts):
                prefix = stat_name.split(".", 1)[0]
                owner_classes = model.owners.get(prefix)
                if not owner_classes or prefix in declared:
                    continue
                owners = ", ".join(
                    sorted(_short(name) for name in owner_classes)
                )
                report(
                    self.code, path, line, 0,
                    f"stat '{stat_name}' (prefix '{prefix}', owned by "
                    f"{owners}) is mutated by {_short(qualname)}, which "
                    f"does not declare @counters(owner='{prefix}')",
                )


def _load_attr_names(program: Program, skip_module: str = "") -> Set[str]:
    """Every attribute name read (Load context) outside ``skip_module``."""
    used: Set[str] = set()
    for module in program.modules.values():
        if module.name == skip_module:
            continue
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                used.add(node.attr)
    return used


class DeadCostConstant(Rule):
    code = "SC006"
    title = "LatencyConfig field never charged anywhere"
    explanation = (
        "A cost constant is declared in LatencyConfig but never read "
        "outside the config module: either a hot path forgot to charge it "
        "(a missing Table-2 cost) or the knob is dead and must go."
    )
    sim_scope_only = False  # findings land in config.py, outside sim scope

    def check(self, analysis: Analysis, report: Report) -> None:
        model = analysis.model
        if not model.latency_fields:
            return
        config_module = ""
        for module in analysis.program.modules.values():
            if analysis.program.paths[module.name] == model.latency_config_path:
                config_module = module.name
        used = _load_attr_names(analysis.program, skip_module=config_module)
        for name in sorted(model.latency_fields):
            if name not in used:
                report(
                    self.code, model.latency_config_path,
                    model.latency_fields[name], 0,
                    f"LatencyConfig.{name} is never charged or read outside "
                    f"the config module (dead cost constant)",
                )


RULES: Tuple[Rule, ...] = (
    UnchargedTimedPath(),
    DoubleCharge(),
    MagicNumberTime(),
    ConservationViolated(),
    ForeignStatMutation(),
    DeadCostConstant(),
)

RULES_BY_CODE: Dict[str, Rule] = {rule.code: rule for rule in RULES}

#: --check-config pass (satellite: dead-knob audit).  Kept out of RULES so
#: the default lint run stays focused on accounting; SC007 findings land
#: in config.py and are reviewed explicitly.
CONFIG_RULE_CODE = "SC007"


def check_config(analysis: Analysis, report: Report) -> None:
    """SC007: FlatFlashConfig/GeometryConfig/PromotionConfig field never read.

    Unlike SC006 (a cost constant must be *charged*, i.e. read from a hot
    path outside the config module), a structural knob counts as live if
    it is read anywhere at all — including derived accessors inside the
    config module, the common pattern for ratio/override pairs.
    """
    model = analysis.model
    if not model.config_fields:
        return
    used = _load_attr_names(analysis.program)
    for name in sorted(model.config_fields):
        if name not in used:
            class_qualname, path, line = model.config_fields[name]
            cls = class_qualname.rsplit(".", 1)[-1]
            report(
                CONFIG_RULE_CODE, path, line, 0,
                f"{cls}.{name} is never read anywhere (dead knob): "
                f"delete it or document why it stays",
            )
