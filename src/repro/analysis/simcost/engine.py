"""simcost engine: whole-program cost runs, suppressions, and COSTS.json.

Like simeffect, the unit of analysis is the file set: cost summaries
flow across files through call edges, so all inputs are parsed into one
program, solved, and then path-evaluated before any SC rule fires.

:func:`build_report` emits ``COSTS.json`` — per-entry-point,
path-conditional cost & counter summaries for the EFFECTS.json-certified
kernels plus the promotion, fault-retry, and persistence paths.  It is
the translation-validation oracle for the ROADMAP-item-1 vectorized
engine: the batched replay kernel must reproduce these summaries
charge-for-charge before it can replace the interpretive hot paths.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import (
    ALL_CODES,
    Violation,
    iter_python_files,
    parse_suppressions,
)
from repro.analysis.simeffect.engine import (
    SIM_SCOPE_DIRS,
    infer_sim_scope,
)
from repro.analysis.simeffect.engine import build_report as effects_report
from repro.analysis.simeffect.model import Program, build_program
from repro.analysis.simeffect.scan import fixpoint, scan_program
from repro.analysis.simcost.model import CostModel, build_cost_model
from repro.analysis.simcost.paths import Evaluator, Interval, Path as CostPath
from repro.analysis.simcost.rules import (
    RULES,
    RULES_BY_CODE,
    Analysis,
    _load_attr_names,
    check_config,
    check_invariants,
)

TOOL = "simcost"

__all__ = [
    "TOOL", "SIM_SCOPE_DIRS", "infer_sim_scope", "build", "solve",
    "analyze_sources", "analyze_paths", "read_sources",
    "build_report", "report_for_paths", "config_violations",
]

#: Hot paths reported in COSTS.json beyond the certified kernels, keyed
#: by report group.  Missing qualnames (e.g. in fixture trees) are
#: skipped, so the report degrades gracefully.
EXTRA_ENTRY_POINTS: Dict[str, Tuple[str, ...]] = {
    "promotion": (
        "repro.core.promotion.PromotionManager.update",
        "repro.core.hierarchy.FlatFlash._start_promotion",
        "repro.core.hierarchy.FlatFlash._promote_stalling",
        "repro.core.hierarchy.FlatFlash._complete_promotion",
    ),
    "fault-retry": (
        "repro.host.bridge.MMIORetryPolicy.backoff_ns",
        "repro.core.hierarchy.FlatFlash._guarded_mmio",
        "repro.ssd.ftl.PageFTL._read_with_ecc",
        "repro.ssd.ftl.PageFTL._program_retrying",
    ),
    "persistence": (
        "repro.core.persistence.PersistentRegion.persist_store",
        "repro.core.persistence.PersistentRegion.commit",
        "repro.core.persistence.PersistentRegion.durable_store",
        "repro.core.persistence.PersistentRegion.atomic_store",
    ),
}


def build(sources: Sequence[Tuple[str, str]]) -> Tuple[Program, List[Violation]]:
    """Parse + solve the program; returns it plus SC000 syntax findings."""
    parsed: List[Tuple[str, ast.Module, str]] = []
    errors: List[Violation] = []
    for path, source in sources:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            line = error.lineno or 1
            col = (error.offset or 1) - 1
            errors.append(
                Violation(path, line, col, "SC000", f"syntax error: {error.msg}")
            )
            continue
        parsed.append((path, tree, source))
    program = build_program(parsed)
    scan_program(program)
    fixpoint(program)  # effect summaries feed the certified-kernel list
    return program, errors


def solve(program: Program) -> Analysis:
    """Build the cost model and path-evaluate every function."""
    model = build_cost_model(program)
    evaluator = Evaluator(program, model)
    evaluator.solve()
    return Analysis(program=program, model=model, evaluator=evaluator)


def _make_report(
    sources: Sequence[Tuple[str, str]],
    select: Optional[Iterable[str]],
    apply_suppressions: bool,
    violations: List[Violation],
) -> Callable[[str, str, int, int, str], None]:
    wanted = None if select is None else {code.upper() for code in select}
    suppressions: Dict[str, Dict[int, Set[str]]] = {}
    scope_by_path: Dict[str, bool] = {}
    for path, source in sources:
        scope_by_path[path] = infer_sim_scope(path)
        if apply_suppressions:
            suppressions[path] = parse_suppressions(source.splitlines(), TOOL)
    seen: Set[Tuple[str, int, int, str, str]] = set()

    def report(code: str, path: str, line: int, col: int, message: str) -> None:
        if wanted is not None and code not in wanted:
            return
        rule = RULES_BY_CODE.get(code)
        if rule is not None and rule.sim_scope_only and not scope_by_path.get(
            path, False
        ):
            return
        if apply_suppressions:
            codes = suppressions.get(path, {}).get(line)
            if codes is not None and (ALL_CODES in codes or code in codes):
                return
        key = (path, line, col, code, message)
        if key in seen:
            return
        seen.add(key)
        violations.append(Violation(path, line, col, code, message))

    return report


def analyze_sources(
    sources: Sequence[Tuple[str, str]],
    select: Optional[Iterable[str]] = None,
    apply_suppressions: bool = True,
) -> List[Violation]:
    """Analyze (path, source) pairs as one program; sorted violations."""
    program, violations = build(sources)
    analysis = solve(program)
    report = _make_report(sources, select, apply_suppressions, violations)
    for rule in RULES:
        rule.check(analysis, report)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return violations


def config_violations(
    sources: Sequence[Tuple[str, str]],
    apply_suppressions: bool = True,
) -> List[Violation]:
    """The --check-config pass: SC007 dead-knob findings."""
    program, violations = build(sources)
    analysis = solve(program)
    report = _make_report(sources, ["SC007"], apply_suppressions, violations)
    check_config(analysis, report)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return violations


def read_sources(paths: Iterable[str]) -> List[Tuple[str, str]]:
    return [
        (str(path), path.read_text(encoding="utf-8"))
        for path in iter_python_files(paths)
    ]


def analyze_paths(
    paths: Iterable[str],
    select: Optional[Iterable[str]] = None,
    apply_suppressions: bool = True,
) -> List[Violation]:
    return analyze_sources(
        read_sources(paths), select=select, apply_suppressions=apply_suppressions
    )


# --------------------------------------------------------------------------
# Cost report (COSTS.json)
# --------------------------------------------------------------------------


def _short(qualname: str) -> str:
    return qualname.replace("repro.", "", 1)


def _iv_json(iv: Interval) -> List[Optional[int]]:
    return [iv[0], iv[1]]


def _effects_json(mapping: Dict[str, Interval]) -> Dict[str, List[Optional[int]]]:
    return {key: _iv_json(iv) for key, iv in sorted(mapping.items())}


def _path_json(path: CostPath) -> Dict[str, object]:
    return {
        "conditions": list(path.conds),
        "charges": _effects_json(path.charges),
        "counters": _effects_json(path.counters),
        "returns": _effects_json(path.returned),
        "raises": path.raises,
        "exact": not path.imprecise,
    }


def build_report(program: Program, analysis: Optional[Analysis] = None
                 ) -> Dict[str, object]:
    """The machine-readable cost report for COSTS.json."""
    if analysis is None:
        analysis = solve(program)
    model = analysis.model

    groups: List[Tuple[str, str]] = []
    for short in effects_report(program)["certified"]:
        groups.append(("kernel", "repro." + short))
    for group, qualnames in sorted(EXTRA_ENTRY_POINTS.items()):
        for qualname in qualnames:
            groups.append((group, qualname))

    entries: List[Dict[str, object]] = []
    for group, qualname in groups:
        fn = program.functions.get(qualname)
        summary = analysis.evaluator.summaries.get(qualname)
        if fn is None or summary is None:
            continue
        entries.append({
            "function": _short(qualname),
            "file": program.paths[fn.module],
            "line": fn.lineno,
            "group": group,
            "charges_clock": summary.charges_clock,
            "returns_time": summary.time_spec is not None,
            "charges": _effects_json(summary.charges_joined),
            "counters": _effects_json(summary.counters_joined),
            "returns": _effects_json(summary.returned_atoms),
            "paths": [_path_json(path) for path in summary.paths],
        })
    entries.sort(key=lambda e: (e["group"], e["function"]))

    invariant_results = check_invariants(analysis)
    invariants = [
        {
            "class": _short(result.class_qualname),
            "owner": result.owner,
            "invariant": result.invariant.raw,
            "scope": result.invariant.scope,
            "status": result.status,
            "detail": result.detail,
        }
        for result in invariant_results
    ]
    invariants.sort(key=lambda i: (i["class"], i["invariant"]))
    status_counts = {"verified": 0, "violated": 0, "unchecked": 0}
    for item in invariants:
        status_counts[item["status"]] += 1

    config_module = ""
    for module in program.modules.values():
        if program.paths[module.name] == model.latency_config_path:
            config_module = module.name
    used = _load_attr_names(program, skip_module=config_module)
    dead_fields = sorted(
        name for name in model.latency_fields if name not in used
    )

    return {
        "tool": TOOL,
        "schema_version": 1,
        "latency_fields": sorted(model.latency_fields),
        "dead_latency_fields": dead_fields,
        "summary": {
            "entry_points": len(entries),
            "kernels": sum(1 for e in entries if e["group"] == "kernel"),
            "invariants_declared": len(invariants),
            "invariants_verified": status_counts["verified"],
            "invariants_violated": status_counts["violated"],
            "invariants_unchecked": status_counts["unchecked"],
        },
        "invariants": invariants,
        "entry_points": entries,
    }


def report_for_paths(paths: Iterable[str]) -> Dict[str, object]:
    program, _errors = build(read_sources(paths))
    return build_report(program)
