"""simcost: static latency-accounting & counter-conservation analysis.

Fifth analyzer in the simlint/simrace/simflow/simeffect family.  It
reuses simeffect's whole-program call-graph model to compute, per
function and per control-flow path, a **cost summary**: the multiset of
:class:`repro.config.LatencyConfig` fields charged (via
``clock.advance`` and transitive callees) and the ``sim/stats.py``
counters/ratios mutated.  Rules SC001–SC006 check the summaries; the
``--report`` flag emits ``COSTS.json``, the translation-validation
oracle the ROADMAP-item-1 vectorized engine is diffed against.
"""

from repro.analysis.findings import Violation
from repro.analysis.simcost.engine import (
    analyze_paths,
    analyze_sources,
    build,
    build_report,
    config_violations,
    report_for_paths,
)
from repro.analysis.simcost.rules import RULES

__all__ = [
    "Violation",
    "analyze_sources",
    "analyze_paths",
    "build",
    "build_report",
    "config_violations",
    "report_for_paths",
    "RULES",
]
