"""simcost cost model: atoms, stat bindings, and ``@counters`` contracts.

Built on top of a solved :class:`repro.analysis.simeffect.model.Program`,
this module answers the *provenance* questions the path evaluator
(:mod:`repro.analysis.simcost.paths`) needs:

* which attribute names are **cost atoms** — the fields of
  ``LatencyConfig`` (``flash_read_page_ns`` …), read straight from the
  analyzed program's AST so fixtures can ship their own config;
* which instance attributes are **bound costs** — constructor parameters
  or direct assignments whose value is a cost atom expression (e.g.
  ``PageTable(config.latency.page_table_walk_ns)`` binds
  ``self.walk_cost_ns`` to ``{page_table_walk_ns}``);
* which instance attributes are **stat primitives** — counters, ratios
  and latency stats created through a registry
  (``self._hits = stats.ratio("tlb.hits")``);
* which functions **return time** — a ``TimeNs`` (possibly inside a
  ``Tuple[...]``) return annotation, read from the raw annotation AST;
* which classes declare a ``@counters`` contract, with parsed
  invariants and the owner-prefix map for rule SC005.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.costs import Invariant, parse_invariant
from repro.analysis.simeffect.model import FunctionInfo, Program

#: Seeded primitive qualnames the evaluator special-cases.
CLOCK_ADVANCE = "repro.sim.clock.SimClock.advance"
CLOCK_ADVANCE_TO = "repro.sim.clock.SimClock.advance_to"
COUNTER_ADD = "repro.sim.stats.Counter.add"
RATIO_RECORD = "repro.sim.stats.RatioStat.record"
LATENCY_RECORD = "repro.sim.stats.LatencyStats.record"
LATENCY_EXTEND = "repro.sim.stats.LatencyStats.extend"
HISTOGRAM_RECORD = "repro.sim.stats.Histogram.record"
HISTOGRAM_EXTEND = "repro.sim.stats.Histogram.extend"
REGISTRY_FACTORIES = {"counter": "counter", "ratio": "ratio", "latency": "latency"}

#: Attribute names that carry a runtime-computed cost value (e.g. a
#: ``FlashOp.latency_ns`` result): treated as an unattributed cost.
RUNTIME_COST_ATTRS = frozenset({"latency_ns"})


@dataclass(frozen=True)
class StatBinding:
    kind: str  # "counter" | "ratio" | "latency"
    name: str  # registry name, e.g. "tlb.hits"


@dataclass
class CounterContract:
    """One ``@counters(...)`` declaration on a class."""

    class_qualname: str
    owner: str
    invariants: List[Invariant] = field(default_factory=list)
    lineno: int = 0
    errors: List[Tuple[int, str]] = field(default_factory=list)


@dataclass
class CostModel:
    """Everything path evaluation needs beyond the simeffect Program."""

    latency_fields: Dict[str, int] = field(default_factory=dict)  # name -> line
    latency_config_path: str = ""
    config_fields: Dict[str, Tuple[str, str, int]] = field(default_factory=dict)
    # config field name -> (class qualname, path, line), for --check-config
    stat_attrs: Dict[Tuple[str, str], StatBinding] = field(default_factory=dict)
    cost_attrs: Dict[Tuple[str, str], Set[str]] = field(default_factory=dict)
    time_specs: Dict[str, object] = field(default_factory=dict)
    # qualname -> "scalar" | ("tuple", (indices...), length)
    contracts: Dict[str, CounterContract] = field(default_factory=dict)
    owners: Dict[str, Set[str]] = field(default_factory=dict)  # prefix -> classes

    def stat_of(self, class_qualname: str, attr: str, program: Program
                ) -> Optional[StatBinding]:
        for qn in program.mro_of(class_qualname) or [class_qualname]:
            binding = self.stat_attrs.get((qn, attr))
            if binding is not None:
                return binding
        return None

    def cost_of(self, class_qualname: str, attr: str, program: Program
                ) -> Optional[Set[str]]:
        for qn in program.mro_of(class_qualname) or [class_qualname]:
            atoms = self.cost_attrs.get((qn, attr))
            if atoms is not None:
                return atoms
        return None


# --------------------------------------------------------------------------
# Config field extraction
# --------------------------------------------------------------------------

#: Config classes audited by ``--check-config`` (latency fields have
#: their own rule, SC006).
CONFIG_CLASSES = ("FlatFlashConfig", "GeometryConfig", "PromotionConfig")


def _class_fields(node: ast.ClassDef) -> Dict[str, int]:
    """Field name -> def line for a dataclass-style class body."""
    fields: Dict[str, int] = {}
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            fields[stmt.target.id] = stmt.lineno
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and not target.id.startswith("_"):
                    fields[target.id] = stmt.lineno
    return fields


def _find_class(program: Program, name: str):
    cls = program.classes.get(f"repro.config.{name}")
    if cls is not None:
        return cls
    for candidate in program.classes.values():
        if candidate.name == name:
            return candidate
    return None


def _collect_latency_fields(program: Program, model: CostModel) -> None:
    cls = _find_class(program, "LatencyConfig")
    if cls is None:
        return
    model.latency_fields = _class_fields(cls.node)
    model.latency_config_path = program.paths.get(cls.module, "")


def _collect_config_fields(program: Program, model: CostModel) -> None:
    for class_name in CONFIG_CLASSES:
        cls = _find_class(program, class_name)
        if cls is None:
            continue
        path = program.paths.get(cls.module, "")
        for name, line in _class_fields(cls.node).items():
            model.config_fields[name] = (cls.qualname, path, line)


# --------------------------------------------------------------------------
# Atom syntax: latency-field references inside an expression
# --------------------------------------------------------------------------


def syntactic_atoms(node: ast.AST, fields: Dict[str, int]) -> Set[str]:
    """Latency-config fields referenced (as attributes) inside ``node``."""
    atoms: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr in fields:
            atoms.add(sub.attr)
    return atoms


# --------------------------------------------------------------------------
# Stat + cost attribute bindings
# --------------------------------------------------------------------------


def registry_stat(node: ast.AST) -> Optional[StatBinding]:
    """``<anything>.counter("name")`` / ``.ratio`` / ``.latency`` → binding."""
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
        return None
    kind = REGISTRY_FACTORIES.get(node.func.attr)
    if kind is None or not node.args:
        return None
    first = node.args[0]
    if isinstance(first, ast.Constant) and isinstance(first.value, str):
        return StatBinding(kind, first.value)
    return None


def _collect_stat_attrs(program: Program, model: CostModel) -> None:
    for cls in program.classes.values():
        for method in cls.methods.values():
            if method.seeded:
                continue
            for node in ast.walk(method.node):
                if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                    continue
                target = node.targets[0]
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                binding = registry_stat(node.value)
                if binding is not None:
                    model.stat_attrs[(cls.qualname, target.attr)] = binding


def _init_params(ctor: FunctionInfo) -> List[str]:
    args = ctor.node.args
    names = [a.arg for a in args.args]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    return names


def _collect_cost_attrs(program: Program, model: CostModel) -> None:
    fields = model.latency_fields
    if not fields:
        return
    # Pass A: direct `self.X = <atom expr>` in __init__, plus the
    # param -> attr stores we need for pass B.
    param_store: Dict[Tuple[str, str], str] = {}  # (class, param) -> attr
    for cls in program.classes.values():
        ctor = cls.methods.get("__init__")
        if ctor is None or ctor.seeded:
            continue
        params = set(_init_params(ctor))
        for node in ast.walk(ctor.node):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            if isinstance(node.value, ast.Name) and node.value.id in params:
                param_store[(cls.qualname, node.value.id)] = target.attr
                continue
            atoms = syntactic_atoms(node.value, fields)
            if atoms:
                model.cost_attrs.setdefault((cls.qualname, target.attr), set()).update(
                    atoms
                )
    # Pass B: constructor call sites — atom-valued arguments flow into
    # the attrs their parameters are stored to.
    ctor_lines: Dict[str, Dict[int, List[str]]] = {}
    for fn in program.functions.values():
        if fn.seeded:
            continue
        for edge in fn.calls:
            if not edge.callee.endswith(".__init__"):
                continue
            class_qual = edge.callee[: -len(".__init__")]
            if class_qual not in program.classes:
                continue
            ctor_lines.setdefault(fn.qualname, {}).setdefault(edge.line, []).append(
                class_qual
            )
    for holder_qual, lines in ctor_lines.items():
        holder = program.functions[holder_qual]
        for node in ast.walk(holder.node):
            if not isinstance(node, ast.Call) or node.lineno not in lines:
                continue
            callee_name = None
            if isinstance(node.func, ast.Name):
                callee_name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                callee_name = node.func.attr
            for class_qual in lines[node.lineno]:
                cls = program.classes[class_qual]
                if callee_name is not None and callee_name != cls.name:
                    continue
                ctor = program.find_method(class_qual, "__init__")
                if ctor is None:
                    continue
                params = _init_params(ctor)
                bound: List[Tuple[str, ast.AST]] = list(zip(params, node.args))
                for kw in node.keywords:
                    if kw.arg is not None:
                        bound.append((kw.arg, kw.value))
                for param, arg in bound:
                    attr = param_store.get((class_qual, param))
                    if attr is None:
                        continue
                    atoms = syntactic_atoms(arg, fields)
                    if atoms:
                        model.cost_attrs.setdefault((class_qual, attr), set()).update(
                            atoms
                        )


# --------------------------------------------------------------------------
# Time-returning functions
# --------------------------------------------------------------------------


def _mentions_time(node: Optional[ast.AST]) -> bool:
    if node is None:
        return False
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id == "TimeNs":
            return True
        if isinstance(sub, ast.Attribute) and sub.attr == "TimeNs":
            return True
    return False


def time_return_spec(fn: FunctionInfo) -> Optional[object]:
    """``"scalar"``, ``("tuple", indices, length)`` or None for ``fn``."""
    returns = getattr(fn.node, "returns", None)
    if returns is None or not _mentions_time(returns):
        return None
    if isinstance(returns, ast.Subscript):
        base = returns.value
        base_name = base.id if isinstance(base, ast.Name) else (
            base.attr if isinstance(base, ast.Attribute) else None
        )
        if base_name in ("Tuple", "tuple"):
            inner = returns.slice
            if isinstance(inner, ast.Tuple):
                indices = tuple(
                    i for i, elem in enumerate(inner.elts) if _mentions_time(elem)
                )
                if indices:
                    return ("tuple", indices, len(inner.elts))
    return "scalar"


def _collect_time_specs(program: Program, model: CostModel) -> None:
    for fn in program.functions.values():
        if fn.seeded:
            continue
        spec = time_return_spec(fn)
        if spec is not None:
            model.time_specs[fn.qualname] = spec


# --------------------------------------------------------------------------
# @counters contracts
# --------------------------------------------------------------------------


def _literal_str_tuple(node: ast.AST) -> Optional[List[Tuple[str, int]]]:
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    out: List[Tuple[str, int]] = []
    for elem in node.elts:
        if isinstance(elem, ast.Constant) and isinstance(elem.value, str):
            out.append((elem.value, elem.lineno))
        else:
            return None
    return out


def _collect_contracts(program: Program, model: CostModel) -> None:
    for cls in program.classes.values():
        for deco in cls.node.decorator_list:
            if not isinstance(deco, ast.Call):
                continue
            func = deco.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            if name != "counters":
                continue
            contract = CounterContract(
                class_qualname=cls.qualname, owner="", lineno=deco.lineno
            )
            for kw in deco.keywords:
                if kw.arg == "owner":
                    if isinstance(kw.value, ast.Constant) and isinstance(
                        kw.value.value, str
                    ):
                        contract.owner = kw.value.value
                    else:
                        contract.errors.append(
                            (kw.value.lineno, "@counters owner must be a string literal")
                        )
                elif kw.arg == "conserve":
                    texts = _literal_str_tuple(kw.value)
                    if texts is None:
                        contract.errors.append(
                            (
                                kw.value.lineno,
                                "@counters conserve must be a literal tuple/list "
                                "of strings",
                            )
                        )
                        continue
                    for text, line in texts:
                        try:
                            contract.invariants.append(parse_invariant(text))
                        except ValueError as error:
                            contract.errors.append((line, str(error)))
            if not contract.owner and not contract.errors:
                contract.errors.append(
                    (deco.lineno, "@counters requires an owner= prefix")
                )
            model.contracts[cls.qualname] = contract
            if contract.owner:
                model.owners.setdefault(contract.owner, set()).add(cls.qualname)


# --------------------------------------------------------------------------
# Entry point
# --------------------------------------------------------------------------


def build_cost_model(program: Program) -> CostModel:
    """Derive the full cost model from a solved simeffect program."""
    model = CostModel()
    _collect_latency_fields(program, model)
    _collect_config_fields(program, model)
    _collect_stat_attrs(program, model)
    _collect_cost_attrs(program, model)
    _collect_time_specs(program, model)
    _collect_contracts(program, model)
    return model
