"""Command-line entry point: ``python -m repro.analysis.simcost <paths>``.

Exits 1 when any violation is found, 0 on a clean tree.  With
``--report [FILE]`` the cost report is written (default ``COSTS.json``)
— the translation-validation oracle for the vectorized engine — and the
exit status still reflects findings.  ``--check-config`` runs the SC007
dead-knob audit over FlatFlashConfig/GeometryConfig/PromotionConfig
instead of the SC accounting rules.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.findings import (
    add_baseline_arguments,
    apply_baseline,
    findings_json,
)
from repro.analysis.simcost.engine import (
    TOOL,
    analyze_sources,
    build,
    build_report,
    config_violations,
    read_sources,
    solve,
)
from repro.analysis.simcost.rules import CONFIG_RULE_CODE, RULES


def _list_rules() -> str:
    lines = ["simcost rule catalogue:", ""]
    for rule in RULES:
        scope = "sim scope only" if rule.sim_scope_only else "all files"
        lines.append(f"  {rule.code}  {rule.title}  [{scope}]")
        lines.append(f"         {rule.explanation}")
    lines.append(
        f"  {CONFIG_RULE_CODE}  dead config knob  [all files; --check-config only]"
    )
    lines.append(
        "         FlatFlashConfig/GeometryConfig/PromotionConfig field "
        "never read outside its config module."
    )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.simcost",
        description=(
            "Static latency-accounting & counter-conservation analysis for "
            "the FlatFlash simulator."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files or directories to analyze as ONE program (directories are "
            "walked for *.py; default src/repro when --report is given)"
        ),
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all), e.g. SC002,SC004",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit findings as JSON (shared analysis-family schema)",
    )
    parser.add_argument(
        "--report",
        nargs="?",
        const="COSTS.json",
        metavar="FILE",
        help=(
            "write the per-entry-point cost report to FILE "
            "(default COSTS.json) in addition to reporting findings"
        ),
    )
    parser.add_argument(
        "--check-config",
        action="store_true",
        help=(
            "run the SC007 dead-knob audit (config fields never read) "
            "instead of the SC accounting rules"
        ),
    )
    add_baseline_arguments(parser)
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0
    if not args.paths:
        if args.report:
            args.paths = ["src/repro"]
        else:
            parser.error(
                "no paths given (try: python -m repro.analysis.simcost src/repro)"
            )

    select = None
    if args.select:
        select = [
            code.strip().upper() for code in args.select.split(",") if code.strip()
        ]
        known = {rule.code for rule in RULES} | {"SC000", CONFIG_RULE_CODE}
        unknown = sorted(set(select) - known)
        if unknown:
            parser.error(
                f"unknown rule code(s): {', '.join(unknown)} (see --list-rules)"
            )

    try:
        sources = read_sources(args.paths)
    except (OSError, UnicodeDecodeError) as error:
        print(f"simcost: cannot read input: {error}", file=sys.stderr)
        return 2
    if not sources:
        print("simcost: no Python files found under the given paths", file=sys.stderr)
        return 0

    if args.check_config:
        violations = config_violations(sources)
    else:
        violations = analyze_sources(sources, select=select)

    if args.report:
        program, _errors = build(sources)
        report = build_report(program, solve(program))
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        summary = report["summary"]
        print(
            f"simcost: wrote {args.report} — "
            f"{summary['entry_points']} entry point(s), "
            f"{summary['invariants_verified']}/{summary['invariants_declared']} "
            f"invariant(s) verified"
        )

    violations, done = apply_baseline(args, TOOL, violations, len(sources))
    if done is not None:
        return done

    if args.json:
        print(findings_json(TOOL, violations, files_checked=len(sources)))
        return 1 if violations else 0

    for violation in violations:
        print(violation.format())
    if violations:
        print(f"\nsimcost: {len(violations)} violation(s) in {len(sources)} file(s)")
        return 1
    print(f"simcost: {len(sources)} file(s) clean")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped into `head`
        sys.exit(0)
