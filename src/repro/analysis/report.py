"""Plain-text table rendering for experiment output.

Every benchmark prints its figure/table as an aligned ASCII table so the
harness output can be compared to the paper side by side (EXPERIMENTS.md
embeds these).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def format_ratio(value: float, digits: int = 1) -> str:
    """Render an improvement factor the way the paper does: '2.3x'."""
    return f"{value:.{digits}f}x"


def _render_cell(cell: Cell) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, int):
        return f"{cell:,}"
    if isinstance(cell, float):
        return f"{cell:,.2f}"
    return str(cell)


class Table:
    """An aligned text table with a title, built row by row."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Cell) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells for {len(self.columns)} columns"
            )
        self.rows.append([_render_cell(cell) for cell in cells])

    def extend(self, rows: Iterable[Sequence[Cell]]) -> None:
        for row in rows:
            self.add_row(*row)

    def render(self) -> str:
        widths = [len(column) for column in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title]
        header = " | ".join(
            column.ljust(widths[index]) for index, column in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("-+-".join("-" * width for width in widths))
        for row in self.rows:
            lines.append(
                " | ".join(cell.rjust(widths[index]) for index, cell in enumerate(row))
            )
        return "\n".join(lines)

    def print(self) -> None:  # noqa: A003 - mirrors the builtin deliberately
        print()
        print(self.render())

    def __str__(self) -> str:
        return self.render()


def comparison_rows(
    label: str,
    values: Sequence[float],
    baseline_index: int = 0,
    value_format: str = "{:,.1f}",
) -> List[str]:
    """A row of values annotated with ratios against a chosen baseline."""
    if not values:
        raise ValueError("no values to compare")
    if not 0 <= baseline_index < len(values):
        raise ValueError(f"baseline index {baseline_index} out of range")
    baseline = values[baseline_index]
    cells = [label]
    for value in values:
        rendered = value_format.format(value)
        if baseline > 0:
            rendered += f" ({value / baseline:.2f}x)"
        cells.append(rendered)
    return cells
