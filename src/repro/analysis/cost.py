"""Cost-effectiveness model for FlatFlash vs DRAM-only (§5.7, Table 3).

The paper's method: rerun each workload with the entire working set in
DRAM, call the performance ratio the *slowdown*, price the two
configurations (DRAM at $30/GB, PCIe flash at $2/GB, plus a $1,500 server
base-cost increase for the extra DIMM slots a DRAM-only build needs), and
report

    cost-effectiveness = cost-saving / slowdown
                       = (cost_dram_only / cost_flatflash) / slowdown,

i.e. normalized performance per dollar.  Values above 1.0 mean FlatFlash
gives more performance per dollar than provisioning DRAM for everything.

Naming note: this is the paper's *economic* model (dollars per gigabyte),
not to be confused with the static-analysis ``CostModel`` in
:mod:`repro.analysis.simcost.model`, which accounts simulated *latency*
charges.  The class here is ``DollarCostModel`` to keep the two apart.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Unit prices used in the paper's analysis (2018 street prices).
DRAM_DOLLARS_PER_GB = 30.0
SSD_DOLLARS_PER_GB = 2.0
DRAM_ONLY_BASE_COST = 1_500.0  # extra DIMM-slot server cost


@dataclass
class DollarCostModel:
    """Prices a hybrid (DRAM+SSD) and a DRAM-only configuration.

    Dollars, not nanoseconds: the simulated-latency accounting model of
    the same name lives in :mod:`repro.analysis.simcost.model`.
    """

    dram_dollars_per_gb: float = DRAM_DOLLARS_PER_GB
    ssd_dollars_per_gb: float = SSD_DOLLARS_PER_GB
    dram_only_base_cost: float = DRAM_ONLY_BASE_COST

    def hybrid_cost(self, dram_gb: float, ssd_gb: float) -> float:
        """Cost of the FlatFlash configuration hosting the dataset on SSD."""
        if dram_gb < 0 or ssd_gb < 0:
            raise ValueError("capacities must be non-negative")
        return dram_gb * self.dram_dollars_per_gb + ssd_gb * self.ssd_dollars_per_gb

    def dram_only_cost(self, dataset_gb: float) -> float:
        """Cost of provisioning the whole dataset in DRAM."""
        if dataset_gb < 0:
            raise ValueError("dataset size must be non-negative")
        return dataset_gb * self.dram_dollars_per_gb + self.dram_only_base_cost


@dataclass
class CostEffectiveness:
    """One Table 3 row."""

    workload: str
    slowdown: float
    cost_saving: float

    @property
    def cost_effectiveness(self) -> float:
        """Normalized performance per dollar relative to DRAM-only."""
        if self.slowdown <= 0:
            raise ValueError(f"slowdown must be > 0, got {self.slowdown}")
        return self.cost_saving / self.slowdown


def cost_effectiveness(
    workload: str,
    flatflash_elapsed_ns: int,
    dram_only_elapsed_ns: int,
    dram_gb: float,
    ssd_gb: float,
    dataset_gb: float,
    model: DollarCostModel = DollarCostModel(),
) -> CostEffectiveness:
    """Build a Table 3 row from two measured runs and the capacity plan."""
    if dram_only_elapsed_ns <= 0 or flatflash_elapsed_ns <= 0:
        raise ValueError("elapsed times must be > 0")
    slowdown = flatflash_elapsed_ns / dram_only_elapsed_ns
    saving = model.dram_only_cost(dataset_gb) / model.hybrid_cost(dram_gb, ssd_gb)
    return CostEffectiveness(workload=workload, slowdown=slowdown, cost_saving=saving)
