"""Analysis helpers: cost-effectiveness, SSD lifetime, report tables.

These are *runtime* paper-metric helpers (Table 1/Table 3 math over
measured runs).  The static-analysis families live in sub-packages of
their own: simlint, simrace, simflow, simeffect, simcost, simbatch.  In
particular :class:`DollarCostModel` here prices hardware in dollars,
while ``repro.analysis.simcost.model.CostModel`` accounts simulated
latency — two different models that deliberately no longer share a name.
"""

from repro.analysis.cost import DollarCostModel, cost_effectiveness
from repro.analysis.lifetime import lifetime_improvement, write_amplification
from repro.analysis.report import Table, format_ratio

__all__ = [
    "DollarCostModel",
    "cost_effectiveness",
    "write_amplification",
    "lifetime_improvement",
    "Table",
    "format_ratio",
]
