"""Analysis helpers: cost-effectiveness, SSD lifetime, report tables."""

from repro.analysis.cost import CostModel, cost_effectiveness
from repro.analysis.lifetime import lifetime_improvement, write_amplification
from repro.analysis.report import Table, format_ratio

__all__ = [
    "CostModel",
    "cost_effectiveness",
    "write_amplification",
    "lifetime_improvement",
    "Table",
    "format_ratio",
]
