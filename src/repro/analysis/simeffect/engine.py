"""simeffect engine: whole-program runs, suppressions, and the report.

Unlike the per-file analyzers, simeffect parses *all* input files into
one :class:`~repro.analysis.simeffect.model.Program` before any rule
fires — effects flow across files, so the unit of analysis is the file
set, not the file.  Suppression comments and sim-scope gating are still
applied per finding against the file it lands in.

:func:`build_report` emits the kernel-eligibility report (``EFFECTS.json``)
— the gating artifact for the ROADMAP-item-1 batch-compilation refactor:
every ``@kernel`` / ``@effects``-annotated function with its inferred
effect envelope, escape set, eligibility verdict, and, when not eligible,
the concrete transitive effect (with witness chain) or unresolved call
that disqualifies it.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.effects import KERNEL_SAFE_EFFECTS
from repro.analysis.findings import (
    ALL_CODES,
    Violation,
    iter_python_files,
    parse_suppressions,
)
from repro.analysis.simeffect.model import Program, SPEC_SEEDS, build_program
from repro.analysis.simeffect.rules import RULES, RULES_BY_CODE
from repro.analysis.simeffect.scan import (
    fixpoint,
    kernel_scope,
    scan_program,
    transitive_unresolved,
    witness_chain,
)

TOOL = "simeffect"

#: Same simulation scope as simlint/simrace/simflow.
SIM_SCOPE_DIRS = {"sim", "ssd", "host", "core", "interconnect"}


def infer_sim_scope(path: str) -> bool:
    parts = Path(path).parts
    for index, part in enumerate(parts[:-1]):
        if part == "repro" and parts[index + 1] in SIM_SCOPE_DIRS:
            return True
    return False


def build(sources: Sequence[Tuple[str, str]]) -> Tuple[Program, List[Violation]]:
    """Parse + solve the program; returns it plus SE000 syntax findings."""
    parsed: List[Tuple[str, ast.Module, str]] = []
    errors: List[Violation] = []
    for path, source in sources:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            line = error.lineno or 1
            col = (error.offset or 1) - 1
            errors.append(Violation(path, line, col, "SE000", f"syntax error: {error.msg}"))
            continue
        parsed.append((path, tree, source))
    program = build_program(parsed)
    scan_program(program)
    fixpoint(program)
    return program, errors


def analyze_sources(
    sources: Sequence[Tuple[str, str]],
    select: Optional[Iterable[str]] = None,
    apply_suppressions: bool = True,
) -> List[Violation]:
    """Analyze (path, source) pairs as one program; sorted violations."""
    program, violations = build(sources)
    wanted = None if select is None else {code.upper() for code in select}

    suppressions: Dict[str, Dict[int, Set[str]]] = {}
    scope_by_path: Dict[str, bool] = {}
    for path, source in sources:
        scope_by_path[path] = infer_sim_scope(path)
        if apply_suppressions:
            suppressions[path] = parse_suppressions(source.splitlines(), TOOL)

    seen: Set[Tuple[str, int, int, str, str]] = set()

    def report(code: str, path: str, line: int, col: int, message: str) -> None:
        if wanted is not None and code not in wanted:
            return
        rule = RULES_BY_CODE.get(code)
        if rule is not None and rule.sim_scope_only and not scope_by_path.get(path, False):
            return
        if apply_suppressions:
            codes = suppressions.get(path, {}).get(line)
            if codes is not None and (ALL_CODES in codes or code in codes):
                return
        key = (path, line, col, code, message)
        if key in seen:
            return
        seen.add(key)
        violations.append(Violation(path, line, col, code, message))

    for rule in RULES:
        rule.check(program, report)

    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return violations


def read_sources(paths: Iterable[str]) -> List[Tuple[str, str]]:
    return [
        (str(path), path.read_text(encoding="utf-8"))
        for path in iter_python_files(paths)
    ]


def analyze_paths(
    paths: Iterable[str],
    select: Optional[Iterable[str]] = None,
    apply_suppressions: bool = True,
) -> List[Violation]:
    return analyze_sources(
        read_sources(paths), select=select, apply_suppressions=apply_suppressions
    )


# --------------------------------------------------------------------------
# Kernel-eligibility report (EFFECTS.json)
# --------------------------------------------------------------------------


def _short(qualname: str) -> str:
    return qualname.replace("repro.", "", 1)


def build_report(program: Program) -> Dict[str, object]:
    """The machine-readable kernel-eligibility report for EFFECTS.json."""
    scope = kernel_scope(program)
    entries: List[Dict[str, object]] = []
    for function in sorted(program.functions.values(), key=lambda f: f.qualname):
        if not function.annotated:
            continue
        effects = sorted(function.effects)
        disqualifiers: List[Dict[str, object]] = []
        for effect in sorted(set(effects) - KERNEL_SAFE_EFFECTS):
            chain = witness_chain(program, function.qualname, effect)
            disqualifiers.append(
                {
                    "effect": effect,
                    "chain": " -> ".join(_short(q) for q in chain),
                }
            )
        unresolved = transitive_unresolved(program, function.qualname)
        for holder, line, reason in unresolved:
            disqualifiers.append(
                {
                    "unresolved_call": reason,
                    "function": _short(holder),
                    "line": line,
                }
            )
        eligible = not disqualifiers
        contract = "kernel" if function.kernel is not None else "effects"
        entry: Dict[str, object] = {
            "function": _short(function.qualname),
            "module": function.module,
            "file": program.paths[function.module],
            "line": function.lineno,
            "contract": contract,
            "effects": effects,
            "raises": sorted(exc.split(".")[-1] for exc in function.raises),
            "kernel_eligible": eligible,
            "certified_kernel": eligible and function.kernel is not None,
        }
        if function.kernel is not None:
            entry["allow"] = sorted(function.kernel["allow"])
            entry["may_raise"] = sorted(function.kernel["may_raise"])
        if function.declared_effects is not None:
            entry["declared_effects"] = sorted(function.declared_effects)
        if disqualifiers:
            entry["disqualifiers"] = disqualifiers
        entries.append(entry)

    certified = [e["function"] for e in entries if e["certified_kernel"]]
    eligible_only = [
        e["function"] for e in entries if e["kernel_eligible"] and not e["certified_kernel"]
    ]
    return {
        "tool": TOOL,
        "schema_version": 1,
        "kernel_safe_effects": sorted(KERNEL_SAFE_EFFECTS),
        "seeded_primitives": sorted(SPEC_SEEDS),
        "summary": {
            "annotated": len(entries),
            "certified_kernels": len(certified),
            "eligible_not_declared": len(eligible_only),
            "disqualified": len(entries) - len(certified) - len(eligible_only),
            "kernel_scope_functions": len(scope),
        },
        "certified": sorted(certified),
        "functions": entries,
    }


def report_for_paths(paths: Iterable[str]) -> Dict[str, object]:
    program, _errors = build(read_sources(paths))
    return build_report(program)
