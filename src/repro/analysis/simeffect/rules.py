"""SE rule catalogue: checks over the solved whole-program effect model.

Unlike the simlint/simrace/simflow rules, which fire per file, every SE
rule reads the *solved* program — effect summaries after the call-graph
fixpoint — so a finding on one line can be caused by a callee three
modules away.  Messages therefore carry the witness chain
(``caller -> callee -> ... -> primitive``) so the report is actionable
without re-running the analysis by hand.

All SE rules are sim-scope-only: the batch-compilation gate applies to
the simulator layers, not to experiment scripts.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.effects import KERNEL_SAFE_EFFECTS
from repro.analysis.simeffect.model import FunctionInfo, Program, SPEC_SEEDS
from repro.analysis.simeffect.scan import (
    kernel_scope,
    raise_chain,
    witness_chain,
)

#: Effects whose presence makes holding a lock meaningful (SE006): the
#: lock protects shared mutable state, durability, time, or an RNG stream.
LOCK_MEANINGFUL_EFFECTS = frozenset(
    {"MUTATES_STATE", "MUTATES_STATS", "PERSISTS", "ADVANCES_CLOCK", "RNG"}
)

Report = Callable[[str, str, int, int, str], None]


def _chain_str(chain: List[str]) -> str:
    return " -> ".join(name.replace("repro.", "", 1) for name in chain)


def _short(qualname: str) -> str:
    return qualname.replace("repro.", "", 1)


class Rule:
    """One SE rule; ``check`` walks the solved program and reports."""

    code = "SE000"
    title = ""
    sim_scope_only = True
    explanation = ""

    def check(self, program: Program, report: Report) -> None:
        raise NotImplementedError


def _def_site(program: Program, function: FunctionInfo) -> Tuple[str, int]:
    return program.paths[function.module], function.lineno


class KernelContractViolated(Rule):
    code = "SE001"
    title = "@kernel function has a non-kernel-safe transitive effect"
    explanation = (
        "A function declared @kernel may only mutate model state and stats "
        "(the vectorizable effects) plus anything in its allow= list; other "
        "transitive effects — clock, DES yields, RNG, flash programs, fault "
        "hooks — couple it to the event loop and forbid batch compilation."
    )

    def check(self, program: Program, report: Report) -> None:
        for function in sorted(program.functions.values(), key=lambda f: f.qualname):
            if function.kernel is None or function.seeded:
                continue
            allowed = KERNEL_SAFE_EFFECTS | set(function.kernel["allow"])
            for effect in sorted(function.effects - allowed):
                path, line = _def_site(program, function)
                chain = witness_chain(program, function.qualname, effect)
                report(
                    self.code, path, line, 0,
                    f"@kernel function {_short(function.qualname)} has effect "
                    f"{effect} (via {_chain_str(chain)})",
                )


class DeclaredEffectsExceeded(Rule):
    code = "SE002"
    title = "inferred effects exceed the @effects declaration"
    explanation = (
        "An @effects(...) annotation is a ceiling: the implementation must "
        "not silently grow effects beyond what it declares, or the "
        "kernel-eligibility report stops being trustworthy."
    )

    def check(self, program: Program, report: Report) -> None:
        for function in sorted(program.functions.values(), key=lambda f: f.qualname):
            if function.declared_effects is None or function.seeded:
                continue
            for effect in sorted(function.effects - function.declared_effects):
                path, line = _def_site(program, function)
                chain = witness_chain(program, function.qualname, effect)
                report(
                    self.code, path, line, 0,
                    f"{_short(function.qualname)} has undeclared effect {effect} "
                    f"(via {_chain_str(chain)}); add it to @effects or remove "
                    f"the cause",
                )


class UnresolvedDispatchInKernel(Rule):
    code = "SE003"
    title = "unresolvable dynamic dispatch inside kernel scope"
    explanation = (
        "Batch compilation needs the full call graph of a kernel: a call "
        "the analysis cannot resolve (untyped receiver, hook through a "
        "callable value) hides arbitrary effects."
    )

    def check(self, program: Program, report: Report) -> None:
        scope = kernel_scope(program)
        for qualname in sorted(scope):
            function = program.functions[qualname]
            path = program.paths[function.module]
            for line, reason in sorted(function.unresolved):
                report(
                    self.code, path, line, 0,
                    f"unresolved call in kernel scope of "
                    f"{_short(scope[qualname])}: {reason}",
                )


class AllocationInKernel(Rule):
    code = "SE004"
    title = "per-access container allocation inside kernel scope"
    explanation = (
        "A fresh list/dict/set per access defeats the point of batching "
        "the hot walk; kernels must work in pre-allocated state.  "
        "Exception-path formatting is exempt."
    )

    def check(self, program: Program, report: Report) -> None:
        scope = kernel_scope(program)
        for qualname in sorted(scope):
            function = program.functions[qualname]
            path = program.paths[function.module]
            for line, desc in sorted(function.allocs):
                report(
                    self.code, path, line, 0,
                    f"container allocation ({desc}) in kernel scope of "
                    f"{_short(scope[qualname])}",
                )


class UndeclaredKernelRaise(Rule):
    code = "SE005"
    title = "exception escapes a @kernel function without a may_raise entry"
    explanation = (
        "Every exception that can escape a kernel is a guard: the batched "
        "kernel must bail out to the interpreter when it fires.  An "
        "undeclared escape means the bailout set is wrong."
    )

    def check(self, program: Program, report: Report) -> None:
        for function in sorted(program.functions.values(), key=lambda f: f.qualname):
            if function.kernel is None or function.seeded:
                continue
            declared = function.kernel["may_raise"]
            for exc in sorted(function.raises):
                if any(program.exc_subsumes(d, exc) for d in declared):
                    continue
                path, line = _def_site(program, function)
                chain = raise_chain(program, function.qualname, exc)
                report(
                    self.code, path, line, 0,
                    f"@kernel function {_short(function.qualname)} can raise "
                    f"{exc.split('.')[-1]} (via {_chain_str(chain)}) but does "
                    f"not declare it in may_raise",
                )


class PointlessLock(Rule):
    code = "SE006"
    title = "effect-free function holds a lock"
    explanation = (
        "Acquiring a DES lock in a function whose transitive effects touch "
        "no shared state (no mutation, persistence, clock advance, or RNG) "
        "serializes the simulation for nothing."
    )

    def check(self, program: Program, report: Report) -> None:
        for function in sorted(program.functions.values(), key=lambda f: f.qualname):
            if not function.acquires_lock or function.seeded:
                continue
            if function.effects & LOCK_MEANINGFUL_EFFECTS:
                continue
            path, line = _def_site(program, function)
            report(
                self.code, path, line, 0,
                f"{_short(function.qualname)} acquires a lock but has no "
                f"effect a lock could protect (transitive effects: "
                f"{', '.join(sorted(function.effects)) or 'none'})",
            )


RULES: Tuple[Rule, ...] = (
    KernelContractViolated(),
    DeclaredEffectsExceeded(),
    UnresolvedDispatchInKernel(),
    AllocationInKernel(),
    UndeclaredKernelRaise(),
    PointlessLock(),
)

RULES_BY_CODE: Dict[str, Rule] = {rule.code: rule for rule in RULES}

# silence unused-import warnings for re-exported names used by the engine
_ = SPEC_SEEDS
