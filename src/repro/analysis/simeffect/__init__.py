"""simeffect: interprocedural effect & kernel-eligibility analysis.

The fourth member of the repo's analysis family.  simlint checks
token-level simulation hygiene, simrace checks cross-yield atomicity,
simflow tracks address-domain flow; simeffect reasons *interprocedurally*
— it solves a call-graph fixpoint over the whole ``repro.*`` tree,
inferring a per-function effect summary from a small lattice (PURE,
READS_CLOCK, ADVANCES_CLOCK, YIELDS, RNG, MUTATES_STATS, MUTATES_STATE,
PERSISTS, FAULT_HOOK) and checking it against the declared contracts of
:mod:`repro.effects` (rules SE001–SE006).

Its product is the kernel-eligibility report (``--report`` →
``EFFECTS.json``): the proof obligation for ROADMAP item 1, naming every
hot-path function certified batch-compilable and, for the rest, the
concrete transitive effect that disqualifies them.

Run it with ``python -m repro.analysis.simeffect src/repro`` (exit 1 on
findings) or through the :mod:`repro.analysis.analyze` umbrella.
"""

from repro.analysis.findings import Violation
from repro.analysis.simeffect.engine import (
    analyze_paths,
    analyze_sources,
    build,
    build_report,
    infer_sim_scope,
    report_for_paths,
)
from repro.analysis.simeffect.rules import RULES

__all__ = [
    "Violation",
    "analyze_sources",
    "analyze_paths",
    "build",
    "build_report",
    "report_for_paths",
    "infer_sim_scope",
    "RULES",
]
