"""Command-line entry point: ``python -m repro.analysis.simeffect <paths>``.

Exits 1 when any violation is found, 0 on a clean tree.  With
``--report [FILE]`` the kernel-eligibility report is written (default
``EFFECTS.json``) — the gating artifact for the batch-compilation
refactor — and the exit status still reflects findings.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.findings import (
    add_baseline_arguments,
    apply_baseline,
    findings_json,
)
from repro.analysis.simeffect.engine import (
    TOOL,
    analyze_sources,
    build,
    build_report,
    read_sources,
)
from repro.analysis.simeffect.rules import RULES


def _list_rules() -> str:
    lines = ["simeffect rule catalogue:", ""]
    for rule in RULES:
        scope = "sim scope only" if rule.sim_scope_only else "all files"
        lines.append(f"  {rule.code}  {rule.title}  [{scope}]")
        lines.append(f"         {rule.explanation}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.simeffect",
        description=(
            "Interprocedural effect & kernel-eligibility analysis for the "
            "FlatFlash simulator."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files or directories to analyze as ONE program (directories are "
            "walked for *.py; default src/repro when --report is given)"
        ),
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all), e.g. SE001,SE005",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit findings as JSON (shared analysis-family schema)",
    )
    parser.add_argument(
        "--report",
        nargs="?",
        const="EFFECTS.json",
        metavar="FILE",
        help=(
            "write the kernel-eligibility report to FILE "
            "(default EFFECTS.json) in addition to reporting findings"
        ),
    )
    add_baseline_arguments(parser)
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0
    if not args.paths:
        if args.report:
            args.paths = ["src/repro"]
        else:
            parser.error(
                "no paths given (try: python -m repro.analysis.simeffect src/repro)"
            )

    select = None
    if args.select:
        select = [code.strip().upper() for code in args.select.split(",") if code.strip()]
        known = {rule.code for rule in RULES} | {"SE000"}
        unknown = sorted(set(select) - known)
        if unknown:
            parser.error(
                f"unknown rule code(s): {', '.join(unknown)} (see --list-rules)"
            )

    sources = read_sources(args.paths)
    if not sources:
        print("simeffect: no Python files found under the given paths", file=sys.stderr)
        return 0

    violations = analyze_sources(sources, select=select)

    if args.report:
        program, _errors = build(sources)
        report = build_report(program)
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        summary = report["summary"]
        print(
            f"simeffect: wrote {args.report} — "
            f"{summary['certified_kernels']} certified kernel(s), "
            f"{summary['disqualified']} disqualified, "
            f"{summary['annotated']} annotated function(s)"
        )

    violations, done = apply_baseline(args, TOOL, violations, len(sources))
    if done is not None:
        return done

    if args.json:
        print(findings_json(TOOL, violations, files_checked=len(sources)))
        return 1 if violations else 0

    for violation in violations:
        print(violation.format())
    if violations:
        print(f"\nsimeffect: {len(violations)} violation(s) in {len(sources)} file(s)")
        return 1
    print(f"simeffect: {len(sources)} file(s) clean")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped into `head`
        sys.exit(0)
