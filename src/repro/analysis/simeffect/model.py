"""simeffect whole-program model: types, call graph, and effect fixpoint.

The model is built in passes over every file handed to the engine:

A.  Per-module symbol tables — classes, functions, imports (including
    ``TYPE_CHECKING`` blocks), and the module name derived from the path.
B1. Class bases, subclass sets, and MRO linearisation.
B2. Module-global typing — ``DomainType`` instances (``VPN = ...``),
    ``Callable[...]`` type aliases, plain constants.
B3. Instance-attribute typing from ``self.x = expr`` / ``self.x: T``
    across every method, iterated to a small fixpoint so attribute types
    can depend on each other.

Then each non-seeded function body is scanned once, producing its
*intrinsic* summary — direct effects, raise sites, container-allocation
sites, lock acquisitions — and its outgoing call edges, with calls
resolved through the type information (receiver-typed methods, subclass
dispatch, ``super()``, class-name statics, ``__call__`` on instance-typed
globals, builtin container methods, external-module policy).  Unresolvable
call sites are recorded with a reason instead of an edge.

Finally a fixpoint over the call graph joins callee summaries into caller
summaries (exceptions filtered by the handlers active at each call site),
with provenance pointers so a finding can print the witness chain
``caller -> callee -> ... -> primitive``.

Trusted primitives (``SPEC_SEEDS``) — the sim clock, stats counters,
domain-tag checks, the fault plane — are *not* scanned; their published
summaries terminate the traversal, exactly as the batch compiler would
treat them as opaque intrinsics.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.effects import KERNEL_SAFE_EFFECTS  # noqa: F401  (re-exported)

# --------------------------------------------------------------------------
# Effect lattice
# --------------------------------------------------------------------------

READS_CLOCK = "READS_CLOCK"
ADVANCES_CLOCK = "ADVANCES_CLOCK"
YIELDS = "YIELDS"
RNG = "RNG"
MUTATES_STATS = "MUTATES_STATS"
MUTATES_STATE = "MUTATES_STATE"
PERSISTS = "PERSISTS"
FAULT_HOOK = "FAULT_HOOK"

#: Trusted-spec summaries for simulation primitives: qualname ->
#: (effects, raised exception canonical names).  These *replace* inference
#: — the functions are never scanned and the fixpoint never descends into
#: them.  Raises listed here are part of the primitive's contract;
#: validation raises (e.g. ``Counter.add`` rejecting negatives) are
#: deliberately omitted — they indicate a model bug, not a guard the
#: batched kernel must handle.
SPEC_SEEDS: Dict[str, Tuple[FrozenSet[str], FrozenSet[str]]] = {
    "repro.sim.clock.SimClock.now": (frozenset({READS_CLOCK}), frozenset()),
    "repro.sim.clock.SimClock.now_us": (frozenset({READS_CLOCK}), frozenset()),
    "repro.sim.clock.SimClock.now_sec": (frozenset({READS_CLOCK}), frozenset()),
    "repro.sim.clock.SimClock.advance": (
        frozenset({ADVANCES_CLOCK}),
        frozenset({"repro.sim.clock.PowerLossTriggered"}),
    ),
    "repro.sim.clock.SimClock.advance_to": (
        frozenset({ADVANCES_CLOCK}),
        frozenset({"repro.sim.clock.PowerLossTriggered"}),
    ),
    "repro.sim.stats.Counter.add": (frozenset({MUTATES_STATS}), frozenset()),
    "repro.sim.stats.Counter.reset": (frozenset({MUTATES_STATS}), frozenset()),
    "repro.sim.stats.RatioStat.record": (frozenset({MUTATES_STATS}), frozenset()),
    "repro.sim.stats.RatioStat.reset": (frozenset({MUTATES_STATS}), frozenset()),
    "repro.sim.stats.LatencyStats.record": (frozenset({MUTATES_STATS}), frozenset()),
    "repro.sim.stats.LatencyStats.extend": (frozenset({MUTATES_STATS}), frozenset()),
    "repro.sim.stats.LatencyStats.reset": (frozenset({MUTATES_STATS}), frozenset()),
    "repro.sim.stats.Histogram.record": (frozenset({MUTATES_STATS}), frozenset()),
    "repro.sim.stats.Histogram.extend": (frozenset({MUTATES_STATS}), frozenset()),
    "repro.sim.domain_tags.check": (
        frozenset(),
        frozenset({"repro.sim.domain_tags.DomainTagError"}),
    ),
    "repro.sim.domain_tags.tag": (frozenset(), frozenset()),
    "repro.faults.plan.FaultInjector.fires": (
        frozenset({FAULT_HOOK}),
        frozenset(),
    ),
}

#: Effects *added on top of* inference — a scanned body whose side effect
#: is invisible to the model (NAND durability is data, not control flow).
EXTRA_SEEDS: Dict[str, FrozenSet[str]] = {
    "repro.ssd.flash.FlashArray.program": frozenset({PERSISTS}),
    "repro.ssd.flash.FlashArray.erase": frozenset({PERSISTS}),
}

#: DES commands whose yield is a scheduling point (→ YIELDS); the lock
#: commands additionally mark the function as lock-acquiring (→ SE006).
DES_COMMAND_CLASSES = {"Delay", "Acquire", "Release", "AcquireSlot", "ReleaseSlot", "Timeout"}
DES_ACQUIRE_CLASSES = {"Acquire", "AcquireSlot"}
DES_MODULE = "repro.sim.des"

# --------------------------------------------------------------------------
# External-module policy
# --------------------------------------------------------------------------

#: stdlib modules whose calls are treated as pure (no tracked effects).
PURE_EXTERNAL = {
    "struct", "math", "enum", "abc", "itertools", "functools", "heapq",
    "bisect", "json", "copy", "re", "textwrap", "dataclasses", "typing",
    "operator", "string", "collections", "statistics", "os", "os.path",
    "pathlib", "sys", "time", "array", "zlib", "hashlib",
}

#: modules whose calls draw from a random stream.
RNG_MODULES = {"random", "secrets"}

#: builtins whose call has no tracked effect.
PURE_BUILTINS = {
    "len", "int", "float", "str", "bool", "bytes", "tuple", "abs", "min",
    "max", "sum", "sorted", "reversed", "enumerate", "zip", "range", "map",
    "filter", "isinstance", "issubclass", "repr", "format", "hash", "id",
    "divmod", "round", "pow", "ord", "chr", "hex", "oct", "bin", "all",
    "any", "iter", "next", "getattr", "hasattr", "setattr", "callable",
    "print", "vars", "type", "super", "memoryview", "slice", "object",
    "staticmethod", "classmethod", "property",
}

#: builtins whose call allocates a fresh container (SE004 in kernel scope).
ALLOC_BUILTINS = {"list", "dict", "set", "frozenset", "bytearray"}

#: collections constructors reachable as imported names.
ALLOC_COLLECTIONS = {"deque", "OrderedDict", "defaultdict"}

BUILTIN_EXCEPTIONS = {
    "BaseException", "Exception", "ArithmeticError", "AssertionError",
    "AttributeError", "IndexError", "KeyError", "LookupError",
    "MemoryError", "NotImplementedError", "OSError", "OverflowError",
    "RuntimeError", "StopIteration", "TypeError", "ValueError",
    "ZeroDivisionError", "IOError",
}

#: parent links for the builtin exception hierarchy (subsumption checks).
BUILTIN_EXC_PARENT = {
    "Exception": "BaseException",
    "ArithmeticError": "Exception",
    "AssertionError": "Exception",
    "AttributeError": "Exception",
    "LookupError": "Exception",
    "IndexError": "LookupError",
    "KeyError": "LookupError",
    "MemoryError": "Exception",
    "RuntimeError": "Exception",
    "NotImplementedError": "RuntimeError",
    "OSError": "Exception",
    "IOError": "OSError",
    "OverflowError": "ArithmeticError",
    "ZeroDivisionError": "ArithmeticError",
    "StopIteration": "Exception",
    "TypeError": "Exception",
    "ValueError": "Exception",
}

BUILTIN_CONTAINER_KINDS = {
    "list", "dict", "set", "tuple", "frozenset", "bytearray", "bytes",
    "str", "deque", "OrderedDict", "defaultdict",
}

#: per-container-kind method effect tables: method -> "pure" | "mutate".
#: A method missing from its kind's table defaults to "mutate" (sound).
_DICT_METHODS = {
    "get": "pure", "keys": "pure", "values": "pure", "items": "pure",
    "copy": "pure", "pop": "mutate", "popitem": "mutate", "clear": "mutate",
    "update": "mutate", "setdefault": "mutate",
}
_ORDERED_DICT_METHODS = dict(_DICT_METHODS, move_to_end="mutate")
_LIST_METHODS = {
    "index": "pure", "count": "pure", "copy": "pure",
    "append": "mutate", "extend": "mutate", "insert": "mutate",
    "remove": "mutate", "pop": "mutate", "clear": "mutate",
    "sort": "mutate", "reverse": "mutate",
}
_SET_METHODS = {
    "union": "pure", "intersection": "pure", "difference": "pure",
    "issubset": "pure", "issuperset": "pure", "copy": "pure",
    "isdisjoint": "pure", "symmetric_difference": "pure",
    "add": "mutate", "discard": "mutate", "remove": "mutate",
    "pop": "mutate", "clear": "mutate", "update": "mutate",
    "difference_update": "mutate", "intersection_update": "mutate",
}
_PURE_ALL = "all-pure"
CONTAINER_METHOD_TABLES: Dict[str, object] = {
    "dict": _DICT_METHODS,
    "OrderedDict": _ORDERED_DICT_METHODS,
    "defaultdict": _DICT_METHODS,
    "list": _LIST_METHODS,
    "deque": _LIST_METHODS,
    "bytearray": _LIST_METHODS,
    "set": _SET_METHODS,
    "frozenset": _PURE_ALL,
    "tuple": _PURE_ALL,
    "str": _PURE_ALL,
    "bytes": _PURE_ALL,
    "int": _PURE_ALL,
    "float": _PURE_ALL,
    "bool": _PURE_ALL,
}

#: container methods returning the element type.
_ELEM_RETURNING = {"get", "pop", "popleft"}


# --------------------------------------------------------------------------
# Type references
# --------------------------------------------------------------------------

UNKNOWN_NAME = "?"


@dataclass(frozen=True)
class TypeRef:
    """A candidate-set type: class qualnames and/or builtin kind markers."""

    names: FrozenSet[str]
    elem: Optional["TypeRef"] = None

    @property
    def is_unknown(self) -> bool:
        return UNKNOWN_NAME in self.names or not self.names

    def single(self) -> Optional[str]:
        if len(self.names) == 1:
            return next(iter(self.names))
        return None


UNKNOWN = TypeRef(frozenset({UNKNOWN_NAME}))
NONE_TYPE = TypeRef(frozenset({"NoneType"}))
INT = TypeRef(frozenset({"int"}))
BOOL = TypeRef(frozenset({"bool"}))
STR = TypeRef(frozenset({"str"}))
FLOAT = TypeRef(frozenset({"float"}))
CALLABLE = TypeRef(frozenset({"callable"}))


def make_type(name: str, elem: Optional[TypeRef] = None) -> TypeRef:
    return TypeRef(frozenset({name}), elem)


def join_types(a: Optional[TypeRef], b: Optional[TypeRef]) -> TypeRef:
    if a is None:
        return b if b is not None else UNKNOWN
    if b is None:
        return a
    if a == b:
        return a
    elem: Optional[TypeRef] = None
    if a.elem is not None or b.elem is not None:
        elem = join_types(a.elem, b.elem)
    names = (a.names | b.names) - {"NoneType"}
    if not names:
        names = frozenset({"NoneType"})
    return TypeRef(names, elem)


def strip_optional(t: TypeRef) -> TypeRef:
    names = t.names - {"NoneType"}
    if not names:
        return t
    return TypeRef(names, t.elem)


# --------------------------------------------------------------------------
# Program structure
# --------------------------------------------------------------------------


@dataclass
class CallEdge:
    callee: str                  # qualname (program function or seed)
    line: int
    caught: Tuple[str, ...]      # handler type names active at the site


@dataclass
class FunctionInfo:
    qualname: str
    module: str
    name: str
    node: ast.AST                # FunctionDef / AsyncFunctionDef
    cls: Optional[str] = None    # owning class qualname
    lineno: int = 0
    kernel: Optional[Dict[str, Tuple[str, ...]]] = None  # {"allow","may_raise"}
    declared_effects: Optional[FrozenSet[str]] = None
    is_property: bool = False
    is_staticmethod: bool = False
    is_classmethod: bool = False
    is_abstract: bool = False
    return_type: TypeRef = UNKNOWN
    seeded: bool = False
    # scan results
    intrinsic: Set[str] = field(default_factory=set)
    calls: List[CallEdge] = field(default_factory=list)
    unresolved: List[Tuple[int, str]] = field(default_factory=list)
    allocs: List[Tuple[int, str]] = field(default_factory=list)
    raise_sites: Dict[str, int] = field(default_factory=dict)  # exc -> line
    acquires_lock: bool = False
    # fixpoint results
    effects: Set[str] = field(default_factory=set)
    via: Dict[str, Optional[str]] = field(default_factory=dict)
    raises: Dict[str, Tuple[int, Optional[str]]] = field(default_factory=dict)

    @property
    def annotated(self) -> bool:
        return self.kernel is not None or self.declared_effects is not None


@dataclass
class ClassInfo:
    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    base_names: List[str] = field(default_factory=list)  # resolved qualnames/builtins
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    attr_types: Dict[str, TypeRef] = field(default_factory=dict)
    attr_annotations: Dict[str, ast.expr] = field(default_factory=dict)
    subclasses: Set[str] = field(default_factory=set)
    mro: List[str] = field(default_factory=list)  # class qualnames, self first


@dataclass
class ModuleInfo:
    name: str
    path: str
    tree: ast.Module
    imports: Dict[str, str] = field(default_factory=dict)  # local -> qualname
    classes: Dict[str, ClassInfo] = field(default_factory=dict)   # local name ->
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    global_types: Dict[str, TypeRef] = field(default_factory=dict)


class Program:
    """All modules under analysis plus derived whole-program tables."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.paths: Dict[str, str] = {}  # module name -> file path

    # -- resolution helpers ------------------------------------------------

    def resolve_name(self, module: ModuleInfo, name: str) -> Optional[Tuple[str, str]]:
        """Resolve a bare name in ``module`` to ("class"|"function"|"module"|
        "builtin"|"collections-ctor", qualname) or None."""
        if name in module.classes:
            return ("class", module.classes[name].qualname)
        if name in module.functions:
            return ("function", module.functions[name].qualname)
        if name in module.imports:
            target = module.imports[name]
            kind = self.kind_of_qualname(target)
            if kind is not None:
                return kind
            if target.split(".")[-1] in ALLOC_COLLECTIONS:
                return ("collections-ctor", target.split(".")[-1])
            return ("module", target)
        if name in ALLOC_COLLECTIONS:
            return ("collections-ctor", name)
        if name in PURE_BUILTINS or name in ALLOC_BUILTINS or name in BUILTIN_EXCEPTIONS:
            return ("builtin", name)
        return None

    def kind_of_qualname(self, qualname: str) -> Optional[Tuple[str, str]]:
        if qualname in self.classes:
            return ("class", qualname)
        if qualname in self.functions:
            return ("function", qualname)
        if qualname in self.modules:
            return ("module", qualname)
        # an attribute of a known module? e.g. repro.units.VPN
        head, _, tail = qualname.rpartition(".")
        if head in self.modules and tail in self.modules[head].global_types:
            return ("global", qualname)
        return None

    def mro_of(self, qualname: str) -> List[str]:
        cls = self.classes.get(qualname)
        return cls.mro if cls is not None else [qualname]

    def find_method(self, class_qualname: str, method: str) -> Optional[FunctionInfo]:
        """First definition of ``method`` along the MRO (self first)."""
        for qn in self.mro_of(class_qualname):
            cls = self.classes.get(qn)
            if cls is not None and method in cls.methods:
                return cls.methods[method]
        return None

    def subtree_of(self, class_qualname: str) -> List[str]:
        """The class plus all transitive subclasses."""
        out: List[str] = []
        stack = [class_qualname]
        seen: Set[str] = set()
        while stack:
            qn = stack.pop()
            if qn in seen:
                continue
            seen.add(qn)
            out.append(qn)
            cls = self.classes.get(qn)
            if cls is not None:
                stack.extend(sorted(cls.subclasses))
        return out

    def exc_parent(self, name: str) -> Optional[str]:
        """Parent of an exception type (builtin table or class base chain)."""
        if name in self.classes:
            for base in self.classes[name].base_names:
                return base  # single-inheritance exceptions in this repo
            return None
        return BUILTIN_EXC_PARENT.get(name)

    def exc_subsumes(self, handler: str, exc: str) -> bool:
        """Does a handler for ``handler`` catch an ``exc`` raise?"""
        if handler in ("BaseException",):
            return True
        cursor: Optional[str] = exc
        for _ in range(32):
            if cursor is None:
                return False
            if cursor == handler or cursor.split(".")[-1] == handler.split(".")[-1]:
                return True
            cursor = self.exc_parent(cursor)
        return False


# --------------------------------------------------------------------------
# Pass A: module symbol tables
# --------------------------------------------------------------------------


def module_name_for_path(path: str) -> str:
    """Derive the dotted module name from a path containing ``repro``."""
    parts = list(Path(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return ".".join(parts[index:])
    return ".".join(parts[-1:]) if parts else "<module>"


def _collect_imports(body: Sequence[ast.stmt], module_name: str, out: Dict[str, str]) -> None:
    package = module_name.rpartition(".")[0]
    for stmt in body:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.asname:
                    out[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    out[root] = root
        elif isinstance(stmt, ast.ImportFrom):
            base = stmt.module or ""
            if stmt.level:
                prefix_parts = module_name.split(".")
                # level 1 = current package, 2 = parent, ...
                keep = len(prefix_parts) - stmt.level
                prefix = ".".join(prefix_parts[:keep]) if keep > 0 else ""
                base = f"{prefix}.{base}".strip(".") if base else prefix
            for alias in stmt.names:
                local = alias.asname or alias.name
                out[local] = f"{base}.{alias.name}" if base else alias.name
        elif isinstance(stmt, ast.If):
            _collect_imports(stmt.body, module_name, out)
            _collect_imports(stmt.orelse, module_name, out)
        elif isinstance(stmt, ast.Try):
            _collect_imports(stmt.body, module_name, out)
            for handler in stmt.handlers:
                _collect_imports(handler.body, module_name, out)
    _ = package


def _decorator_name(dec: ast.expr) -> Optional[str]:
    node = dec.func if isinstance(dec, ast.Call) else dec
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _string_tuple(node: Optional[ast.expr]) -> Tuple[str, ...]:
    if node is None:
        return ()
    if isinstance(node, (ast.Tuple, ast.List)):
        elements = node.elts
    else:
        elements = [node]
    out = []
    for element in elements:
        if isinstance(element, ast.Constant) and isinstance(element.value, str):
            out.append(element.value)
    return tuple(out)


def _parse_function(node: ast.AST, module: str, cls: Optional[str]) -> FunctionInfo:
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    qualname = f"{cls}.{node.name}" if cls else f"{module}.{node.name}"
    info = FunctionInfo(
        qualname=qualname, module=module, name=node.name, node=node,
        cls=cls, lineno=node.lineno,
    )
    for dec in node.decorator_list:
        name = _decorator_name(dec)
        if name == "kernel":
            allow: Tuple[str, ...] = ()
            may_raise: Tuple[str, ...] = ()
            if isinstance(dec, ast.Call):
                for kw in dec.keywords:
                    if kw.arg == "allow":
                        allow = _string_tuple(kw.value)
                    elif kw.arg == "may_raise":
                        may_raise = _string_tuple(kw.value)
            info.kernel = {"allow": allow, "may_raise": may_raise}
        elif name == "effects" and isinstance(dec, ast.Call):
            info.declared_effects = frozenset(_string_tuple(ast.Tuple(elts=list(dec.args))))
        elif name == "property":
            info.is_property = True
        elif name == "staticmethod":
            info.is_staticmethod = True
        elif name == "classmethod":
            info.is_classmethod = True
        elif name == "abstractmethod":
            info.is_abstract = True
    return info


def build_module(path: str, source: str, tree: ast.Module) -> ModuleInfo:
    name = module_name_for_path(path)
    module = ModuleInfo(name=name, path=path, tree=tree)
    _collect_imports(tree.body, name, module.imports)
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            module.functions[stmt.name] = _parse_function(stmt, name, None)
        elif isinstance(stmt, ast.ClassDef):
            cls = ClassInfo(
                qualname=f"{name}.{stmt.name}", module=name, name=stmt.name, node=stmt
            )
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    cls.methods[sub.name] = _parse_function(sub, name, cls.qualname)
                elif isinstance(sub, ast.AnnAssign) and isinstance(sub.target, ast.Name):
                    cls.attr_annotations[sub.target.id] = sub.annotation
            module.classes[stmt.name] = cls
    return module


# --------------------------------------------------------------------------
# Pass B1: bases, subclasses, MRO
# --------------------------------------------------------------------------


def _resolve_base(program: Program, module: ModuleInfo, node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        resolved = program.resolve_name(module, node.id)
        if resolved is not None and resolved[0] in ("class", "builtin"):
            return resolved[1]
        if node.id in BUILTIN_EXCEPTIONS or node.id in BUILTIN_CONTAINER_KINDS:
            return node.id
        return None
    if isinstance(node, ast.Attribute):
        # module.Class
        if isinstance(node.value, ast.Name):
            resolved = program.resolve_name(module, node.value.id)
            if resolved is not None and resolved[0] == "module":
                qual = f"{resolved[1]}.{node.attr}"
                if qual in program.classes:
                    return qual
        return None
    if isinstance(node, ast.Subscript):  # Generic[...]
        return _resolve_base(program, module, node.value)
    return None


def link_classes(program: Program) -> None:
    for module in program.modules.values():
        for cls in module.classes.values():
            for base in cls.node.bases:
                resolved = _resolve_base(program, module, base)
                if resolved is not None:
                    cls.base_names.append(resolved)
                    if resolved in program.classes:
                        program.classes[resolved].subclasses.add(cls.qualname)
    # MRO: DFS left-to-right with dedup (no diamonds in this codebase)
    for cls in program.classes.values():
        mro: List[str] = []
        stack = [cls.qualname]
        while stack:
            qn = stack.pop(0)
            if qn in mro:
                continue
            mro.append(qn)
            info = program.classes.get(qn)
            if info is not None:
                stack = [b for b in info.base_names if b in program.classes] + stack
        cls.mro = mro


# --------------------------------------------------------------------------
# Annotation parsing
# --------------------------------------------------------------------------

_TYPING_LIST_KINDS = {
    "List": "list", "Sequence": "list", "Iterable": "list", "Iterator": "list",
    "MutableSequence": "list", "FrozenSet": "frozenset", "Set": "set",
    "MutableSet": "set", "Deque": "deque", "Tuple": "tuple",
}
_TYPING_DICT_KINDS = {
    "Dict": "dict", "Mapping": "dict", "MutableMapping": "dict",
    "OrderedDict": "OrderedDict", "DefaultDict": "defaultdict",
}
_BUILTIN_ANN = {
    "int": "int", "float": "float", "bool": "bool", "str": "str",
    "bytes": "bytes", "bytearray": "bytearray", "list": "list",
    "dict": "dict", "set": "set", "tuple": "tuple", "frozenset": "frozenset",
    "None": "NoneType", "object": UNKNOWN_NAME, "Any": UNKNOWN_NAME,
}


def _value_as_annotation(value_type: TypeRef) -> TypeRef:
    """A module global used *as* an annotation: a ``DomainType`` instance
    (``VPN``, ``TimeNs``, ...) annotates a tagged int; a ``Callable[...]``
    alias annotates a callable; anything else is opaque."""
    if value_type.single() == "repro.units.DomainType":
        return INT
    if "callable" in value_type.names:
        return CALLABLE
    return UNKNOWN


def _global_as_annotation(program: Program, qualname: str) -> TypeRef:
    head, _, tail = qualname.rpartition(".")
    value_type = program.modules[head].global_types.get(tail, UNKNOWN)
    return _value_as_annotation(value_type)


def parse_annotation(program: Program, module: ModuleInfo, node: Optional[ast.expr]) -> TypeRef:
    if node is None:
        return UNKNOWN
    if isinstance(node, ast.Constant):
        if node.value is None:
            return NONE_TYPE
        if isinstance(node.value, str):
            try:
                parsed = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return UNKNOWN
            return parse_annotation(program, module, parsed)
        return UNKNOWN
    if isinstance(node, ast.Name):
        name = node.id
        if name in _BUILTIN_ANN:
            return make_type(_BUILTIN_ANN[name])
        resolved = program.resolve_name(module, name)
        if resolved is not None and resolved[0] == "class":
            return make_type(resolved[1])
        if resolved is not None and resolved[0] == "builtin":
            return make_type(resolved[1]) if resolved[1] in _BUILTIN_ANN else UNKNOWN
        if resolved is not None and resolved[0] == "global":
            return _global_as_annotation(program, resolved[1])
        if name == "Callable":
            return CALLABLE
        # a module-global alias used as an annotation (Callable alias,
        # DomainType instance like VPN/TimeNs, ...)
        if name in module.global_types:
            return _value_as_annotation(module.global_types[name])
        return UNKNOWN
    if isinstance(node, ast.Attribute):
        if isinstance(node.value, ast.Name):
            resolved = program.resolve_name(module, node.value.id)
            if resolved is not None and resolved[0] == "module":
                qual = f"{resolved[1]}.{node.attr}"
                if qual in program.classes:
                    return make_type(qual)
            if node.value.id in ("typing", "t"):
                return parse_annotation(program, module, ast.Name(id=node.attr, ctx=ast.Load()))
            if node.value.id == "random" and node.attr == "Random":
                return make_type("random.Random")
        return UNKNOWN
    if isinstance(node, ast.Subscript):
        base = node.value
        base_name = None
        if isinstance(base, ast.Name):
            base_name = base.id
        elif isinstance(base, ast.Attribute):
            base_name = base.attr
        slice_node = node.slice
        if isinstance(slice_node, ast.Index):  # py<3.9 compat in ASTs
            slice_node = slice_node.value  # pragma: no cover
        if base_name == "Optional":
            inner = parse_annotation(program, module, slice_node)
            return join_types(inner, NONE_TYPE)
        if base_name == "Union":
            parts = slice_node.elts if isinstance(slice_node, ast.Tuple) else [slice_node]
            out: Optional[TypeRef] = None
            for part in parts:
                out = join_types(out, parse_annotation(program, module, part))
            return out if out is not None else UNKNOWN
        if base_name == "Callable":
            return CALLABLE
        if base_name in _TYPING_LIST_KINDS or base_name in ("list", "set", "frozenset", "tuple"):
            kind = _TYPING_LIST_KINDS.get(base_name, base_name)
            if isinstance(slice_node, ast.Tuple) and slice_node.elts:
                elem: Optional[TypeRef] = None
                for part in slice_node.elts:
                    if isinstance(part, ast.Constant) and part.value is Ellipsis:
                        continue
                    elem = join_types(elem, parse_annotation(program, module, part))
                return make_type(kind, elem if elem is not None else UNKNOWN)
            return make_type(kind, parse_annotation(program, module, slice_node))
        if base_name in _TYPING_DICT_KINDS or base_name == "dict":
            kind = _TYPING_DICT_KINDS.get(base_name, "dict")
            if isinstance(slice_node, ast.Tuple) and len(slice_node.elts) == 2:
                value = parse_annotation(program, module, slice_node.elts[1])
                return make_type(kind, value)
            return make_type(kind, UNKNOWN)
        if base_name == "Type":
            return UNKNOWN
        # Generic user classes — drop the parameterisation
        return parse_annotation(program, module, node.value)
    return UNKNOWN


# --------------------------------------------------------------------------
# Pass B2/B3: global and attribute typing (uses the expression typer below)
# --------------------------------------------------------------------------


class TypeContext:
    """Everything the expression typer needs to resolve names."""

    def __init__(self, program: Program, module: ModuleInfo,
                 cls: Optional[ClassInfo], env: Dict[str, TypeRef]):
        self.program = program
        self.module = module
        self.cls = cls
        self.env = env


def _ctor_return(program: Program, class_qualname: str) -> TypeRef:
    return make_type(class_qualname)


def infer_type(ctx: TypeContext, node: ast.expr) -> TypeRef:  # noqa: C901
    program, module = ctx.program, ctx.module
    if isinstance(node, ast.Name):
        if node.id in ctx.env:
            return ctx.env[node.id]
        if node.id == "self" and ctx.cls is not None:
            return make_type(ctx.cls.qualname)
        if node.id in module.global_types:
            return module.global_types[node.id]
        resolved = program.resolve_name(module, node.id)
        if resolved is not None and resolved[0] == "global":
            head, _, tail = resolved[1].rpartition(".")
            return program.modules[head].global_types.get(tail, UNKNOWN)
        if resolved is not None and resolved[0] in ("class", "function"):
            return make_type(f"type:{resolved[1]}")
        if node.id in ("True", "False"):
            return BOOL
        return UNKNOWN
    if isinstance(node, ast.Constant):
        value = node.value
        if value is None:
            return NONE_TYPE
        if isinstance(value, bool):
            return BOOL
        if isinstance(value, int):
            return INT
        if isinstance(value, float):
            return FLOAT
        if isinstance(value, str):
            return STR
        if isinstance(value, bytes):
            return make_type("bytes")
        return UNKNOWN
    if isinstance(node, ast.Attribute):
        base = strip_optional(infer_type(ctx, node.value))
        out: Optional[TypeRef] = None
        for name in base.names:
            if name in program.classes:
                cls = program.classes[name]
                attr_t = None
                for qn in cls.mro:
                    info = program.classes.get(qn)
                    if info is None:
                        continue
                    if node.attr in info.attr_types:
                        attr_t = info.attr_types[node.attr]
                        break
                    if node.attr in info.attr_annotations:
                        attr_t = parse_annotation(
                            program, program.modules[info.module], info.attr_annotations[node.attr]
                        )
                        break
                if attr_t is None:
                    prop = program.find_method(name, node.attr)
                    if prop is not None and prop.is_property:
                        attr_t = prop.return_type
                out = join_types(out, attr_t if attr_t is not None else UNKNOWN)
            else:
                out = join_types(out, UNKNOWN)
        return out if out is not None else UNKNOWN
    if isinstance(node, ast.Call):
        return _infer_call_type(ctx, node)
    if isinstance(node, ast.Subscript):
        base = strip_optional(infer_type(ctx, node.value))
        for name in base.names:
            if name in BUILTIN_CONTAINER_KINDS and base.elem is not None:
                return base.elem
        return UNKNOWN
    if isinstance(node, (ast.List, ast.Set)):
        elem: Optional[TypeRef] = None
        for element in node.elts:
            elem = join_types(elem, infer_type(ctx, element))
        kind = "list" if isinstance(node, ast.List) else "set"
        return make_type(kind, elem if elem is not None else UNKNOWN)
    if isinstance(node, ast.Dict):
        elem = None
        for value in node.values:
            if value is not None:
                elem = join_types(elem, infer_type(ctx, value))
        return make_type("dict", elem if elem is not None else UNKNOWN)
    if isinstance(node, ast.Tuple):
        elem = None
        for element in node.elts:
            elem = join_types(elem, infer_type(ctx, element))
        return make_type("tuple", elem if elem is not None else UNKNOWN)
    if isinstance(node, ast.ListComp):
        sub = TypeContext(program, module, ctx.cls, dict(ctx.env))
        for gen in node.generators:
            iter_t = strip_optional(infer_type(sub, gen.iter))
            _bind_target(sub, gen.target, _elem_of(iter_t))
        return make_type("list", infer_type(sub, node.elt))
    if isinstance(node, (ast.SetComp, ast.GeneratorExp)):
        return make_type("set" if isinstance(node, ast.SetComp) else "list", UNKNOWN)
    if isinstance(node, ast.DictComp):
        return make_type("dict", UNKNOWN)
    if isinstance(node, ast.IfExp):
        return join_types(infer_type(ctx, node.body), infer_type(ctx, node.orelse))
    if isinstance(node, ast.BoolOp):
        out = None
        for value in node.values:
            out = join_types(out, infer_type(ctx, value))
        return out if out is not None else UNKNOWN
    if isinstance(node, ast.BinOp):
        left = infer_type(ctx, node.left)
        right = infer_type(ctx, node.right)
        if left.single() == "int" and right.single() == "int":
            return INT
        return join_types(left, right)
    if isinstance(node, ast.UnaryOp):
        if isinstance(node.op, ast.Not):
            return BOOL
        return infer_type(ctx, node.operand)
    if isinstance(node, ast.Compare):
        return BOOL
    if isinstance(node, ast.Lambda):
        return CALLABLE
    if isinstance(node, ast.JoinedStr):
        return STR
    if isinstance(node, ast.Starred):
        return infer_type(ctx, node.value)
    if isinstance(node, ast.NamedExpr):
        return infer_type(ctx, node.value)
    return UNKNOWN


def _elem_of(t: TypeRef) -> TypeRef:
    if t.elem is not None:
        return t.elem
    return UNKNOWN


def _bind_target(ctx: TypeContext, target: ast.expr, value_type: TypeRef) -> None:
    if isinstance(target, ast.Name):
        previous = ctx.env.get(target.id)
        if previous is not None and not previous.is_unknown and not value_type.is_unknown:
            ctx.env[target.id] = join_types(previous, value_type)
        else:
            ctx.env[target.id] = value_type
    elif isinstance(target, (ast.Tuple, ast.List)):
        elem = _elem_of(value_type) if value_type.single() == "tuple" else UNKNOWN
        for sub in target.elts:
            _bind_target(ctx, sub, elem)
    # Attribute/Subscript targets: handled by the attr-typing pass / scanner


def _infer_call_type(ctx: TypeContext, node: ast.Call) -> TypeRef:
    """Return type of a call — shared by the typer and the scanner."""
    program, module = ctx.program, ctx.module
    func = node.func
    if isinstance(func, ast.Name):
        resolved = program.resolve_name(module, func.id)
        if resolved is not None:
            kind, target = resolved
            if kind == "class":
                return _ctor_return(program, target)
            if kind == "function":
                return program.functions[target].return_type
            if kind == "builtin":
                if target in ("int", "len", "abs", "sum", "ord", "hash", "id"):
                    return INT
                if target in ("bool", "isinstance", "issubclass", "all", "any",
                              "callable", "hasattr"):
                    return BOOL
                if target in ("str", "repr", "format", "hex", "oct", "bin", "chr"):
                    return STR
                if target == "float":
                    return FLOAT
                if target in ALLOC_BUILTINS or target in ("tuple", "sorted", "reversed"):
                    kind_name = "list" if target in ("sorted", "reversed") else target
                    elem = UNKNOWN
                    if node.args:
                        elem = _elem_of(strip_optional(infer_type(ctx, node.args[0])))
                    return make_type(kind_name, elem)
                if target == "divmod":
                    return make_type("tuple", INT)
                if target in ("min", "max"):
                    if node.args:
                        first = strip_optional(infer_type(ctx, node.args[0]))
                        if first.single() in BUILTIN_CONTAINER_KINDS:
                            return _elem_of(first)
                        return infer_type(ctx, node.args[0])
                return UNKNOWN
            if kind == "collections-ctor":
                return make_type(target, UNKNOWN)
        # a local/global variable holding a class or callable
        value_t = strip_optional(infer_type(ctx, func))
        single = value_t.single()
        if single is not None and single.startswith("type:"):
            target = single[len("type:"):]
            if target in program.classes:
                return _ctor_return(program, target)
            if target in program.functions:
                return program.functions[target].return_type
        if single is not None and single in program.classes:
            # instance of a class with __call__ (DomainType)
            call = program.find_method(single, "__call__")
            if call is not None:
                return call.return_type
        return UNKNOWN
    if isinstance(func, ast.Attribute):
        # super().m()
        if (isinstance(func.value, ast.Call) and isinstance(func.value.func, ast.Name)
                and func.value.func.id == "super" and ctx.cls is not None):
            for qn in ctx.cls.mro[1:]:
                cls = program.classes.get(qn)
                if cls is not None and func.attr in cls.methods:
                    return cls.methods[func.attr].return_type
            return UNKNOWN
        if isinstance(func.value, ast.Name):
            resolved = program.resolve_name(module, func.value.id)
            if resolved is not None and resolved[0] == "module":
                target = resolved[1]
                member = program.kind_of_qualname(f"{target}.{func.attr}")
                if member is not None and member[0] == "class":
                    return _ctor_return(program, member[1])
                if member is not None and member[0] == "function":
                    return program.functions[member[1]].return_type
                return UNKNOWN
            if resolved is not None and resolved[0] == "class":
                method = program.find_method(resolved[1], func.attr)
                if method is not None:
                    return method.return_type
                return UNKNOWN
        receiver = strip_optional(infer_type(ctx, func.value))
        out: Optional[TypeRef] = None
        for name in receiver.names:
            if name in program.classes:
                method = program.find_method(name, func.attr)
                if method is not None:
                    out = join_types(out, method.return_type)
            elif name in BUILTIN_CONTAINER_KINDS:
                if func.attr in _ELEM_RETURNING:
                    out = join_types(out, _elem_of(receiver))
                elif func.attr in ("keys", "copy"):
                    out = join_types(out, make_type(name, receiver.elem))
                elif func.attr in ("values", "items"):
                    out = join_types(out, make_type("list", receiver.elem))
        return out if out is not None else UNKNOWN
    return UNKNOWN


def type_module_globals(program: Program) -> None:
    """Pass B2: type module-level assignments (DomainType instances, aliases)."""
    for module in program.modules.values():
        ctx = TypeContext(program, module, None, {})
        for stmt in module.tree.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                module.global_types[stmt.target.id] = parse_annotation(
                    program, module, stmt.annotation
                )
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and isinstance(
                stmt.targets[0], ast.Name
            ):
                name = stmt.targets[0].id
                value = stmt.value
                # typing alias: X = Callable[...] / X = Dict[...] etc.
                if isinstance(value, ast.Subscript):
                    module.global_types[name] = parse_annotation(program, module, value)
                    continue
                module.global_types[name] = infer_type(ctx, value)


def type_function_signatures(program: Program) -> None:
    """Parse return annotations for every function (used by the typer)."""
    for function in program.functions.values():
        node = function.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        module = program.modules[function.module]
        function.return_type = parse_annotation(program, module, node.returns)


def _initial_env(program: Program, module: ModuleInfo, cls: Optional[ClassInfo],
                 function: FunctionInfo) -> Dict[str, TypeRef]:
    env: Dict[str, TypeRef] = {}
    node = function.node
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    args = list(node.args.posonlyargs) + list(node.args.args)
    for index, arg in enumerate(args):
        if index == 0 and cls is not None and not function.is_staticmethod:
            env[arg.arg] = make_type(cls.qualname)
            continue
        env[arg.arg] = parse_annotation(program, module, arg.annotation)
    for arg in node.args.kwonlyargs:
        env[arg.arg] = parse_annotation(program, module, arg.annotation)
    return env


def _join_attr(previous: Optional[TypeRef], value: TypeRef) -> TypeRef:
    """Join for attribute inference: UNKNOWN carries no information."""
    if previous is None or previous.is_unknown:
        return value
    if value.is_unknown:
        return previous
    return join_types(previous, value)


def type_class_attributes(program: Program, rounds: int = 4) -> None:
    """Pass B3: infer instance-attribute types from every ``self.x = ...``.

    Each round recomputes every class's table from scratch against the
    *previous* round's tables — accumulating across rounds would freeze
    the UNKNOWNs of round 1 (when dependent attributes were untyped)
    into the final answer.
    """
    for _ in range(rounds):
        changed = False
        for module in program.modules.values():
            for cls in module.classes.values():
                new_attrs: Dict[str, TypeRef] = {}
                for method in cls.methods.values():
                    env = _initial_env(program, module, cls, method)
                    ctx = TypeContext(program, module, cls, env)
                    node = method.node
                    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    self_name = None
                    args = list(node.args.posonlyargs) + list(node.args.args)
                    if args and not method.is_staticmethod:
                        self_name = args[0].arg
                    for stmt in ast.walk(node):
                        target = None
                        value_type = None
                        if isinstance(stmt, ast.AnnAssign) and isinstance(
                            stmt.target, ast.Attribute
                        ):
                            target = stmt.target
                            value_type = parse_annotation(program, module, stmt.annotation)
                        elif isinstance(stmt, ast.Assign):
                            for t in stmt.targets:
                                if isinstance(t, ast.Attribute):
                                    target = t
                            if target is not None:
                                value_type = infer_type(ctx, stmt.value)
                        if target is None or value_type is None:
                            continue
                        if not (isinstance(target.value, ast.Name)
                                and target.value.id == self_name):
                            continue
                        attr = target.attr
                        if isinstance(stmt, ast.AnnAssign):
                            new_attrs[attr] = value_type  # annotation wins
                            continue
                        if attr in cls.attr_annotations:
                            continue  # class-level annotation wins
                        new_attrs[attr] = _join_attr(new_attrs.get(attr), value_type)
                # annotated class attributes (dataclass fields)
                for attr, ann in cls.attr_annotations.items():
                    new_attrs[attr] = parse_annotation(program, module, ann)
                if new_attrs != cls.attr_types:
                    cls.attr_types = new_attrs
                    changed = True
        if not changed:
            break


# --------------------------------------------------------------------------
# Program assembly
# --------------------------------------------------------------------------


def build_program(sources: Sequence[Tuple[str, ast.Module, str]]) -> Program:
    """Build the whole-program model from (path, tree, source) triples."""
    program = Program()
    for path, tree, _source in sources:
        module = build_module(path, _source, tree)
        program.modules[module.name] = module
        program.paths[module.name] = path
        for cls in module.classes.values():
            program.classes[cls.qualname] = cls
            for method in cls.methods.values():
                program.functions[method.qualname] = method
        for function in module.functions.values():
            program.functions[function.qualname] = function
    link_classes(program)
    type_module_globals(program)
    type_function_signatures(program)
    type_class_attributes(program)
    for qualname, function in program.functions.items():
        if qualname in SPEC_SEEDS:
            function.seeded = True
    return program
