"""simeffect body scanner and call-graph fixpoint.

:func:`scan_program` walks every non-seeded function body once, filling in
the *intrinsic* part of its :class:`~repro.analysis.simeffect.model.FunctionInfo`
summary — direct effects, raise sites (with the handler stack active at
each site), container-allocation sites, DES lock acquisitions — and its
outgoing :class:`CallEdge` list, resolving each call through the type
information built by :func:`build_program`.

:func:`fixpoint` then joins callee summaries into caller summaries until
stable, filtering exception propagation by the handlers recorded at each
call site, and keeps provenance pointers (``via`` / per-raise source) so
rules can print witness chains.

:func:`kernel_scope` computes the set of functions transitively reachable
from ``@kernel`` roots (the *kernel scope* that rules SE003/SE004 police),
never descending into trusted seeds.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.simeffect.model import (
    ALLOC_BUILTINS,
    ALLOC_COLLECTIONS,
    BUILTIN_CONTAINER_KINDS,
    BUILTIN_EXCEPTIONS,
    CONTAINER_METHOD_TABLES,
    DES_ACQUIRE_CLASSES,
    DES_COMMAND_CLASSES,
    DES_MODULE,
    EXTRA_SEEDS,
    MUTATES_STATE,
    PURE_BUILTINS,
    PURE_EXTERNAL,
    RNG,
    RNG_MODULES,
    SPEC_SEEDS,
    YIELDS,
    CallEdge,
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    Program,
    TypeContext,
    TypeRef,
    UNKNOWN,
    _bind_target,
    _elem_of,
    _infer_call_type,
    infer_type,
    strip_optional,
)

_PURE_ALL = "all-pure"


class _Scanner:
    """One function-body scan: statements walked with a handler stack."""

    def __init__(self, program: Program, module: ModuleInfo,
                 cls: Optional[ClassInfo], function: FunctionInfo,
                 env: Dict[str, TypeRef]):
        self.program = program
        self.module = module
        self.cls = cls
        self.function = function
        self.ctx = TypeContext(program, module, cls, env)
        self.handler_stack: List[List[str]] = []
        self.in_raise = 0
        self.global_names: Set[str] = set()
        self._call_funcs: Set[int] = set()  # Attribute nodes that are call targets
        # Inside __init__, stores to `self.attr` initialize an object that
        # has not escaped yet — not shared-state mutation (escape analysis).
        self._ctor_self: Optional[str] = None
        if cls is not None and function.name == "__init__" and not function.is_staticmethod:
            node = function.node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                params = list(getattr(node.args, "posonlyargs", [])) + list(node.args.args)
                if params:
                    self._ctor_self = params[0].arg

    # -- helpers -----------------------------------------------------------

    def _caught(self) -> Tuple[str, ...]:
        out: List[str] = []
        for frame in self.handler_stack:
            out.extend(frame)
        return tuple(out)

    def _effect(self, name: str) -> None:
        self.function.intrinsic.add(name)

    def _edge(self, callee: str, line: int) -> None:
        self.function.calls.append(CallEdge(callee, line, self._caught()))

    def _unresolved(self, line: int, reason: str) -> None:
        self.function.unresolved.append((line, reason))

    def _alloc(self, line: int, desc: str) -> None:
        if self.in_raise:
            return  # exception-path formatting is not per-access allocation
        self.function.allocs.append((line, desc))

    def _raise(self, exc: str, line: int) -> None:
        caught = self._caught()
        for handler in caught:
            if self.program.exc_subsumes(handler, exc):
                return
        self.function.raise_sites.setdefault(exc, line)

    def _exc_name(self, node: Optional[ast.expr]) -> Optional[str]:
        """Canonical name for a raised/caught exception expression."""
        if node is None:
            return None
        if isinstance(node, ast.Call):
            return self._exc_name(node.func)
        if isinstance(node, ast.Name):
            resolved = self.program.resolve_name(self.module, node.id)
            if resolved is not None and resolved[0] == "class":
                return resolved[1]
            if node.id in BUILTIN_EXCEPTIONS:
                return node.id
            return node.id  # unknown name; matched by last segment
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name):
                resolved = self.program.resolve_name(self.module, node.value.id)
                if resolved is not None and resolved[0] == "module":
                    return f"{resolved[1]}.{node.attr}"
            return node.attr
        return None

    # -- statements --------------------------------------------------------

    def scan_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self.scan_stmt(stmt)

    def scan_stmt(self, stmt: ast.stmt) -> None:  # noqa: C901
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested definitions are separate summaries (or local helpers)
        if isinstance(stmt, ast.Global):
            self.global_names.update(stmt.names)
            return
        if isinstance(stmt, ast.Assign):
            self.scan_expr(stmt.value)
            value_type = infer_type(self.ctx, stmt.value)
            for target in stmt.targets:
                self._scan_store_target(target, value_type)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.scan_expr(stmt.value)
            from repro.analysis.simeffect.model import parse_annotation
            value_type = parse_annotation(self.program, self.module, stmt.annotation)
            self._scan_store_target(stmt.target, value_type)
            return
        if isinstance(stmt, ast.AugAssign):
            self.scan_expr(stmt.value)
            self._scan_store_target(stmt.target, infer_type(self.ctx, stmt.value))
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    self._effect(MUTATES_STATE)
                    self.scan_expr(target.value)
            return
        if isinstance(stmt, ast.Expr):
            self.scan_expr(stmt.value)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.scan_expr(stmt.value)
            return
        if isinstance(stmt, ast.Raise):
            self.in_raise += 1
            if stmt.exc is not None:
                self.scan_expr(stmt.exc)
                exc = self._exc_name(stmt.exc)
                if exc is not None:
                    self._raise(exc, stmt.lineno)
            else:
                # bare re-raise: the innermost handler's types escape again
                if self.handler_stack:
                    for handler in self.handler_stack[-1]:
                        self._raise(handler, stmt.lineno)
            if stmt.cause is not None:
                self.scan_expr(stmt.cause)
            self.in_raise -= 1
            return
        if isinstance(stmt, ast.Assert):
            self.scan_expr(stmt.test)
            if stmt.msg is not None:
                self.in_raise += 1
                self.scan_expr(stmt.msg)
                self.in_raise -= 1
            self._raise("AssertionError", stmt.lineno)
            return
        if isinstance(stmt, ast.If):
            self.scan_expr(stmt.test)
            before = dict(self.ctx.env)
            self.scan_body(stmt.body)
            after_body = self.ctx.env
            self.ctx.env = dict(before)
            self.scan_body(stmt.orelse)
            for name, t in after_body.items():
                if name in self.ctx.env and self.ctx.env[name] != t:
                    from repro.analysis.simeffect.model import join_types
                    self.ctx.env[name] = join_types(self.ctx.env[name], t)
                else:
                    self.ctx.env[name] = t
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.scan_expr(stmt.iter)
            iter_type = strip_optional(infer_type(self.ctx, stmt.iter))
            _bind_target(self.ctx, stmt.target, _elem_of(iter_type))
            self.scan_body(stmt.body)
            self.scan_body(stmt.orelse)
            return
        if isinstance(stmt, ast.While):
            self.scan_expr(stmt.test)
            self.scan_body(stmt.body)
            self.scan_body(stmt.orelse)
            return
        if isinstance(stmt, ast.Try):
            handlers: List[str] = []
            for handler in stmt.handlers:
                if handler.type is None:
                    handlers.append("BaseException")
                elif isinstance(handler.type, ast.Tuple):
                    for element in handler.type.elts:
                        name = self._exc_name(element)
                        if name is not None:
                            handlers.append(name)
                else:
                    name = self._exc_name(handler.type)
                    if name is not None:
                        handlers.append(name)
            self.handler_stack.append(handlers)
            self.scan_body(stmt.body)
            self.handler_stack.pop()
            for handler in stmt.handlers:
                self.scan_body(handler.body)
            self.scan_body(stmt.orelse)
            self.scan_body(stmt.finalbody)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.scan_expr(item.context_expr)
            self.scan_body(stmt.body)
            return
        # Pass / Break / Continue / Import / Nonlocal: nothing to do

    def _scan_store_target(self, target: ast.expr, value_type: TypeRef) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.global_names:
                self._effect(MUTATES_STATE)
            _bind_target(self.ctx, target, value_type)
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            fresh = (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == self._ctor_self
            )
            if not fresh:
                self._effect(MUTATES_STATE)
            self.scan_expr(target.value)
            if isinstance(target, ast.Subscript):
                self.scan_expr(target.slice)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            elem = _elem_of(value_type) if value_type.single() == "tuple" else UNKNOWN
            for sub in target.elts:
                self._scan_store_target(sub, elem)
            return
        if isinstance(target, ast.Starred):
            self._scan_store_target(target.value, UNKNOWN)

    # -- expressions -------------------------------------------------------

    def scan_expr(self, node: Optional[ast.expr]) -> None:  # noqa: C901
        if node is None:
            return
        if isinstance(node, ast.Call):
            self._scan_call(node)
            return
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            self._scan_yield(node)
            return
        if isinstance(node, ast.Attribute):
            self.scan_expr(node.value)
            if isinstance(node.ctx, ast.Load) and id(node) not in self._call_funcs:
                self._scan_property_access(node)
            return
        if isinstance(node, (ast.List, ast.Set)):
            for element in node.elts:
                self.scan_expr(element)
            self._alloc(node.lineno, "list display" if isinstance(node, ast.List)
                        else "set display")
            return
        if isinstance(node, ast.Dict):
            for key in node.keys:
                self.scan_expr(key)
            for value in node.values:
                self.scan_expr(value)
            self._alloc(node.lineno, "dict display")
            return
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            kind = {
                ast.ListComp: "list comprehension", ast.SetComp: "set comprehension",
                ast.DictComp: "dict comprehension", ast.GeneratorExp: "generator expression",
            }[type(node)]
            saved = dict(self.ctx.env)
            for gen in node.generators:
                self.scan_expr(gen.iter)
                iter_type = strip_optional(infer_type(self.ctx, gen.iter))
                _bind_target(self.ctx, gen.target, _elem_of(iter_type))
                for cond in gen.ifs:
                    self.scan_expr(cond)
            if isinstance(node, ast.DictComp):
                self.scan_expr(node.key)
                self.scan_expr(node.value)
            else:
                self.scan_expr(node.elt)
            self.ctx.env = saved
            self._alloc(node.lineno, kind)
            return
        if isinstance(node, ast.Lambda):
            self.scan_expr(node.body)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.scan_expr(child)
            elif isinstance(child, ast.comprehension):  # pragma: no cover
                self.scan_expr(child.iter)

    def _scan_property_access(self, node: ast.Attribute) -> None:
        receiver = strip_optional(infer_type(self.ctx, node.value))
        for name in receiver.names:
            if name in self.program.classes:
                method = self.program.find_method(name, node.attr)
                if method is not None and method.is_property:
                    self._edge(method.qualname, node.lineno)

    def _scan_yield(self, node: ast.expr) -> None:
        value = node.value if isinstance(node, (ast.Yield, ast.YieldFrom)) else None
        if value is not None:
            self.scan_expr(value)
        if isinstance(node, ast.Yield) and isinstance(value, ast.Call):
            callee_type = _infer_call_type(self.ctx, value)
            for name in callee_type.names:
                if name.startswith(f"{DES_MODULE}."):
                    cls_name = name.rsplit(".", 1)[1]
                    if cls_name in DES_COMMAND_CLASSES:
                        self._effect(YIELDS)
                    if cls_name in DES_ACQUIRE_CLASSES:
                        self.function.acquires_lock = True
        if isinstance(node, ast.YieldFrom) and isinstance(value, ast.Call):
            # delegating to another coroutine: its effects flow via the edge;
            # the delegation itself is a scheduling point only if the callee
            # yields, which the fixpoint propagates.
            pass

    # -- calls -------------------------------------------------------------

    def _propagate_seed_raises(self, qualname: str, line: int) -> None:
        """Seed raises are filtered here (seeds carry no per-site handlers)."""
        _effects, raises = SPEC_SEEDS[qualname]
        _ = _effects
        for exc in raises:
            self._raise(exc, line)

    def _edge_or_seed(self, info: FunctionInfo, line: int) -> None:
        self._edge(info.qualname, line)

    def _scan_call(self, node: ast.Call) -> None:  # noqa: C901
        func = node.func
        if isinstance(func, ast.Attribute):
            self._call_funcs.add(id(func))
        for arg in node.args:
            self.scan_expr(arg)
        for kw in node.keywords:
            self.scan_expr(kw.value)

        program, module = self.program, self.module
        line = node.lineno

        if isinstance(func, ast.Name):
            resolved = program.resolve_name(module, func.id)
            if resolved is not None:
                kind, target = resolved
                if kind == "class":
                    self._call_class_ctor(target, line)
                    return
                if kind == "function":
                    self._edge(target, line)
                    return
                if kind == "builtin":
                    if target in ALLOC_BUILTINS:
                        self._alloc(line, f"{target}() constructor")
                    elif target in BUILTIN_EXCEPTIONS or target in PURE_BUILTINS:
                        pass
                    return
                if kind == "collections-ctor":
                    self._alloc(line, f"{target}() constructor")
                    return
                if kind == "module":
                    self._unresolved(line, f"call to module object {target!r}")
                    return
                if kind == "global":
                    head, _, tail = target.rpartition(".")
                    value_type = program.modules[head].global_types.get(tail, UNKNOWN)
                    self._call_instance(value_type, line, func.id)
                    return
            # local variable / unknown name
            if func.id in self.ctx.env:
                self._call_instance(self.ctx.env[func.id], line, func.id)
                return
            self._unresolved(line, f"call to unknown name {func.id!r}")
            return

        if isinstance(func, ast.Attribute):
            self.scan_expr(func.value)
            # super().m()
            if (isinstance(func.value, ast.Call) and isinstance(func.value.func, ast.Name)
                    and func.value.func.id == "super" and self.cls is not None):
                for qn in self.cls.mro[1:]:
                    cls = program.classes.get(qn)
                    if cls is not None and func.attr in cls.methods:
                        self._method_edge(cls.methods[func.attr], line)
                        return
                # the MRO bottoms out in a builtin (exception/container/object)
                for qn in self.cls.mro:
                    cls = program.classes.get(qn)
                    if cls is not None and any(
                        base not in program.classes for base in cls.base_names
                    ):
                        return  # builtin method: pure
                self._unresolved(line, f"super().{func.attr} has no definition in the MRO")
                return
            if isinstance(func.value, ast.Name):
                resolved = program.resolve_name(module, func.value.id)
                if resolved is not None and resolved[0] == "module":
                    self._call_module_member(resolved[1], func.attr, line)
                    return
                if resolved is not None and resolved[0] == "class":
                    method = program.find_method(resolved[1], func.attr)
                    if method is not None:
                        self._method_edge(method, line)
                    else:
                        self._unresolved(
                            line, f"no method {func.attr!r} on class {resolved[1]}"
                        )
                    return
            receiver = strip_optional(infer_type(self.ctx, func.value))
            self._call_method(receiver, func.attr, line)
            return

        # calling the result of an expression: f()() etc.
        self.scan_expr(func)
        self._unresolved(line, "call through a computed callee expression")

    def _call_class_ctor(self, class_qualname: str, line: int) -> None:
        ctor = self.program.find_method(class_qualname, "__init__")
        if ctor is not None:
            self._method_edge(ctor, line)
        # a class without __init__ constructs trivially (object.__init__)

    def _method_edge(self, method: FunctionInfo, line: int) -> None:
        if method.qualname in SPEC_SEEDS:
            self._edge(method.qualname, line)
            self._propagate_seed_raises(method.qualname, line)
            return
        self._edge(method.qualname, line)

    def _call_module_member(self, module_name: str, attr: str, line: int) -> None:
        program = self.program
        qual = f"{module_name}.{attr}"
        if qual in SPEC_SEEDS:
            self._edge(qual, line)
            self._propagate_seed_raises(qual, line)
            return
        if qual in program.functions:
            self._edge(qual, line)
            return
        if qual in program.classes:
            self._call_class_ctor(qual, line)
            return
        root = module_name.split(".")[0]
        if root in RNG_MODULES:
            self._effect(RNG)
            return
        if module_name in PURE_EXTERNAL or root in PURE_EXTERNAL:
            return
        if module_name in program.modules:
            self._unresolved(line, f"unknown member {attr!r} of module {module_name}")
            return
        self._unresolved(line, f"call into unmodelled external module {module_name!r}")

    def _call_instance(self, value_type: TypeRef, line: int, name: str) -> None:
        """A call through a variable: instance ``__call__`` or a hook."""
        value_type = strip_optional(value_type)
        single = value_type.single()
        if single is not None and single.startswith("type:"):
            target = single[len("type:"):]
            if target in self.program.classes:
                self._call_class_ctor(target, line)
            elif target in self.program.functions:
                self._edge(target, line)
            return
        if "callable" in value_type.names:
            self._unresolved(line, f"call through callable value {name!r} (hook)")
            return
        if "random.Random" in value_type.names:
            self._effect(RNG)
            return
        resolved_any = False
        for type_name in value_type.names:
            if type_name in self.program.classes:
                call = self.program.find_method(type_name, "__call__")
                if call is not None:
                    self._method_edge(call, line)
                    resolved_any = True
        if not resolved_any:
            self._unresolved(line, f"call through value {name!r} of unknown type")

    def _call_method(self, receiver: TypeRef, attr: str, line: int) -> None:  # noqa: C901
        program = self.program
        if receiver.is_unknown:
            self._unresolved(
                line, f"dynamic dispatch .{attr}() on a receiver of unknown type"
            )
            return
        any_unresolved: Optional[str] = None
        for name in sorted(receiver.names):
            if name == "NoneType":
                continue
            if name.startswith("type:"):
                target = name[len("type:"):]
                method = program.find_method(target, attr)
                if method is not None:
                    self._method_edge(method, line)
                    continue
                any_unresolved = f"no method {attr!r} on class {target}"
                continue
            if name in program.classes:
                # subtree dispatch: the receiver's static type plus subclasses
                candidates: List[FunctionInfo] = []
                for qn in program.subtree_of(name):
                    cls = program.classes.get(qn)
                    if cls is not None and attr in cls.methods:
                        candidates.append(cls.methods[attr])
                if not candidates:
                    inherited = program.find_method(name, attr)
                    if inherited is not None:
                        candidates.append(inherited)
                if candidates:
                    for method in candidates:
                        self._method_edge(method, line)
                    continue
                # a callable-typed *attribute* called like a method (a hook)
                attr_type: Optional[TypeRef] = None
                for qn in program.mro_of(name):
                    cls = program.classes.get(qn)
                    if cls is not None and attr in cls.attr_types:
                        attr_type = cls.attr_types[attr]
                        break
                if attr_type is not None and "callable" in attr_type.names:
                    any_unresolved = f"call through callable-typed attribute .{attr}() (hook)"
                elif attr_type is not None:
                    self._call_instance(strip_optional(attr_type), line, attr)
                else:
                    any_unresolved = f"no method {attr!r} on class {name} or its subclasses"
                continue
            if name == "random.Random":
                self._effect(RNG)
                continue
            if name == "callable":
                any_unresolved = f"call through callable-typed attribute .{attr}()"
                continue
            if name in BUILTIN_CONTAINER_KINDS or name in CONTAINER_METHOD_TABLES:
                table = CONTAINER_METHOD_TABLES.get(name)
                if table == _PURE_ALL:
                    continue
                assert isinstance(table, dict) or table is None
                verdict = (table or {}).get(attr, "mutate")
                if verdict == "mutate":
                    self._effect(MUTATES_STATE)
                continue
            any_unresolved = f"dynamic dispatch .{attr}() on a receiver of unknown type"
        if any_unresolved is not None:
            self._unresolved(line, any_unresolved)


def scan_program(program: Program) -> None:
    """Scan every non-seeded function body, filling intrinsic summaries."""
    from repro.analysis.simeffect.model import _initial_env

    for function in program.functions.values():
        if function.seeded:
            continue
        module = program.modules[function.module]
        cls = program.classes.get(function.cls) if function.cls else None
        env = _initial_env(program, module, cls, function)
        scanner = _Scanner(program, module, cls, function, env)
        node = function.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        # collect `global` declarations first (they may follow a use site)
        for stmt in node.body:
            if isinstance(stmt, ast.Global):
                scanner.global_names.update(stmt.names)
        scanner.scan_body(node.body)
        extra = EXTRA_SEEDS.get(function.qualname)
        if extra:
            function.intrinsic.update(extra)


# --------------------------------------------------------------------------
# Fixpoint
# --------------------------------------------------------------------------


def _summary(program: Program, qualname: str) -> Tuple[Set[str], Dict[str, Tuple[int, Optional[str]]]]:
    if qualname in SPEC_SEEDS:
        effects, raises = SPEC_SEEDS[qualname]
        return set(effects), {exc: (0, None) for exc in raises}
    function = program.functions.get(qualname)
    if function is None:
        return set(), {}
    return function.effects, function.raises


def fixpoint(program: Program) -> None:
    """Propagate effects and escaping exceptions over the call graph."""
    for function in program.functions.values():
        if function.seeded:
            effects, raises = SPEC_SEEDS[function.qualname]
            function.effects = set(effects)
            function.via = {e: None for e in effects}
            function.raises = {exc: (function.lineno, None) for exc in raises}
            continue
        function.effects = set(function.intrinsic)
        function.via = {e: None for e in function.intrinsic}
        function.raises = {exc: (line, None) for exc, line in function.raise_sites.items()}

    changed = True
    iterations = 0
    while changed and iterations < 100:
        changed = False
        iterations += 1
        for function in program.functions.values():
            if function.seeded:
                continue
            for edge in function.calls:
                callee_effects, callee_raises = _summary(program, edge.callee)
                for effect in callee_effects:
                    if effect not in function.effects:
                        function.effects.add(effect)
                        function.via[effect] = edge.callee
                        changed = True
                for exc, (_line, _src) in callee_raises.items():
                    if exc in function.raises:
                        continue
                    caught = False
                    for handler in edge.caught:
                        if program.exc_subsumes(handler, exc):
                            caught = True
                            break
                    if not caught:
                        function.raises[exc] = (edge.line, edge.callee)
                        changed = True


def witness_chain(program: Program, qualname: str, effect: str) -> List[str]:
    """Follow ``via`` pointers to the primitive that introduces ``effect``."""
    chain = [qualname]
    cursor = qualname
    for _ in range(32):
        if cursor in SPEC_SEEDS:
            break
        function = program.functions.get(cursor)
        if function is None:
            break
        nxt = function.via.get(effect)
        if nxt is None:
            break
        chain.append(nxt)
        cursor = nxt
    return chain


def raise_chain(program: Program, qualname: str, exc: str) -> List[str]:
    chain = [qualname]
    cursor = qualname
    for _ in range(32):
        if cursor in SPEC_SEEDS:
            break
        function = program.functions.get(cursor)
        if function is None:
            break
        entry = function.raises.get(exc)
        if entry is None or entry[1] is None:
            break
        chain.append(entry[1])
        cursor = entry[1]
    return chain


def kernel_scope(program: Program) -> Dict[str, str]:
    """Map of function qualname -> the @kernel root it is reachable from."""
    scope: Dict[str, str] = {}
    roots = [f for f in program.functions.values() if f.kernel is not None]
    for root in sorted(roots, key=lambda f: f.qualname):
        stack = [root.qualname]
        while stack:
            qualname = stack.pop()
            if qualname in scope or qualname in SPEC_SEEDS:
                continue
            function = program.functions.get(qualname)
            if function is None or function.seeded:
                continue
            scope[qualname] = root.qualname
            for edge in function.calls:
                stack.append(edge.callee)
    return scope


def transitive_unresolved(program: Program, qualname: str) -> List[Tuple[str, int, str]]:
    """All unresolved call sites reachable from ``qualname`` (incl. itself)."""
    out: List[Tuple[str, int, str]] = []
    seen: Set[str] = set()
    stack = [qualname]
    while stack:
        current = stack.pop()
        if current in seen or current in SPEC_SEEDS:
            continue
        seen.add(current)
        function = program.functions.get(current)
        if function is None or function.seeded:
            continue
        for line, reason in function.unresolved:
            out.append((current, line, reason))
        for edge in function.calls:
            stack.append(edge.callee)
    out.sort()
    return out
