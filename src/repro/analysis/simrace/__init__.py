"""simrace: interprocedural concurrency analysis for DES process code.

The static half of the simrace pass (the dynamic half — seeded schedule
perturbation and the access recorder — lives in :mod:`repro.sim.race`).
It discovers DES process generators, traces their shared-state accesses
and locksets through the in-module call graph, and enforces the SR rule
catalogue (see ``docs/static_analysis.md``):

* SR001 — read-modify-write straddling a yield without a held lock
* SR002 — lock/slot possibly still held when the process exits
* SR003 — inconsistent lock acquisition order between processes
* SR004 — unlocked write to an object captured by multiple processes

Run it with ``python -m repro.analysis.simrace src/``; suppress a
finding with a ``simrace: disable=SR001`` comment on the flagged line.
"""

from repro.analysis.findings import Violation
from repro.analysis.simrace.engine import (
    analyze_file,
    analyze_paths,
    analyze_source,
    iter_python_files,
)
from repro.analysis.simrace.rules import RULES

__all__ = [
    "RULES",
    "Violation",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
]
