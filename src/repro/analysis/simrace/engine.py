"""simrace engine: file walking, suppression parsing, rule dispatch.

Mirrors :mod:`repro.analysis.simlint.engine`, but the rules are
interprocedural: each file is parsed once into a
:class:`~repro.analysis.simrace.model.ModuleModel` (scope tree, process
generators, spawn sites) and the process traces are computed once and
shared by every rule.  Suppression comments use ``# simrace:
disable=SR001`` — same syntax as simlint, different tool prefix.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import (
    ALL_CODES,
    Violation,
    iter_python_files as _iter_python_files,
    parse_suppressions,
)
from repro.analysis.simrace.model import ModuleModel


class FileContext:
    """Everything a rule needs to know about the file under analysis."""

    def __init__(self, path: str, source: str):
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.suppressions = self._parse_suppressions(self.lines)

    @staticmethod
    def _parse_suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
        return parse_suppressions(lines, "simrace")

    def suppressed(self, line: int, code: str) -> bool:
        codes = self.suppressions.get(line)
        if codes is None:
            return False
        return ALL_CODES in codes or code in codes


def analyze_source(
    source: str,
    path: str = "<string>",
    select: Optional[Iterable[str]] = None,
) -> List[Violation]:
    """Analyze one source string; returns violations sorted by location."""
    from repro.analysis.simrace.rules import RULES, AnalysisContext

    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        line = error.lineno or 1
        col = (error.offset or 1) - 1
        return [Violation(path, line, col, "SR000", f"syntax error: {error.msg}")]

    wanted = None if select is None else {code.upper() for code in select}
    context = FileContext(path, source)
    model = ModuleModel(tree)
    if not model.process_generators():
        return []
    actx = AnalysisContext(model, model.traces(), context)

    violations: List[Violation] = []
    seen: Set[Tuple[int, int, str]] = set()
    for rule in RULES:
        if wanted is not None and rule.code not in wanted:
            continue
        for violation in rule.check(actx):
            if context.suppressed(violation.line, violation.code):
                continue
            # One process generator may be traced once per spawn binding;
            # report each (location, rule) only once.
            key = (violation.line, violation.col, violation.code)
            if key in seen:
                continue
            seen.add(key)
            violations.append(violation)
    violations.sort(key=lambda v: (v.line, v.col, v.code))
    return violations


def analyze_file(
    path: Path, select: Optional[Iterable[str]] = None
) -> List[Violation]:
    source = path.read_text(encoding="utf-8")
    return analyze_source(source, path=str(path), select=select)


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    return _iter_python_files(paths)


def analyze_paths(
    paths: Iterable[str], select: Optional[Iterable[str]] = None
) -> List[Violation]:
    """Analyze every Python file under the given paths."""
    violations: List[Violation] = []
    for path in iter_python_files(paths):
        violations.extend(analyze_file(path, select=select))
    return violations
