"""simrace rule catalogue (SR001–SR004).

Each rule consumes the :class:`~repro.analysis.simrace.model.ModuleModel`
and the per-process :class:`~repro.analysis.simrace.model.ProcessTrace`
objects built by the engine, and yields
:class:`~repro.analysis.findings.Violation` records.

* **SR001** — a shared-attribute read-modify-write straddles a yield
  point without a lock held continuously from the read to the write.
* **SR002** — a lock/semaphore slot acquired by a process may still be
  held on some path when the process generator exits.
* **SR003** — two processes acquire the same pair of locks in opposite
  orders (static deadlock potential).
* **SR004** — a write to an object captured by multiple spawned
  processes happens with an empty lockset.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Violation
from repro.analysis.simrace.model import (
    MAX_INLINE_DEPTH,
    Access,
    FuncInfo,
    LockRef,
    ModuleModel,
    ProcessTrace,
    _ACQUIRE_KIND,
    _RELEASE_KIND,
    call_name,
    canonical_text,
)


class AnalysisContext:
    """Bundle handed to every rule: the model, the traces, and the file."""

    def __init__(self, model: ModuleModel, traces: List[ProcessTrace], file) -> None:
        self.model = model
        self.traces = traces
        self.file = file


class Rule:
    """Base class: subclasses set the metadata and implement ``check``."""

    code = "SR000"
    title = "abstract rule"
    explanation = ""

    def check(self, ctx: AnalysisContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, ctx: AnalysisContext, node: ast.AST, message: str) -> Violation:
        return Violation(
            path=ctx.file.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )


class RmwAcrossYieldRule(Rule):
    """SR001: read-modify-write of shared state straddling a yield point."""

    code = "SR001"
    title = "read-modify-write straddles a yield without a held lock"
    explanation = (
        "A DES process read a shared attribute, yielded (Delay/Acquire), and "
        "wrote it back without holding a lock across both accesses; another "
        "process can interleave at the yield and the update is lost."
    )

    def check(self, ctx: AnalysisContext) -> Iterator[Violation]:
        for trace in ctx.traces:
            last_read: Dict[str, Access] = {}
            for access in trace.accesses:
                if access.op == "r":
                    if access.shared:
                        last_read[access.key] = access
                    continue
                previous = last_read.pop(access.key, None)
                if not access.shared or previous is None:
                    continue
                if previous.yield_epoch >= access.yield_epoch:
                    continue
                if _held_across(previous, access):
                    continue
                yields = access.yield_epoch - previous.yield_epoch
                yield self.violation(
                    ctx,
                    access.node,
                    f"read-modify-write of {access.key!r} in process "
                    f"{trace.func.name!r} straddles {yields} yield point(s) "
                    f"(read at line {previous.node.lineno}) with no lock held "
                    f"across both accesses; the update can be lost",
                )


def _held_across(read: Access, write: Access) -> bool:
    for ref, epoch in read.lockset.items():
        if write.lockset.get(ref) == epoch:
            return True
    return False


#: Path-state caps for the SR002 walker.
_MAX_STATES = 128
_MAX_ASSUMPTIONS = 6

# One path state: (locks held, assumed condition outcomes).
_State = Tuple[FrozenSet[LockRef], FrozenSet[Tuple[str, bool]]]


class LockLeakRule(Rule):
    """SR002: Acquire without a matching Release on some call-graph path."""

    code = "SR002"
    title = "lock may still be held when the process exits"
    explanation = (
        "Some path through the process generator (and its yield-from "
        "helpers) reaches the end while still holding a Lock or Semaphore "
        "slot; later waiters deadlock.  Paths ending in `raise` are exempt."
    )

    def check(self, ctx: AnalysisContext) -> Iterator[Violation]:
        for func in ctx.model.root_process_generators():
            binding = ctx.model.bindings_for(func)[0]
            walker = _LeakWalker(ctx.model)
            exits = walker.run(func, binding.env)
            leaked: Dict[LockRef, int] = {}
            for locks, _assume in exits:
                for ref in locks:
                    leaked[ref] = leaked.get(ref, 0) + 1
            for ref in sorted(leaked, key=lambda r: (r.kind, r.key)):
                node = walker.acquire_nodes.get(ref)
                if node is None:
                    continue
                yield self.violation(
                    ctx,
                    node,
                    f"{ref.describe()} acquired here may still be held when "
                    f"process {func.name!r} exits on some path; release it on "
                    f"every non-raising path",
                )


class _LeakWalker:
    """Path-forking lockset walker with syntactic condition correlation.

    Tracks a set of (lockset, assumptions) states.  For a side-effect-free
    ``if`` condition the branch outcome is recorded as an assumption, so a
    later ``if`` with the *same* condition text only continues the
    consistent states — the common ``if flag: Acquire ... if flag:
    Release`` pattern does not false-positive.
    """

    def __init__(self, model: ModuleModel) -> None:
        self.model = model
        self.acquire_nodes: Dict[LockRef, ast.AST] = {}
        self._returned: Set[_State] = set()

    def run(self, func: FuncInfo, env: Dict[str, str]) -> Set[_State]:
        start: Set[_State] = {(frozenset(), frozenset())}
        self._returned = set()
        fallthrough = self._walk_func(func, env, start, depth=0, stack=frozenset({id(func)}))
        return fallthrough | self._returned

    def _walk_func(
        self,
        func: FuncInfo,
        env: Dict[str, str],
        states: Set[_State],
        depth: int,
        stack: FrozenSet[int],
    ) -> Set[_State]:
        outer_returns = self._returned
        self._returned = set()
        out = self._walk_block(func.node.body, states, func, env, depth, stack)  # type: ignore[attr-defined]
        out |= self._returned
        self._returned = outer_returns
        return out

    def _walk_block(
        self,
        stmts: List[ast.stmt],
        states: Set[_State],
        func: FuncInfo,
        env: Dict[str, str],
        depth: int,
        stack: FrozenSet[int],
    ) -> Set[_State]:
        for stmt in stmts:
            if not states:
                break
            states = self._walk_stmt(stmt, states, func, env, depth, stack)
        return states

    def _walk_stmt(
        self,
        stmt: ast.stmt,
        states: Set[_State],
        func: FuncInfo,
        env: Dict[str, str],
        depth: int,
        stack: FrozenSet[int],
    ) -> Set[_State]:
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Yield):
            return self._apply_yield(stmt.value, states, env)
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.YieldFrom):
            value = stmt.value.value
            if isinstance(value, ast.Call):
                callee = self.model.resolve_call(func, value)
                if (
                    callee is not None
                    and callee.is_process
                    and depth < MAX_INLINE_DEPTH
                    and id(callee) not in stack
                ):
                    inner_env = _bind_env(callee, value, env)
                    return self._walk_func(
                        callee, inner_env, states, depth + 1, stack | {id(callee)}
                    )
            return states
        if isinstance(stmt, ast.If):
            return self._walk_if(stmt, states, func, env, depth, stack)
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            once = self._walk_block(stmt.body, states, func, env, depth, stack)
            merged = _cap(states | once)
            return self._walk_block(stmt.orelse, merged, func, env, depth, stack)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._walk_block(stmt.body, states, func, env, depth, stack)
        if isinstance(stmt, ast.Try):
            after_body = self._walk_block(stmt.body, states, func, env, depth, stack)
            out = self._walk_block(stmt.orelse, after_body, func, env, depth, stack)
            for handler in stmt.handlers:
                out |= self._walk_block(handler.body, set(states), func, env, depth, stack)
            return self._walk_block(stmt.finalbody, _cap(out), func, env, depth, stack)
        if isinstance(stmt, ast.Return):
            self._returned |= states
            return set()
        if isinstance(stmt, ast.Raise):
            # A raising path propagates the error; the scheduler (not this
            # process) is responsible for cleanup — exempt, like SL006.
            return set()
        return states

    def _walk_if(
        self,
        stmt: ast.If,
        states: Set[_State],
        func: FuncInfo,
        env: Dict[str, str],
        depth: int,
        stack: FrozenSet[int],
    ) -> Set[_State]:
        condition = _condition_text(stmt.test)
        body_in: Set[_State] = set()
        else_in: Set[_State] = set()
        for locks, assume in states:
            if condition is None:
                body_in.add((locks, assume))
                else_in.add((locks, assume))
                continue
            if (condition, False) not in assume:
                body_in.add((locks, _assume(assume, condition, True)))
            if (condition, True) not in assume:
                else_in.add((locks, _assume(assume, condition, False)))
        body_out = self._walk_block(stmt.body, body_in, func, env, depth, stack)
        else_out = self._walk_block(stmt.orelse, else_in, func, env, depth, stack)
        return _cap(body_out | else_out)

    def _apply_yield(
        self, node: ast.Yield, states: Set[_State], env: Dict[str, str]
    ) -> Set[_State]:
        value = node.value
        if not isinstance(value, ast.Call):
            return states
        name = call_name(value.func)
        if name in _ACQUIRE_KIND:
            ref = _yield_lock_ref(_ACQUIRE_KIND[name], value, env)
            self.acquire_nodes.setdefault(ref, node)
            return _cap({(locks | {ref}, assume) for locks, assume in states})
        if name in _RELEASE_KIND:
            ref = _yield_lock_ref(_RELEASE_KIND[name], value, env)
            return _cap({(locks - {ref}, assume) for locks, assume in states})
        return states


def _yield_lock_ref(kind: str, call: ast.Call, env: Dict[str, str]) -> LockRef:
    if call.args:
        text = canonical_text(call.args[0], env)
        if text is None:
            text = ast.unparse(call.args[0])
    else:
        text = "<missing>"
    return LockRef(kind, text)


def _bind_env(callee: FuncInfo, call: ast.Call, env: Dict[str, str]) -> Dict[str, str]:
    params = callee.param_names()
    inner: Dict[str, str] = {}
    offset = 0
    if params and params[0] == "self" and isinstance(call.func, ast.Attribute):
        inner["self"] = env.get("self", "self")
        offset = 1
    for index, arg in enumerate(call.args):
        if offset + index >= len(params):
            break
        text = canonical_text(arg, env)
        if text is not None:
            inner[params[offset + index]] = text
    for keyword in call.keywords:
        if keyword.arg is not None and keyword.arg in params:
            text = canonical_text(keyword.value, env)
            if text is not None:
                inner[keyword.arg] = text
    return inner


def _condition_text(test: ast.expr) -> Optional[str]:
    """Source text of a side-effect-free condition, else None."""
    for node in ast.walk(test):
        if isinstance(node, (ast.Call, ast.Yield, ast.YieldFrom, ast.Await)):
            return None
    return ast.unparse(test)


def _assume(
    assume: FrozenSet[Tuple[str, bool]], condition: str, value: bool
) -> FrozenSet[Tuple[str, bool]]:
    if len(assume) >= _MAX_ASSUMPTIONS:
        return assume
    return assume | {(condition, value)}


def _cap(states: Set[_State]) -> Set[_State]:
    if len(states) <= _MAX_STATES:
        return states
    # Deterministic truncation; dropping states under-approximates paths
    # (may miss a leak) but never invents one.
    ordered = sorted(states, key=lambda s: (sorted(r.key for r in s[0]), sorted(s[1])))
    return set(ordered[:_MAX_STATES])


class LockOrderRule(Rule):
    """SR003: opposite lock-acquisition orders across processes."""

    code = "SR003"
    title = "inconsistent lock acquisition order between processes"
    explanation = (
        "One process acquires lock A then B while another (or another "
        "instance of the same generator) acquires B then A; with both "
        "running concurrently each can hold one lock and wait forever on "
        "the other."
    )

    def check(self, ctx: AnalysisContext) -> Iterator[Violation]:
        pairs: Dict[Tuple[LockRef, LockRef], Tuple[ProcessTrace, ast.AST]] = {}
        for trace in ctx.traces:
            for pair, node in trace.order_pairs.items():
                pairs.setdefault(pair, (trace, node))
        reported: Set[FrozenSet[LockRef]] = set()
        for (first, second), (trace, node) in sorted(
            pairs.items(), key=lambda item: (item[1][1].lineno, item[0][0].key, item[0][1].key)
        ):
            if first == second:
                continue
            unordered = frozenset((first, second))
            if unordered in reported:
                continue
            reverse = pairs.get((second, first))
            if reverse is None:
                continue
            reported.add(unordered)
            other_trace, other_node = reverse
            yield self.violation(
                ctx,
                node,
                f"process {trace.func.name!r} acquires {first.describe()} then "
                f"{second.describe()} here, but process {other_trace.func.name!r} "
                f"acquires them in the opposite order at line "
                f"{other_node.lineno}; concurrent instances can deadlock",
            )


class UnlockedSharedWriteRule(Rule):
    """SR004: unlocked write to an object captured by multiple processes."""

    code = "SR004"
    title = "unlocked write to an object shared by multiple spawned processes"
    explanation = (
        "The process generator is spawned more than once (in a loop or at "
        "several sites) and writes, directly in its own body, to an object "
        "every instance captures — with no lock held.  Writes that happen "
        "inside plain (non-yielding) helper calls are single-slice and "
        "therefore exempt."
    )

    def check(self, ctx: AnalysisContext) -> Iterator[Violation]:
        sites_by_gen: Dict[int, List] = {}
        for site in ctx.model.spawns:
            sites_by_gen.setdefault(id(site.generator), []).append(site)
        for trace in ctx.traces:
            site = trace.binding.site
            if site is None:
                continue
            sites = sites_by_gen.get(id(trace.func), [])
            multiply_spawned = len(sites) >= 2 or any(s.in_loop for s in sites)
            if not multiply_spawned:
                continue
            seen: Set[Tuple[int, str]] = set()
            for access in trace.accesses:
                if access.op != "w" or access.via_call or not access.shared:
                    continue
                if access.lockset:
                    continue
                if access.root in site.loop_target_roots:
                    # Bound to the spawn loop's iteration variable: each
                    # instance gets its own object.
                    continue
                line = getattr(access.node, "lineno", 1)
                if (line, access.key) in seen:
                    continue
                seen.add((line, access.key))
                yield self.violation(
                    ctx,
                    access.node,
                    f"write to {access.key!r} with an empty lockset in process "
                    f"{trace.func.name!r}, which is spawned multiple times and "
                    f"captures the same object in every instance; concurrent "
                    f"writes race",
                )


RULES: List[Rule] = [
    RmwAcrossYieldRule(),
    LockLeakRule(),
    LockOrderRule(),
    UnlockedSharedWriteRule(),
]
