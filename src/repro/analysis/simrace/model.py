"""simrace module model: scopes, process generators, spawn sites, traces.

The static layer of simrace reasons about one module at a time, but
*interprocedurally* within it:

* :class:`ModuleModel` builds a lexical scope tree of every function and
  method, discovers DES **process generators** (functions that yield
  ``Delay``/``Acquire``/``Release``/``AcquireSlot``/``ReleaseSlot``
  commands, directly or through ``yield from`` helpers), and records
  every ``*.spawn(generator(...))`` site with its argument bindings.
* :func:`ModuleModel.trace` runs an abstract interpretation of one
  process generator — inlining ``yield from`` helpers and plain calls to
  in-module functions — and produces a :class:`ProcessTrace`: the
  sequence of shared-attribute reads/writes, the lockset held at each
  point, the yield points, and the lock-acquisition order pairs that the
  SR rules consume.

Names are canonicalized through the call graph: when ``worker(shard,
lock)`` is spawned, the accesses inside ``worker`` are reported against
the *caller's* names (``lock``), so locks and shared objects can be
compared across process generators.

Approximations (documented in ``docs/static_analysis.md``): branches of
an ``if`` are walked independently and merged (locks surely held =
intersection); loops run their body twice (to catch cross-iteration
read-modify-writes) but may also run zero times; subscript accesses are
tracked at whole-container granularity (``ftl.mapping[...]`` races with
any other index of the same mapping).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

#: The DES command vocabulary (repro.sim.des) a process generator may yield.
DES_COMMANDS = {"Delay", "Acquire", "Release", "AcquireSlot", "ReleaseSlot"}

_ACQUIRE_KIND = {"Acquire": "lock", "AcquireSlot": "slot"}
_RELEASE_KIND = {"Release": "lock", "ReleaseSlot": "slot"}

#: Maximum call-graph inlining depth (yield-from helpers and plain calls).
MAX_INLINE_DEPTH = 8

#: Loop bodies are walked twice up to this nesting depth (cross-iteration
#: read-modify-write detection); deeper nests are walked once.
MAX_LOOP_UNROLL_DEPTH = 3


def call_name(func: ast.expr) -> Optional[str]:
    """Last identifier of a call target (``Delay`` for ``des.Delay(...)``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def own_nodes(function: ast.AST) -> Iterator[ast.AST]:
    """Nodes of a function body, excluding nested function/class bodies."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(function))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


@dataclass(frozen=True)
class LockRef:
    """A lock or semaphore, identified by its canonical source text."""

    kind: str  # "lock" | "slot"
    key: str

    def describe(self) -> str:
        return f"{self.kind} {self.key!r}"


class FuncInfo:
    """One function/method in the module's scope tree."""

    __slots__ = (
        "node",
        "name",
        "parent",
        "class_name",
        "children",
        "is_generator",
        "is_process",
        "yielded_from",
    )

    def __init__(
        self,
        node: ast.AST,
        parent: Optional["FuncInfo"],
        class_name: Optional[str],
    ) -> None:
        self.node = node
        self.name = node.name  # type: ignore[attr-defined]
        self.parent = parent
        self.class_name = class_name
        self.children: Dict[str, "FuncInfo"] = {}
        self.is_generator = any(
            isinstance(n, (ast.Yield, ast.YieldFrom)) for n in own_nodes(node)
        )
        self.is_process = False
        #: True when another process generator reaches this one via ``yield from``.
        self.yielded_from = False

    def param_names(self) -> List[str]:
        args = self.node.args  # type: ignore[attr-defined]
        return [a.arg for a in list(args.posonlyargs) + list(args.args)]

    def enclosing_class(self) -> Optional[str]:
        info: Optional[FuncInfo] = self
        while info is not None:
            if info.class_name is not None:
                return info.class_name
            info = info.parent
        return None

    def __repr__(self) -> str:
        prefix = f"{self.class_name}." if self.class_name else ""
        return f"FuncInfo({prefix}{self.name})"


@dataclass
class SpawnSite:
    """One ``*.spawn(generator(...))`` call site."""

    call: ast.Call  # the inner generator(...) call
    generator: FuncInfo
    in_loop: bool
    loop_target_roots: Set[str]
    caller: Optional[FuncInfo]

    def env(self, model: "ModuleModel") -> Dict[str, str]:
        """Map the generator's parameters to caller-side canonical texts."""
        env: Dict[str, str] = {}
        params = self.generator.param_names()
        for index, arg in enumerate(self.call.args[: len(params)]):
            text = canonical_text(arg)
            if text is not None:
                env[params[index]] = text
        for keyword in self.call.keywords:
            if keyword.arg is not None and keyword.arg in params:
                text = canonical_text(keyword.value)
                if text is not None:
                    env[keyword.arg] = text
        return env


def canonical_text(expr: ast.expr, env: Optional[Dict[str, str]] = None) -> Optional[str]:
    """Canonical dotted text of a Name/Attribute chain, or None."""
    if isinstance(expr, ast.Name):
        if env is not None and expr.id in env:
            return env[expr.id]
        return expr.id
    if isinstance(expr, ast.Attribute):
        base = canonical_text(expr.value, env)
        if base is None:
            return None
        return f"{base}.{expr.attr}"
    return None


@dataclass
class Binding:
    """One instantiation context of a process generator."""

    env: Dict[str, str]
    site: Optional[SpawnSite]


@dataclass
class Access:
    """One shared-attribute (or container) access inside a process trace."""

    op: str  # "r" | "w"
    key: str  # canonical dotted text, e.g. "self._cursor" or "table.rows[]"
    root: str  # first segment of the canonical text
    shared: bool
    node: ast.AST
    yield_epoch: int
    lockset: Dict[LockRef, int]
    via_call: bool


@dataclass
class ProcessTrace:
    """Everything the SR rules need to know about one process generator."""

    func: FuncInfo
    binding: Binding
    accesses: List[Access] = field(default_factory=list)
    yield_points: List[Tuple[ast.AST, Dict[LockRef, int]]] = field(default_factory=list)
    #: (held, acquired) -> node of the inner acquire.
    order_pairs: Dict[Tuple[LockRef, LockRef], ast.AST] = field(default_factory=dict)
    acquire_nodes: Dict[LockRef, ast.AST] = field(default_factory=dict)


class _Frame:
    """Per-function walk context (environment + local sharedness)."""

    __slots__ = ("func", "env", "local_shared", "depth", "stack", "via_call")

    def __init__(
        self,
        func: FuncInfo,
        env: Dict[str, str],
        depth: int,
        stack: FrozenSet[int],
        via_call: bool,
    ) -> None:
        self.func = func
        self.env = env
        # name -> does it alias state visible outside this process?
        self.local_shared: Dict[str, bool] = {}
        self.depth = depth
        self.stack = stack
        self.via_call = via_call


class ModuleModel:
    """Scope tree + process-generator and spawn-site discovery for a module."""

    def __init__(self, tree: ast.Module) -> None:
        self.tree = tree
        self.functions: List[FuncInfo] = []
        self._module_scope: Dict[str, FuncInfo] = {}
        self._class_methods: Dict[str, Dict[str, FuncInfo]] = {}
        self._build(tree, parent=None, class_name=None, scope=self._module_scope)
        self._mark_process_generators()
        self.spawns: List[SpawnSite] = self._find_spawns()

    # ---- construction -------------------------------------------------- #

    def _build(
        self,
        node: ast.AST,
        parent: Optional[FuncInfo],
        class_name: Optional[str],
        scope: Dict[str, FuncInfo],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FuncInfo(child, parent, class_name)
                self.functions.append(info)
                if class_name is not None:
                    self._class_methods.setdefault(class_name, {})[info.name] = info
                else:
                    scope[info.name] = info
                self._build(child, parent=info, class_name=None, scope=info.children)
            elif isinstance(child, ast.ClassDef):
                self._build(child, parent=parent, class_name=child.name, scope=scope)
            else:
                self._build(child, parent=parent, class_name=class_name, scope=scope)

    def _mark_process_generators(self) -> None:
        for info in self.functions:
            if any(
                isinstance(n, ast.Yield)
                and isinstance(n.value, ast.Call)
                and call_name(n.value.func) in DES_COMMANDS
                for n in own_nodes(info.node)
            ):
                info.is_process = True
        changed = True
        while changed:
            changed = False
            for info in self.functions:
                if info.is_process:
                    continue
                for node in own_nodes(info.node):
                    if not isinstance(node, ast.YieldFrom):
                        continue
                    if not isinstance(node.value, ast.Call):
                        continue
                    callee = self.resolve_call(info, node.value)
                    if callee is not None and callee.is_process:
                        info.is_process = True
                        changed = True
                        break
        # Mark helpers reached via yield-from so rule drivers can pick roots.
        for info in self.functions:
            if not info.is_process:
                continue
            for node in own_nodes(info.node):
                if isinstance(node, ast.YieldFrom) and isinstance(node.value, ast.Call):
                    callee = self.resolve_call(info, node.value)
                    if callee is not None and callee.is_process:
                        callee.yielded_from = True

    def _find_spawns(self) -> List[SpawnSite]:
        sites: List[SpawnSite] = []

        def visit(
            node: ast.AST,
            func: Optional[FuncInfo],
            loop_depth: int,
            loop_roots: FrozenSet[str],
        ) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info = self._info_of(child)
                    visit(child, info, 0, frozenset())
                    continue
                if isinstance(child, (ast.For, ast.AsyncFor)):
                    roots = loop_roots | frozenset(_target_names(child.target))
                    visit(child, func, loop_depth + 1, roots)
                    continue
                if isinstance(child, ast.While):
                    visit(child, func, loop_depth + 1, loop_roots)
                    continue
                if (
                    isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Attribute)
                    and child.func.attr == "spawn"
                    and child.args
                    and isinstance(child.args[0], ast.Call)
                ):
                    inner = child.args[0]
                    callee = None
                    if func is not None:
                        callee = self.resolve_call(func, inner)
                    elif isinstance(inner.func, ast.Name):
                        callee = self._module_scope.get(inner.func.id)
                    if callee is not None and callee.is_process:
                        sites.append(
                            SpawnSite(
                                call=inner,
                                generator=callee,
                                in_loop=loop_depth > 0,
                                loop_target_roots=set(loop_roots),
                                caller=func,
                            )
                        )
                visit(child, func, loop_depth, loop_roots)

        visit(self.tree, None, 0, frozenset())
        return sites

    def _info_of(self, node: ast.AST) -> Optional[FuncInfo]:
        for info in self.functions:
            if info.node is node:
                return info
        return None

    # ---- resolution ---------------------------------------------------- #

    def resolve_name(self, caller: FuncInfo, name: str) -> Optional[FuncInfo]:
        scope: Optional[FuncInfo] = caller
        while scope is not None:
            if name in scope.children:
                return scope.children[name]
            if scope.parent is None and scope.name == name:
                return scope
            if scope.parent is not None and name in scope.parent.children:
                return scope.parent.children[name]
            scope = scope.parent
        return self._module_scope.get(name)

    def resolve_call(self, caller: FuncInfo, call: ast.Call) -> Optional[FuncInfo]:
        func = call.func
        if isinstance(func, ast.Name):
            return self.resolve_name(caller, func.id)
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            cls = caller.enclosing_class()
            if cls is not None:
                return self._class_methods.get(cls, {}).get(func.attr)
        return None

    # ---- public queries ------------------------------------------------- #

    def process_generators(self) -> List[FuncInfo]:
        return [info for info in self.functions if info.is_process]

    def root_process_generators(self) -> List[FuncInfo]:
        """Process generators worth tracing on their own: spawned ones, plus
        any never reached through another generator's ``yield from``."""
        spawned = {id(site.generator) for site in self.spawns}
        roots = []
        for info in self.process_generators():
            if id(info) in spawned or not info.yielded_from:
                roots.append(info)
        return roots

    def bindings_for(self, info: FuncInfo) -> List[Binding]:
        bindings: List[Binding] = []
        seen: Set[Tuple[Tuple[str, str], ...]] = set()
        for site in self.spawns:
            if site.generator is not info:
                continue
            env = site.env(self)
            key = tuple(sorted(env.items()))
            if key in seen:
                continue
            seen.add(key)
            bindings.append(Binding(env=env, site=site))
        if not bindings:
            bindings.append(Binding(env={}, site=None))
        return bindings

    def trace(self, info: FuncInfo, binding: Binding) -> ProcessTrace:
        trace = ProcessTrace(func=info, binding=binding)
        tracer = _Tracer(self, trace)
        frame = _Frame(
            info, dict(binding.env), depth=0, stack=frozenset({id(info)}), via_call=False
        )
        tracer.walk_block(info.node.body, frame)  # type: ignore[attr-defined]
        return trace

    def traces(self) -> List[ProcessTrace]:
        out: List[ProcessTrace] = []
        for info in self.root_process_generators():
            for binding in self.bindings_for(info):
                out.append(self.trace(info, binding))
        return out


def _target_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)


class _Tracer:
    """Linear abstract interpreter producing a :class:`ProcessTrace`.

    Walks statements in source order.  Branches are walked independently
    and merged (lockset = locks surely held in both, at the same
    acquisition epoch); loop bodies are walked twice to catch
    cross-iteration read-modify-writes.  ``yield from`` into an in-module
    process generator and plain calls to in-module helpers are inlined
    with parameter-to-argument renaming.
    """

    def __init__(self, model: ModuleModel, trace: ProcessTrace) -> None:
        self.model = model
        self.trace = trace
        self.lockset: Dict[LockRef, int] = {}
        self.yield_epoch = 0
        self._acquire_counter = 0
        self._loop_depth = 0

    # ---- block / statement dispatch ------------------------------------ #

    def walk_block(self, stmts: List[ast.stmt], frame: _Frame) -> bool:
        """Walk statements; returns True when the block terminates early."""
        for stmt in stmts:
            if self._walk_stmt(stmt, frame):
                return True
        return False

    def _walk_stmt(self, stmt: ast.stmt, frame: _Frame) -> bool:
        if isinstance(stmt, ast.Expr):
            value = stmt.value
            if isinstance(value, ast.Yield):
                self._yield_stmt(value, frame)
            elif isinstance(value, ast.YieldFrom):
                self._yield_from(value, frame)
            else:
                self._scan_expr(value, frame)
            return False
        if isinstance(stmt, ast.Assign):
            self._scan_expr(stmt.value, frame)
            for target in stmt.targets:
                self._assign_target(target, stmt.value, frame)
            return False
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._scan_expr(stmt.value, frame)
                self._assign_target(stmt.target, stmt.value, frame)
            return False
        if isinstance(stmt, ast.AugAssign):
            self._scan_expr(stmt.value, frame)
            target = stmt.target
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                self._record_access("r", target, frame)
                self._record_access("w", target, frame)
            return False
        if isinstance(stmt, ast.If):
            self._scan_expr(stmt.test, frame)
            return self._walk_branches(stmt.body, stmt.orelse, frame)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_expr(stmt.iter, frame)
            shared = self._value_shared(stmt.iter, frame)
            for name in _target_names(stmt.target):
                frame.local_shared[name] = shared
                frame.env.pop(name, None)
            self._walk_loop(stmt.body, stmt.orelse, frame)
            return False
        if isinstance(stmt, ast.While):
            self._scan_expr(stmt.test, frame)
            self._walk_loop(stmt.body, stmt.orelse, frame)
            return False
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._scan_expr(item.context_expr, frame)
            self.walk_block(stmt.body, frame)
            return False
        if isinstance(stmt, ast.Try):
            self.walk_block(stmt.body, frame)
            for handler in stmt.handlers:
                self.walk_block(handler.body, frame)
            self.walk_block(stmt.orelse, frame)
            self.walk_block(stmt.finalbody, frame)
            return False
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._scan_expr(stmt.value, frame)
            return True
        if isinstance(stmt, (ast.Raise, ast.Break, ast.Continue)):
            return True
        return False

    def _walk_branches(
        self, body: List[ast.stmt], orelse: List[ast.stmt], frame: _Frame
    ) -> bool:
        saved_locks = dict(self.lockset)
        saved_epoch = self.yield_epoch
        saved_locals = dict(frame.local_shared)

        body_stop = self.walk_block(body, frame)
        body_locks = self.lockset
        body_epoch = self.yield_epoch
        body_locals = frame.local_shared

        self.lockset = dict(saved_locks)
        self.yield_epoch = saved_epoch
        frame.local_shared = dict(saved_locals)
        else_stop = self.walk_block(orelse, frame)

        # Merge: a lock is surely held only if both branches hold it from
        # the same acquisition; anything else is treated as released.
        merged = {
            ref: epoch
            for ref, epoch in body_locks.items()
            if self.lockset.get(ref) == epoch
        }
        if body_stop and not else_stop:
            merged = self.lockset
        elif else_stop and not body_stop:
            merged = body_locks
        self.lockset = merged
        self.yield_epoch = max(body_epoch, self.yield_epoch)
        for name, shared in body_locals.items():
            frame.local_shared[name] = frame.local_shared.get(name, shared) or shared
        return body_stop and else_stop

    def _walk_loop(
        self, body: List[ast.stmt], orelse: List[ast.stmt], frame: _Frame
    ) -> None:
        pre_locks = dict(self.lockset)
        self._loop_depth += 1
        self.walk_block(body, frame)
        if self._loop_depth <= MAX_LOOP_UNROLL_DEPTH:
            self.walk_block(body, frame)
        self._loop_depth -= 1
        self.walk_block(orelse, frame)
        # The loop may run zero times: only locks held both before and
        # after the body count as surely held.
        self.lockset = {
            ref: epoch
            for ref, epoch in self.lockset.items()
            if pre_locks.get(ref) == epoch or ref not in pre_locks and False
        }
        self.lockset = {
            ref: epoch for ref, epoch in pre_locks.items() if self.lockset.get(ref) == epoch
        }

    # ---- yields and commands ------------------------------------------- #

    def _lock_ref(self, kind: str, call: ast.Call, frame: _Frame) -> LockRef:
        if call.args:
            text = canonical_text(call.args[0], frame.env)
            if text is None:
                text = ast.unparse(call.args[0])
        else:
            text = "<missing>"
        return LockRef(kind, text)

    def _yield_point(self, node: ast.AST) -> None:
        self.yield_epoch += 1
        self.trace.yield_points.append((node, dict(self.lockset)))

    def _yield_stmt(self, node: ast.Yield, frame: _Frame) -> None:
        value = node.value
        if isinstance(value, ast.Call):
            name = call_name(value.func)
            if name in _ACQUIRE_KIND:
                ref = self._lock_ref(_ACQUIRE_KIND[name], value, frame)
                # A contended acquire suspends the process *before* it
                # holds the lock, so it is a yield point first.
                self._yield_point(node)
                for held in self.lockset:
                    self.trace.order_pairs.setdefault((held, ref), node)
                self._acquire_counter += 1
                self.lockset[ref] = self._acquire_counter
                self.trace.acquire_nodes.setdefault(ref, node)
                return
            if name in _RELEASE_KIND:
                # Release hands off but never suspends the releasing
                # process (the scheduler continues its slice).
                ref = self._lock_ref(_RELEASE_KIND[name], value, frame)
                self.lockset.pop(ref, None)
                return
            self._scan_expr(value, frame)
            self._yield_point(node)
            return
        if value is not None:
            self._scan_expr(value, frame)
        self._yield_point(node)

    def _yield_from(self, node: ast.YieldFrom, frame: _Frame) -> None:
        value = node.value
        if isinstance(value, ast.Call):
            callee = self.model.resolve_call(frame.func, value)
            if (
                callee is not None
                and callee.is_process
                and frame.depth < MAX_INLINE_DEPTH
                and id(callee) not in frame.stack
            ):
                for arg in list(value.args) + [kw.value for kw in value.keywords]:
                    self._scan_expr(arg, frame)
                self._inline(callee, value, frame, via_call=frame.via_call)
                return
        # Unresolved delegation: assume it yields at least once.
        self._scan_expr(value, frame)
        self._yield_point(node)

    def _inline(
        self, callee: FuncInfo, call: ast.Call, frame: _Frame, via_call: bool
    ) -> None:
        env: Dict[str, str] = {}
        params = callee.param_names()
        offset = 0
        if params and params[0] == "self" and isinstance(call.func, ast.Attribute):
            env["self"] = frame.env.get("self", "self")
            offset = 1
        for index, arg in enumerate(call.args):
            if offset + index >= len(params):
                break
            text = canonical_text(arg, frame.env)
            if text is not None:
                env[params[offset + index]] = text
        for keyword in call.keywords:
            if keyword.arg is not None and keyword.arg in params:
                text = canonical_text(keyword.value, frame.env)
                if text is not None:
                    env[keyword.arg] = text
        inner = _Frame(
            callee,
            env,
            depth=frame.depth + 1,
            stack=frame.stack | {id(callee)},
            via_call=via_call,
        )
        self.walk_block(callee.node.body, inner)  # type: ignore[attr-defined]

    # ---- expressions and accesses -------------------------------------- #

    def _scan_expr(self, expr: ast.expr, frame: _Frame) -> None:
        """Record attribute/container reads and inline in-module calls."""
        skip: Set[int] = set()
        calls: List[ast.Call] = []
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                calls.append(node)
                if isinstance(node.func, ast.Attribute):
                    # obj.method(...) — the method access itself is not a
                    # state read, but its receiver chain below it is.
                    skip.add(id(node.func))
            if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Attribute):
                skip.add(id(node.value))
            if isinstance(node, ast.Subscript):
                if isinstance(node.value, (ast.Attribute, ast.Subscript)):
                    skip.add(id(node.value))
        for node in ast.walk(expr):
            if isinstance(node, (ast.Attribute, ast.Subscript)):
                if id(node) in skip or not isinstance(node.ctx, ast.Load):
                    continue
                self._record_access("r", node, frame)
        for node in calls:
            callee = self.model.resolve_call(frame.func, node)
            if (
                callee is not None
                and not callee.is_generator
                and frame.depth < MAX_INLINE_DEPTH
                and id(callee) not in frame.stack
            ):
                self._inline(callee, node, frame, via_call=True)

    def _assign_target(self, target: ast.expr, value: ast.expr, frame: _Frame) -> None:
        if isinstance(target, ast.Name):
            frame.local_shared[target.id] = self._value_shared(value, frame)
            frame.env.pop(target.id, None)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            self._record_access("w", target, frame)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign_target(element, value, frame)

    def _value_shared(self, value: ast.expr, frame: _Frame) -> bool:
        """Does the assigned value alias state visible outside the process?"""
        if isinstance(value, ast.Name):
            return self._root_shared(value.id, frame)
        if isinstance(value, ast.Attribute):
            text = canonical_text(value, frame.env)
            if text is None:
                return False
            return self._root_shared(text.split(".")[0], frame)
        return False

    def _root_shared(self, root: str, frame: _Frame) -> bool:
        if root in frame.local_shared:
            return frame.local_shared[root]
        # Parameters, self, closure variables and module globals all alias
        # state other processes can reach.
        return True

    def _record_access(self, op: str, expr: ast.expr, frame: _Frame) -> None:
        key = self._access_key(expr, frame)
        if key is None:
            return
        text, root = key
        shared = self._root_shared(root, frame)
        self.trace.accesses.append(
            Access(
                op=op,
                key=text,
                root=root,
                shared=shared,
                node=expr,
                yield_epoch=self.yield_epoch,
                lockset=dict(self.lockset),
                via_call=frame.via_call,
            )
        )

    def _access_key(
        self, expr: ast.expr, frame: _Frame
    ) -> Optional[Tuple[str, str]]:
        if isinstance(expr, ast.Subscript):
            base = canonical_text(expr.value, frame.env)
            if base is None:
                return None
            return f"{base}[]", base.split(".")[0]
        text = canonical_text(expr, frame.env)
        if text is None or "." not in text:
            return None
        return text, text.split(".")[0]
