"""simlint rules: repo-specific static checks for the FlatFlash simulator.

Every rule carries a stable ``SL###`` code (documented in
``docs/static_analysis.md``) and can be silenced on a single line with
a ``simlint: disable=SL###`` comment.  Rules marked ``sim_scope_only`` run only on
files under ``repro/{sim,ssd,host,core,interconnect}/`` — the layers whose
timing and state discipline the simulator's credibility depends on.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.simlint.engine import FileContext, Violation

#: The DES command vocabulary (repro.sim.des) a process generator may yield.
DES_COMMANDS = {"Delay", "Acquire", "Release", "AcquireSlot", "ReleaseSlot"}

_ACQUIRE_KINDS = {"Acquire": "lock", "AcquireSlot": "slot"}
_RELEASE_KINDS = {"Release": "lock", "ReleaseSlot": "slot"}


class Rule:
    """Base class: one lint rule with a stable code."""

    code = "SL000"
    title = "abstract rule"
    sim_scope_only = False
    explanation = ""

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, ctx: FileContext, node: ast.AST, message: str) -> Violation:
        return Violation(
            ctx.path,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0),
            self.code,
            message,
        )


def _call_name(func: ast.expr) -> Optional[str]:
    """Last identifier of a call target (``Delay`` for ``des.Delay(...)``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _find_div(node: ast.AST) -> Optional[ast.BinOp]:
    """First true-division ``/`` anywhere under ``node``."""
    for child in ast.walk(node):
        if isinstance(child, ast.BinOp) and isinstance(child.op, ast.Div):
            return child
    return None


def _own_nodes(function: ast.AST) -> Iterator[ast.AST]:
    """Nodes of a function body, excluding nested function/class bodies."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(function))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


class WallClockRule(Rule):
    """SL001: no wall-clock time sources inside the simulator."""

    code = "SL001"
    title = "wall-clock time source in simulation code"
    sim_scope_only = True
    explanation = (
        "Simulated time lives in SimClock as integer nanoseconds; reading "
        "time.time()/datetime.now() (or sleeping) mixes host wall-clock time "
        "into simulated timelines and breaks determinism."
    )

    _TIME_ATTRS = {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "sleep",
    }
    _DATETIME_ATTRS = {"now", "utcnow", "today"}
    _DATETIME_VALUES = {"datetime", "datetime.datetime", "datetime.date", "date"}

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Attribute):
                continue
            if isinstance(node.value, ast.Name) and node.value.id == "time":
                if node.attr in self._TIME_ATTRS:
                    yield self.violation(
                        ctx,
                        node,
                        f"wall-clock call time.{node.attr}() in simulation "
                        f"code; use SimClock (integer simulated ns) instead",
                    )
                continue
            if node.attr in self._DATETIME_ATTRS:
                value = ast.unparse(node.value)
                if value in self._DATETIME_VALUES or value.endswith(
                    (".datetime", ".date")
                ):
                    yield self.violation(
                        ctx,
                        node,
                        f"wall-clock call {value}.{node.attr}() in simulation "
                        f"code; use SimClock (integer simulated ns) instead",
                    )


class UnseededRandomRule(Rule):
    """SL002: no unseeded / global-state RNG inside the simulator."""

    code = "SL002"
    title = "unseeded or global-state RNG in simulation code"
    sim_scope_only = True
    explanation = (
        "Reproducible experiments need explicit, seeded generators "
        "(np.random.default_rng(seed)); the stdlib random module's global "
        "state and numpy's legacy np.random.* functions are forbidden here."
    )

    _NUMPY_LEGACY = {
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "choice",
        "shuffle",
        "permutation",
        "seed",
        "normal",
        "uniform",
        "integers",
    }

    #: The only attributes of the ``np.random`` namespace sim code may
    #: touch: explicit-generator constructors.  Everything else is the
    #: legacy global-state API.
    _NUMPY_ALLOWED = {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
    }

    @staticmethod
    def _bare_np_random_nodes(tree: ast.Module) -> Iterator[ast.Attribute]:
        """``np.random`` used as a value, not as ``np.random.<attr>``.

        Aliasing the module (``rng = np.random``) or passing it where a
        Generator is expected smuggles the global-state API past the
        per-call checks, so the bare reference itself is flagged.
        """
        inner = {
            id(node.value)
            for node in ast.walk(tree)
            if isinstance(node, ast.Attribute)
        }
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "random"
                and isinstance(node.value, ast.Name)
                and node.value.id in {"np", "numpy"}
                and id(node) not in inner
            ):
                yield node

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Violation]:
        for bare in self._bare_np_random_nodes(tree):
            yield self.violation(
                ctx,
                bare,
                "bare np.random reference aliases the legacy global RNG; "
                "pass an explicitly seeded np.random.default_rng instead",
            )
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                yield self.violation(
                    ctx,
                    node,
                    "import from the stdlib random module (hidden global RNG "
                    "state); use an explicitly seeded np.random.default_rng",
                )
                continue
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            text = ast.unparse(func)
            if text.endswith("random.default_rng") and not node.args and not node.keywords:
                yield self.violation(
                    ctx,
                    node,
                    "np.random.default_rng() without a seed: experiments must "
                    "be reproducible — pass an explicit seed",
                )
                continue
            if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                if func.value.id == "random":
                    if func.attr == "Random" and not node.args and not node.keywords:
                        yield self.violation(
                            ctx, node, "random.Random() without a seed"
                        )
                    elif func.attr not in {"Random", "SystemRandom"}:
                        yield self.violation(
                            ctx,
                            node,
                            f"random.{func.attr}() uses the stdlib global RNG; "
                            f"use an explicitly seeded np.random.default_rng",
                        )
                    continue
            if (
                isinstance(func, ast.Attribute)
                and func.attr not in self._NUMPY_ALLOWED
                and isinstance(func.value, ast.Attribute)
                and func.value.attr == "random"
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id in {"np", "numpy"}
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"legacy numpy global RNG np.random.{func.attr}(); use an "
                    f"explicitly seeded np.random.default_rng",
                )


class FloatDivLatencyRule(Rule):
    """SL003: float division must not feed a latency (``*_ns``) value."""

    code = "SL003"
    title = "float division feeding a latency/Delay value"
    sim_scope_only = False
    explanation = (
        "Latencies are integer nanoseconds; true division (/) silently "
        "produces floats that drift and truncate downstream.  Use floor "
        "division (//) or restructure the arithmetic."
    )

    @staticmethod
    def _is_ns_target(target: ast.expr) -> bool:
        if isinstance(target, ast.Name):
            return target.id.endswith("_ns")
        if isinstance(target, ast.Attribute):
            return target.attr.endswith("_ns")
        return False

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                if any(self._is_ns_target(t) for t in node.targets):
                    div = _find_div(node.value)
                    if div is not None:
                        yield self.violation(
                            ctx,
                            div,
                            "float division assigned to a *_ns name; latencies "
                            "are integer ns — use // instead of /",
                        )
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                if node.value is not None and self._is_ns_target(node.target):
                    div = _find_div(node.value)
                    if div is not None:
                        yield self.violation(
                            ctx,
                            div,
                            "float division assigned to a *_ns name; latencies "
                            "are integer ns — use // instead of /",
                        )
            elif isinstance(node, ast.Call):
                name = _call_name(node.func)
                if name == "Delay" or (
                    isinstance(node.func, ast.Attribute)
                    and name in {"advance", "advance_to"}
                ):
                    for arg in list(node.args) + [kw.value for kw in node.keywords]:
                        div = _find_div(arg)
                        if div is not None:
                            yield self.violation(
                                ctx,
                                div,
                                f"float division feeding {name}(); delays are "
                                f"integer ns — use // instead of /",
                            )
                            break
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name.endswith(("_ns", "_cost")):
                    for child in _own_nodes(node):
                        if isinstance(child, ast.Return) and child.value is not None:
                            div = _find_div(child.value)
                            if div is not None:
                                yield self.violation(
                                    ctx,
                                    div,
                                    f"float division in return value of "
                                    f"{node.name}(); latency-returning "
                                    f"functions must return integer ns",
                                )


class UnitSuffixRule(Rule):
    """SL004: timing names inside the simulator must carry the ``_ns`` unit."""

    code = "SL004"
    title = "timing name with a non-ns unit suffix"
    sim_scope_only = True
    explanation = (
        "All latencies inside the simulator are integer nanoseconds; a "
        "_us/_ms/_sec-suffixed name is either a conversion (suppress it "
        "explicitly) or a unit bug waiting to be added to a ns value."
    )

    _BAD_SUFFIXES = ("_us", "_ms", "_sec", "_secs", "_seconds")

    def _flag(self, name: str) -> bool:
        if name.isupper():  # NS_PER_US-style conversion constants
            return False
        return name.endswith(self._BAD_SUFFIXES)

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if self._flag(node.name):
                    yield self.violation(
                        ctx,
                        node,
                        f"function {node.name}() carries a non-ns time unit in "
                        f"its name; simulator timing is integer ns (rename to "
                        f"*_ns, or suppress if it is a deliberate conversion)",
                    )
                args = node.args
                for arg in (
                    list(args.posonlyargs)
                    + list(args.args)
                    + list(args.kwonlyargs)
                    + [a for a in (args.vararg, args.kwarg) if a is not None]
                ):
                    if self._flag(arg.arg):
                        yield self.violation(
                            ctx,
                            arg,
                            f"parameter {arg.arg!r} carries a non-ns time unit; "
                            f"simulator timing is integer ns (rename to *_ns)",
                        )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    name = None
                    if isinstance(target, ast.Name):
                        name = target.id
                    elif isinstance(target, ast.Attribute):
                        name = target.attr
                    if name is not None and self._flag(name):
                        yield self.violation(
                            ctx,
                            target,
                            f"assignment to {name!r} carries a non-ns time "
                            f"unit; simulator timing is integer ns (rename to "
                            f"*_ns)",
                        )


class YieldCommandRule(Rule):
    """SL005: DES process generators may only yield known command types."""

    code = "SL005"
    title = "unknown yield in a DES process generator"
    sim_scope_only = False
    explanation = (
        "A generator driven by repro.sim.des.Simulator must yield only "
        "Delay/Acquire/Release/AcquireSlot/ReleaseSlot; anything else is a "
        "TypeError at simulation time."
    )

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yields = [
                child for child in _own_nodes(node) if isinstance(child, ast.Yield)
            ]
            if not yields:
                continue
            is_des_process = any(
                isinstance(y.value, ast.Call)
                and _call_name(y.value.func) in DES_COMMANDS
                for y in yields
            )
            if not is_des_process:
                continue
            for y in yields:
                value = y.value
                if value is None:
                    yield self.violation(
                        ctx,
                        y,
                        "bare yield in a DES process generator; the simulator "
                        "only accepts Delay/Acquire/Release/AcquireSlot/"
                        "ReleaseSlot commands",
                    )
                elif isinstance(value, ast.Call):
                    name = _call_name(value.func)
                    if name is not None and name not in DES_COMMANDS:
                        yield self.violation(
                            ctx,
                            y,
                            f"DES process yields {name}(), which is not a "
                            f"simulator command "
                            f"({'/'.join(sorted(DES_COMMANDS))})",
                        )
                elif isinstance(
                    value,
                    (ast.Constant, ast.BinOp, ast.UnaryOp, ast.Compare,
                     ast.Tuple, ast.List, ast.Dict, ast.Set, ast.JoinedStr),
                ):
                    yield self.violation(
                        ctx,
                        y,
                        f"DES process yields {ast.unparse(value)!r}, which is "
                        f"not a simulator command",
                    )


class LockBalanceRule(Rule):
    """SL006: every Acquire in a DES process needs a Release on all paths."""

    code = "SL006"
    title = "unbalanced Acquire/Release in a DES process"
    sim_scope_only = False
    explanation = (
        "A process that exits while holding a lock (or semaphore slot) "
        "deadlocks every waiter.  The checker runs a lightweight "
        "path-sensitive walk: it reports locks with no matching Release at "
        "all, and locks provably still held on every exit path.  Exception "
        "paths (raise) are exempt."
    )

    #: Bail out of the path walk when the state set explodes.
    _MAX_STATES = 64

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            acquires, releases = self._collect(node)
            if not acquires:
                continue
            reported: Set[Tuple[str, str]] = set()
            for key, acquire_node in acquires.items():
                if key not in releases:
                    kind, text = key
                    verb = "Release" if kind == "lock" else "ReleaseSlot"
                    yield self.violation(
                        ctx,
                        acquire_node,
                        f"{kind} {text!r} is acquired but never released in "
                        f"{node.name}(); add a matching {verb}({text})",
                    )
                    reported.add(key)
            for key in self._definitely_leaked(node):
                if key in reported or key not in acquires:
                    continue
                kind, text = key
                yield self.violation(
                    ctx,
                    acquires[key],
                    f"{kind} {text!r} is still held when {node.name}() exits, "
                    f"on every non-exception path; release it before the "
                    f"generator finishes",
                )

    # ---- collection ---------------------------------------------------- #

    @staticmethod
    def _command_of(stmt: ast.stmt) -> Optional[Tuple[str, str]]:
        """(command_name, lock_source_text) for ``yield Cmd(lock)`` statements."""
        if not isinstance(stmt, ast.Expr) or not isinstance(stmt.value, ast.Yield):
            return None
        call = stmt.value.value
        if not isinstance(call, ast.Call):
            return None
        name = _call_name(call.func)
        if name not in _ACQUIRE_KINDS and name not in _RELEASE_KINDS:
            return None
        target = ast.unparse(call.args[0]) if call.args else ""
        return name, target

    def _collect(
        self, function: ast.AST
    ) -> Tuple[Dict[Tuple[str, str], ast.stmt], Set[Tuple[str, str]]]:
        acquires: Dict[Tuple[str, str], ast.stmt] = {}
        releases: Set[Tuple[str, str]] = set()
        for child in _own_nodes(function):
            if not isinstance(child, ast.stmt):
                continue
            command = self._command_of(child)
            if command is None:
                continue
            name, target = command
            if name in _ACQUIRE_KINDS:
                acquires.setdefault((_ACQUIRE_KINDS[name], target), child)
            else:
                releases.add((_RELEASE_KINDS[name], target))
        return acquires, releases

    # ---- path-sensitive walk ------------------------------------------- #

    def _definitely_leaked(self, function) -> Set[Tuple[str, str]]:
        self._exit_states: List[FrozenSet[Tuple[str, str]]] = []
        self._exploded = False
        fallthrough = self._walk(function.body, {frozenset()})
        self._exit_states.extend(fallthrough)
        if self._exploded or not self._exit_states:
            return set()
        leaked = set(self._exit_states[0])
        for state in self._exit_states[1:]:
            leaked &= state
        return leaked

    def _apply(
        self, stmt: ast.stmt, states: Set[FrozenSet[Tuple[str, str]]]
    ) -> Set[FrozenSet[Tuple[str, str]]]:
        command = self._command_of(stmt)
        if command is None:
            return states
        name, target = command
        out: Set[FrozenSet[Tuple[str, str]]] = set()
        if name in _ACQUIRE_KINDS:
            key = (_ACQUIRE_KINDS[name], target)
            for state in states:
                out.add(state | {key})
        else:
            key = (_RELEASE_KINDS[name], target)
            for state in states:
                out.add(state - {key})
        return out

    def _walk(
        self, stmts: Sequence[ast.stmt], states: Set[FrozenSet[Tuple[str, str]]]
    ) -> Set[FrozenSet[Tuple[str, str]]]:
        for stmt in stmts:
            if not states or self._exploded:
                return set()
            if len(states) > self._MAX_STATES:
                self._exploded = True
                return set()
            if isinstance(stmt, ast.Return):
                self._exit_states.extend(states)
                return set()
            if isinstance(stmt, ast.Raise):
                return set()  # exception paths are exempt
            if isinstance(stmt, ast.If):
                states = self._walk(stmt.body, set(states)) | self._walk(
                    stmt.orelse, set(states)
                )
            elif isinstance(stmt, (ast.For, ast.While, ast.AsyncFor)):
                # Approximate loops as zero-or-one executions of the body.
                states = states | self._walk(stmt.body, set(states))
                if stmt.orelse:
                    states = self._walk(stmt.orelse, states)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                states = self._walk(stmt.body, states)
            elif isinstance(stmt, ast.Try):
                body_out = self._walk(stmt.body, set(states))
                handler_in = states | body_out
                handler_out: Set[FrozenSet[Tuple[str, str]]] = set()
                for handler in stmt.handlers:
                    handler_out |= self._walk(handler.body, set(handler_in))
                states = body_out | handler_out
                if stmt.orelse:
                    states = self._walk(stmt.orelse, states)
                if stmt.finalbody:
                    states = self._walk(stmt.finalbody, states)
            else:
                states = self._apply(stmt, states)
        return states


class CounterDeclRule(Rule):
    """SL007: stats counters must be declared before they are incremented."""

    code = "SL007"
    title = "increment of an undeclared stats attribute"
    sim_scope_only = False
    explanation = (
        "A typo'd self._countr.add() only fails when that code path runs.  "
        "Any self.X.add()/self.X.record() call must have a matching "
        "``self.X = ...`` declaration in the class (or an in-module base).  "
        "Classes with bases imported from other modules are skipped."
    )

    _INCREMENT_METHODS = {"add", "record"}

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Violation]:
        classes: Dict[str, ast.ClassDef] = {
            node.name: node
            for node in ast.walk(tree)
            if isinstance(node, ast.ClassDef)
        }
        assigned: Dict[str, Set[str]] = {
            name: self._assigned_attrs(node) for name, node in classes.items()
        }
        for name, node in classes.items():
            allowed = self._resolve(name, classes, assigned)
            if allowed is None:
                continue  # a base class lives in another module: skip
            for call in ast.walk(node):
                if not isinstance(call, ast.Call):
                    continue
                func = call.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in self._INCREMENT_METHODS
                    and isinstance(func.value, ast.Attribute)
                    and isinstance(func.value.value, ast.Name)
                    and func.value.value.id == "self"
                ):
                    attr = func.value.attr
                    if attr not in allowed:
                        yield self.violation(
                            ctx,
                            call,
                            f"self.{attr}.{func.attr}() increments an attribute "
                            f"never assigned in class {name}; declare it (e.g. "
                            f"self.{attr} = stats.counter(...)) first",
                        )

    @staticmethod
    def _assigned_attrs(node: ast.ClassDef) -> Set[str]:
        attrs: Set[str] = set()
        for child in ast.walk(node):
            targets: List[ast.expr] = []
            if isinstance(child, ast.Assign):
                targets = list(child.targets)
            elif isinstance(child, (ast.AnnAssign, ast.AugAssign)):
                targets = [child.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attrs.add(target.attr)
        return attrs

    def _resolve(
        self,
        name: str,
        classes: Dict[str, ast.ClassDef],
        assigned: Dict[str, Set[str]],
        seen: Optional[Set[str]] = None,
    ) -> Optional[Set[str]]:
        """All attrs assigned by a class and its in-module ancestors, or
        ``None`` when an ancestor is not resolvable in this module."""
        if seen is None:
            seen = set()
        if name in seen:
            return set()
        seen.add(name)
        node = classes[name]
        attrs = set(assigned[name])
        for base in node.bases:
            if not isinstance(base, ast.Name):
                return None
            if base.id == "object":
                continue
            if base.id not in classes:
                return None
            parent = self._resolve(base.id, classes, assigned, seen)
            if parent is None:
                return None
            attrs |= parent
        return attrs


class MutableDefaultRule(Rule):
    """SL008: no mutable default arguments."""

    code = "SL008"
    title = "mutable default argument"
    sim_scope_only = False
    explanation = (
        "A mutable default ([] / {} / set()) is shared across every call; "
        "state leaks between invocations.  Default to None and construct "
        "inside the function."
    )

    _MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "deque", "defaultdict", "Counter"}

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = _call_name(node.func)
            return name in self._MUTABLE_CALLS
        return False

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    name = getattr(node, "name", "<lambda>")
                    yield self.violation(
                        ctx,
                        default,
                        f"mutable default argument {ast.unparse(default)!r} in "
                        f"{name}(); default to None and construct inside the "
                        f"function",
                    )


class FaultRandomnessRule(Rule):
    """SL009: fault draws must come from injected seeded streams.

    Scoped to ``repro/faults/**`` (which lies outside the SL002 sim
    scope): every fault decision must be a draw from the injector's
    per-site ``np.random.default_rng((seed, crc32(site)))`` streams, or a
    campaign stops being replayable.  The stdlib ``random`` module (global
    hidden state), numpy's legacy ``np.random.*`` functions and an
    unseeded ``default_rng()`` are all forbidden here.
    """

    code = "SL009"
    title = "non-injected randomness in fault-injection code"
    sim_scope_only = False
    explanation = (
        "Fault plans are replayable byte-for-byte only if every probability "
        "draw comes from the injector's seeded per-site generators; "
        "module-level random / legacy np.random state breaks the replay "
        "guarantee silently."
    )

    _NUMPY_LEGACY = UnseededRandomRule._NUMPY_LEGACY
    _NUMPY_ALLOWED = UnseededRandomRule._NUMPY_ALLOWED

    @staticmethod
    def _in_faults_scope(path: str) -> bool:
        from pathlib import Path

        parts = Path(path).parts
        for index, part in enumerate(parts[:-1]):
            if part == "repro" and parts[index + 1] == "faults":
                return True
        return False

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Violation]:
        if not self._in_faults_scope(ctx.path):
            return
        for bare in UnseededRandomRule._bare_np_random_nodes(tree):
            yield self.violation(
                ctx,
                bare,
                "bare np.random reference in fault-injection code aliases "
                "the legacy global RNG; use the injector's seeded per-site "
                "generators",
            )
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.violation(
                            ctx,
                            node,
                            "stdlib random imported in fault-injection code; "
                            "fault draws must come from the injector's seeded "
                            "per-site np.random.default_rng streams",
                        )
                continue
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                yield self.violation(
                    ctx,
                    node,
                    "import from the stdlib random module in fault-injection "
                    "code; use the injector's seeded per-site streams",
                )
                continue
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            text = ast.unparse(func)
            if text.endswith("random.default_rng") and not node.args and not node.keywords:
                yield self.violation(
                    ctx,
                    node,
                    "np.random.default_rng() without a seed in fault-injection "
                    "code; derive the seed from the FaultPlan "
                    "(seed, crc32(site))",
                )
                continue
            if (
                isinstance(func, ast.Attribute)
                and func.attr not in self._NUMPY_ALLOWED
                and text.startswith(("np.random.", "numpy.random."))
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"legacy global-state call {text}() in fault-injection "
                    f"code; use the injector's seeded per-site generators",
                )


#: Registered rules, in code order.
RULES: List[Rule] = [
    WallClockRule(),
    UnseededRandomRule(),
    FloatDivLatencyRule(),
    UnitSuffixRule(),
    YieldCommandRule(),
    LockBalanceRule(),
    CounterDeclRule(),
    MutableDefaultRule(),
    FaultRandomnessRule(),
]
