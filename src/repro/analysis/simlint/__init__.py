"""simlint: domain-specific static analysis for the FlatFlash simulator.

Usage::

    python -m repro.analysis.simlint src/           # lint a tree
    python -m repro.analysis.simlint --list-rules   # show the rule catalogue

See ``docs/static_analysis.md`` for the rule catalogue and suppression
syntax (a ``simlint: disable=SL001`` comment).
"""

from repro.analysis.simlint.engine import (
    ALL_CODES,
    SIM_SCOPE_DIRS,
    FileContext,
    Violation,
    infer_sim_scope,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.analysis.simlint.rules import DES_COMMANDS, RULES, Rule

__all__ = [
    "ALL_CODES",
    "DES_COMMANDS",
    "FileContext",
    "RULES",
    "Rule",
    "SIM_SCOPE_DIRS",
    "Violation",
    "infer_sim_scope",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
]
