"""Command-line entry point: ``python -m repro.analysis.simlint <paths>``.

Exits 1 when any violation is found, 0 on a clean tree.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.findings import (
    Violation,
    add_baseline_arguments,
    apply_baseline,
    findings_json,
)
from repro.analysis.simlint.engine import iter_python_files, lint_file
from repro.analysis.simlint.rules import RULES


def _list_rules() -> str:
    lines = ["simlint rule catalogue:", ""]
    for rule in RULES:
        scope = "sim scope only" if rule.sim_scope_only else "all files"
        lines.append(f"  {rule.code}  {rule.title}  [{scope}]")
        lines.append(f"         {rule.explanation}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.simlint",
        description="Domain-specific static analysis for the FlatFlash simulator.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (directories are walked for *.py)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all), e.g. SL001,SL003",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit findings as JSON (shared simlint/simrace schema)",
    )
    add_baseline_arguments(parser)
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0
    if not args.paths:
        parser.error("no paths given (try: python -m repro.analysis.simlint src/)")

    select = None
    if args.select:
        select = [code.strip().upper() for code in args.select.split(",") if code.strip()]
        known = {rule.code for rule in RULES} | {"SL000"}
        unknown = sorted(set(select) - known)
        if unknown:
            parser.error(
                f"unknown rule code(s): {', '.join(unknown)} "
                f"(see --list-rules)"
            )

    files = iter_python_files(args.paths)
    if not files:
        print("simlint: no Python files found under the given paths", file=sys.stderr)
        return 0

    violations: List[Violation] = []
    for path in files:
        try:
            violations.extend(lint_file(path, select=select))
        except (OSError, UnicodeDecodeError) as error:
            print(f"simlint: cannot read {path}: {error}", file=sys.stderr)
            return 2

    violations, done = apply_baseline(args, "simlint", violations, len(files))
    if done is not None:
        return done

    if args.json:
        print(findings_json("simlint", violations, files_checked=len(files)))
        return 1 if violations else 0

    for violation in violations:
        print(violation.format())
    if violations:
        print(f"\nsimlint: {len(violations)} violation(s) in {len(files)} file(s)")
        return 1
    print(f"simlint: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped into `head`
        sys.exit(0)
