"""simlint engine: file walking, suppression parsing, rule dispatch.

The engine is deliberately small — it parses each file once, computes the
per-line suppression table (``simlint: disable=SL001`` comments), decides
whether the file is inside the *simulation scope* (the layers whose timing
and state discipline the lint rules police), and hands the AST to every
registered rule.  Rules live in :mod:`repro.analysis.simlint.rules`.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.analysis.findings import (
    ALL_CODES,
    Violation,
    iter_python_files as _iter_python_files,
    parse_suppressions,
)

#: Directories under ``repro/`` whose files are in the simulation scope:
#: rules about wall-clock time, RNG seeding and ns-unit discipline apply
#: only here (workloads/experiments may legitimately use other units).
SIM_SCOPE_DIRS = {"sim", "ssd", "host", "core", "interconnect"}


class FileContext:
    """Everything a rule needs to know about the file under analysis."""

    def __init__(self, path: str, source: str, sim_scope: Optional[bool] = None):
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.suppressions = self._parse_suppressions(self.lines)
        if sim_scope is None:
            sim_scope = infer_sim_scope(path)
        self.sim_scope = sim_scope

    @staticmethod
    def _parse_suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
        return parse_suppressions(lines, "simlint")

    def suppressed(self, line: int, code: str) -> bool:
        codes = self.suppressions.get(line)
        if codes is None:
            return False
        return ALL_CODES in codes or code in codes


def infer_sim_scope(path: str) -> bool:
    """A file is in simulation scope when it lives under ``repro/<dir>/``
    for one of the :data:`SIM_SCOPE_DIRS` layers."""
    parts = Path(path).parts
    for index, part in enumerate(parts[:-1]):
        if part == "repro" and parts[index + 1] in SIM_SCOPE_DIRS:
            return True
    return False


def lint_source(
    source: str,
    path: str = "<string>",
    select: Optional[Iterable[str]] = None,
    sim_scope: Optional[bool] = None,
) -> List[Violation]:
    """Lint one source string; returns violations sorted by location."""
    from repro.analysis.simlint.rules import RULES

    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        line = error.lineno or 1
        col = (error.offset or 1) - 1
        return [Violation(path, line, col, "SL000", f"syntax error: {error.msg}")]

    wanted = None if select is None else {code.upper() for code in select}
    context = FileContext(path, source, sim_scope=sim_scope)
    violations: List[Violation] = []
    for rule in RULES:
        if wanted is not None and rule.code not in wanted:
            continue
        if rule.sim_scope_only and not context.sim_scope:
            continue
        for violation in rule.check(tree, context):
            if not context.suppressed(violation.line, violation.code):
                violations.append(violation)
    violations.sort(key=lambda v: (v.line, v.col, v.code))
    return violations


def lint_file(
    path: Path, select: Optional[Iterable[str]] = None
) -> List[Violation]:
    source = path.read_text(encoding="utf-8")
    return lint_source(source, path=str(path), select=select)


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    return _iter_python_files(paths)


def lint_paths(
    paths: Iterable[str], select: Optional[Iterable[str]] = None
) -> List[Violation]:
    """Lint every Python file under the given paths."""
    violations: List[Violation] = []
    for path in iter_python_files(paths):
        violations.extend(lint_file(path, select=select))
    return violations
