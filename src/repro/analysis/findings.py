"""Shared findings plumbing for the repo's static-analysis tools.

Both analysis passes — :mod:`repro.analysis.simlint` (single-function
syntax-level rules) and :mod:`repro.analysis.simrace` (interprocedural
concurrency rules) — report findings through one schema, so CI
annotations and downstream tooling can consume either tool's output
without caring which produced it:

* :class:`Violation` — one finding at a source location, with a stable
  rule code (``SL###`` / ``SR###``).
* :func:`findings_json` — the shared ``--json`` serialization
  (``{"tool", "schema_version", "count", "files_checked", "findings"}``).
* :func:`parse_suppressions` — per-line ``# <tool>: disable=CODE``
  comment parsing; both tools use identical suppression syntax.
* :func:`iter_python_files` — file/directory expansion for the CLIs.
"""

from __future__ import annotations

import json
import re
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

#: Version of the shared findings JSON schema; bump on breaking changes.
SCHEMA_VERSION = 1

#: Marker meaning "every rule suppressed on this line".
ALL_CODES = "*"


@dataclass(frozen=True)
class Violation:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def findings_json(
    tool: str,
    violations: Sequence[Violation],
    files_checked: Optional[int] = None,
) -> str:
    """Serialize findings to the shared JSON schema (one object, indented)."""
    payload: Dict[str, object] = {
        "tool": tool,
        "schema_version": SCHEMA_VERSION,
        "count": len(violations),
        "findings": [asdict(violation) for violation in violations],
    }
    if files_checked is not None:
        payload["files_checked"] = files_checked
    return json.dumps(payload, indent=2, sort_keys=True)


def _suppress_re(tool: str) -> "re.Pattern[str]":
    return re.compile(
        rf"#\s*{re.escape(tool)}:\s*disable(?:=(?P<codes>[A-Za-z0-9_, ]+))?"
    )


def parse_suppressions(lines: Sequence[str], tool: str) -> Dict[int, Set[str]]:
    """Per-line suppression table for ``# <tool>: disable[=C1,C2]`` comments."""
    pattern = _suppress_re(tool)
    table: Dict[int, Set[str]] = {}
    for number, text in enumerate(lines, start=1):
        match = pattern.search(text)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            table[number] = {ALL_CODES}
        else:
            table[number] = {c.strip().upper() for c in codes.split(",") if c.strip()}
    return table


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            out.append(path)
    return out
