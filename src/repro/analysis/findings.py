"""Shared findings plumbing for the repo's static-analysis tools.

Both analysis passes — :mod:`repro.analysis.simlint` (single-function
syntax-level rules) and :mod:`repro.analysis.simrace` (interprocedural
concurrency rules) — report findings through one schema, so CI
annotations and downstream tooling can consume either tool's output
without caring which produced it:

* :class:`Violation` — one finding at a source location, with a stable
  rule code (``SL###`` / ``SR###``).
* :func:`findings_json` — the shared ``--json`` serialization
  (``{"tool", "schema_version", "count", "files_checked", "findings"}``).
* :func:`parse_suppressions` — per-line ``# <tool>: disable=CODE``
  comment parsing; both tools use identical suppression syntax.
* :func:`strip_suppression_comments` / :func:`unused_suppressions` —
  stale-suppression detection (``SUP001``): re-run a tool with
  suppressions neutralized and flag the comments that no longer shield
  any finding, so dead ``disable=`` markers can't accumulate.
* :func:`iter_python_files` — file/directory expansion for the CLIs.
* :func:`load_baseline` / :func:`write_baseline` /
  :func:`filter_baseline` — ``--baseline`` support: snapshot the
  current findings and report only ones not in the snapshot, so a new
  rule can land without a suppress-everything commit.

A baseline file is simply a findings JSON document (the exact output of
``--json`` / ``--write-baseline``), matched on ``(path, code, message)``
— line numbers are excluded so unrelated edits don't un-baseline a
finding.
"""

from __future__ import annotations

import json
import re
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Version of the shared findings JSON schema; bump on breaking changes.
SCHEMA_VERSION = 1

#: Marker meaning "every rule suppressed on this line".
ALL_CODES = "*"


@dataclass(frozen=True)
class Violation:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def findings_json(
    tool: str,
    violations: Sequence[Violation],
    files_checked: Optional[int] = None,
) -> str:
    """Serialize findings to the shared JSON schema (one object, indented)."""
    payload: Dict[str, object] = {
        "tool": tool,
        "schema_version": SCHEMA_VERSION,
        "count": len(violations),
        "findings": [asdict(violation) for violation in violations],
    }
    if files_checked is not None:
        payload["files_checked"] = files_checked
    return json.dumps(payload, indent=2, sort_keys=True)


def _suppress_re(tool: str) -> "re.Pattern[str]":
    return re.compile(
        rf"#\s*{re.escape(tool)}:\s*disable(?:=(?P<codes>[A-Za-z0-9_, ]+))?"
    )


def parse_suppressions(lines: Sequence[str], tool: str) -> Dict[int, Set[str]]:
    """Per-line suppression table for ``# <tool>: disable[=C1,C2]`` comments."""
    pattern = _suppress_re(tool)
    table: Dict[int, Set[str]] = {}
    for number, text in enumerate(lines, start=1):
        match = pattern.search(text)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            table[number] = {ALL_CODES}
        else:
            table[number] = {c.strip().upper() for c in codes.split(",") if c.strip()}
    return table


#: Rule code for a suppression comment that suppresses nothing.
UNUSED_SUPPRESSION_CODE = "SUP001"


def strip_suppression_comments(source: str, tool: str) -> str:
    """Neutralize every ``# <tool>: disable`` comment in ``source``.

    Each marker is replaced by a bare ``#`` so line numbers (and the fact
    that the tail of the line is a comment) are preserved; re-running a
    tool over the stripped source yields the findings the suppressions
    were hiding.
    """
    pattern = _suppress_re(tool)
    return "\n".join(pattern.sub("#", line) for line in source.splitlines())


def unused_suppressions(
    path: str,
    lines: Sequence[str],
    tool: str,
    raw_violations: Sequence[Violation],
) -> List[Violation]:
    """Suppression comments in ``lines`` that shield no actual finding.

    ``raw_violations`` must be the tool's findings for this file with
    suppressions *disabled* (e.g. via :func:`strip_suppression_comments`).
    Returns one ``SUP001`` violation per stale comment: either no finding
    exists on the line at all, or specific codes are listed and none of
    them fires there.
    """
    table = parse_suppressions(lines, tool)
    by_line: Dict[int, Set[str]] = {}
    for violation in raw_violations:
        if violation.path == path:
            by_line.setdefault(violation.line, set()).add(violation.code)
    stale: List[Violation] = []
    for number in sorted(table):
        codes = table[number]
        fired = by_line.get(number, set())
        if ALL_CODES in codes:
            if not fired:
                stale.append(
                    Violation(
                        path,
                        number,
                        0,
                        UNUSED_SUPPRESSION_CODE,
                        f"unused suppression: no {tool} finding on this line",
                    )
                )
            continue
        unused = sorted(codes - fired)
        if unused:
            stale.append(
                Violation(
                    path,
                    number,
                    0,
                    UNUSED_SUPPRESSION_CODE,
                    (
                        f"unused suppression: {', '.join(unused)} "
                        f"never fire(s) on this line"
                    ),
                )
            )
    return stale


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            out.append(path)
    return out


# --------------------------------------------------------------------------
# Baselines: report only findings that are new relative to a snapshot
# --------------------------------------------------------------------------

#: A baseline identity for one finding; deliberately line-insensitive.
BaselineKey = Tuple[str, str, str]


def baseline_key(violation: Violation) -> BaselineKey:
    return (violation.path, violation.code, violation.message)


def load_baseline(path: str) -> Set[BaselineKey]:
    """Load the set of baselined finding keys from a findings JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    keys: Set[BaselineKey] = set()
    for finding in document.get("findings", []):
        keys.add(
            (
                str(finding.get("path", "")),
                str(finding.get("code", "")),
                str(finding.get("message", "")),
            )
        )
    return keys


def write_baseline(
    path: str,
    tool: str,
    violations: Sequence[Violation],
    files_checked: Optional[int] = None,
) -> None:
    """Snapshot the current findings as a baseline file (findings JSON)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(findings_json(tool, violations, files_checked=files_checked))
        handle.write("\n")


def filter_baseline(
    violations: Sequence[Violation], keys: Set[BaselineKey]
) -> List[Violation]:
    """Drop findings whose (path, code, message) appear in the baseline."""
    return [v for v in violations if baseline_key(v) not in keys]


def add_baseline_arguments(parser) -> None:
    """Install the shared ``--baseline`` / ``--write-baseline`` options."""
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="report only findings not present in this baseline snapshot",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="snapshot the current findings to FILE (findings JSON) and exit 0",
    )


def apply_baseline(
    args,
    tool: str,
    violations: List[Violation],
    files_checked: Optional[int] = None,
) -> "Tuple[List[Violation], Optional[int]]":
    """Shared handling for the baseline options.

    Returns ``(violations, exit_code)`` — ``exit_code`` is non-None when
    the invocation is complete (``--write-baseline`` wrote its snapshot),
    otherwise ``violations`` has been filtered against ``--baseline``
    (when given) and the caller reports as usual.
    """
    if getattr(args, "write_baseline", None):
        write_baseline(args.write_baseline, tool, violations, files_checked)
        print(
            f"{tool}: wrote baseline with {len(violations)} finding(s) "
            f"to {args.write_baseline}"
        )
        return violations, 0
    if getattr(args, "baseline", None):
        violations = filter_baseline(violations, load_baseline(args.baseline))
    return violations, None
