"""SSD lifetime accounting (Table 1's lifetime column).

Flash wears out with program/erase cycles, so lifetime is inversely
proportional to the pages programmed for the same useful work.  FlatFlash
reduces programs two ways: byte-granular access avoids moving whole pages
whose lines were barely used, and byte-granular persistence avoids
journaling/COW write amplification.  The improvement factor reported in
Table 1 is simply ``programs(baseline) / programs(flatflash)`` for the
same workload.

Naming note: like :mod:`repro.analysis.cost`, this is a *runtime* paper-
metric helper reading counters off a finished run — not part of the
static-analysis families (simlint/simrace/simflow/simeffect/simcost/
simbatch), which never execute the simulator.
"""

from __future__ import annotations

from repro.core.memory_system import MemorySystem


def flash_programs(system: MemorySystem) -> int:
    """Pages programmed into flash by a run on this system."""
    device = getattr(system, "ssd", None)
    if device is None:
        return 0
    return device.flash.total_programs


def write_amplification(system: MemorySystem) -> float:
    """Flash pages programmed per host-initiated page write (>= 1.0)."""
    device = getattr(system, "ssd", None)
    if device is None:
        return 0.0
    return device.ftl.write_amplification


def lifetime_improvement(baseline: MemorySystem, flatflash: MemorySystem) -> float:
    """Relative SSD lifetime: baseline programs / FlatFlash programs.

    Values > 1 mean FlatFlash wears the SSD more slowly for the same work.
    Returns 1.0 when FlatFlash wrote nothing (both idle) to avoid division
    blow-ups on read-only workloads.
    """
    baseline_programs = flash_programs(baseline)
    flatflash_programs = flash_programs(flatflash)
    if flatflash_programs == 0:
        return 1.0 if baseline_programs == 0 else float(baseline_programs)
    return baseline_programs / flatflash_programs
