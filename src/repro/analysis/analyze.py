"""Umbrella runner: simlint + simrace + simflow + simeffect + simcost + simbatch.

``python -m repro analyze [paths]`` runs all six static-analysis
families over the same file set and merges their findings into a single
report (or, with ``--json``, a single findings document in the shared
schema of :mod:`repro.analysis.findings`, with each finding carrying a
``tool`` field).  The first three tools are per-file; simeffect,
simcost, and simbatch are whole-program — each parses the entire file
set into one call graph before its rules fire.

Exit status: 0 when clean, 1 when any tool found anything, and 2 when a
tool *crashed* on a file — a crash means that file was never actually
checked, so it must not be mistaken for a clean pass.

``--check-suppressions`` audits ``# <tool>: disable=`` comments: each
tool is re-run with its suppressions neutralized and any comment that no
longer shields a finding is reported as ``SUP001``, keeping dead
markers from accumulating.

The merged document is also a valid ``--baseline`` snapshot: rule codes
are disjoint across tools (SL/SR/SF/SE/SC/SB), so one baseline file can
cover all six analyses at once.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.findings import (
    SCHEMA_VERSION,
    Violation,
    add_baseline_arguments,
    filter_baseline,
    iter_python_files,
    load_baseline,
    strip_suppression_comments,
    unused_suppressions,
)
from repro.analysis.simbatch.engine import analyze_sources as _batch_sources
from repro.analysis.simcost.engine import analyze_sources as _cost_sources
from repro.analysis.simeffect.engine import analyze_sources as _effect_sources
from repro.analysis.simflow.engine import analyze_file as _flow_file
from repro.analysis.simflow.engine import analyze_source as _flow_source
from repro.analysis.simlint.engine import lint_file as _lint_file
from repro.analysis.simlint.engine import lint_source as _lint_source
from repro.analysis.simrace.engine import analyze_file as _race_file
from repro.analysis.simrace.engine import analyze_source as _race_source

#: The per-file analysis families the umbrella runs, in report order.
TOOLS: Tuple[Tuple[str, Callable[..., List[Violation]]], ...] = (
    ("simlint", _lint_file),
    ("simrace", _race_file),
    ("simflow", _flow_file),
)

#: Source-string variants of the per-file tools (suppression auditing).
SOURCE_TOOLS: Tuple[Tuple[str, Callable[..., List[Violation]]], ...] = (
    ("simlint", _lint_source),
    ("simrace", _race_source),
    ("simflow", _flow_source),
)

#: Whole-program tools run once over the full file set, in report order.
PROGRAM_TOOLS: Tuple[Tuple[str, Callable[..., List[Violation]]], ...] = (
    ("simeffect", _effect_sources),
    ("simcost", _cost_sources),
    ("simbatch", _batch_sources),
)


class Crash:
    """One analyzer failure: the file was not actually checked."""

    __slots__ = ("tool", "path", "error")

    def __init__(self, tool: str, path: str, error: BaseException) -> None:
        self.tool = tool
        self.path = path
        self.error = f"{type(error).__name__}: {error}"

    def as_dict(self) -> Dict[str, str]:
        return {"tool": self.tool, "path": self.path, "error": self.error}

    def format(self) -> str:
        return f"{self.tool}: CRASH analyzing {self.path}: {self.error}"


def _read(path: Path) -> str:
    return path.read_text(encoding="utf-8")


def run_all(
    paths: Sequence[str],
) -> Tuple[Dict[str, List[Violation]], int, List[Crash]]:
    """Run every tool over ``paths``.

    Returns ``(per-tool findings, #files, crashes)``.  A tool raising on
    a file is recorded as a crash instead of aborting the whole run, so
    one bad file can't hide every other tool's findings — but the caller
    must exit non-zero, because the crashed (tool, file) pair was never
    actually analyzed.
    """
    files = iter_python_files(paths)
    per_tool: Dict[str, List[Violation]] = {}
    crashes: List[Crash] = []
    for tool, analyze in TOOLS:
        violations: List[Violation] = []
        for path in files:
            try:
                violations.extend(analyze(path))
            except Exception as error:  # pragma: no cover - exercised via tests
                crashes.append(Crash(tool, str(path), error))
        per_tool[tool] = violations
    try:
        sources = [(str(path), _read(path)) for path in files]
    except Exception as error:
        for tool, _ in PROGRAM_TOOLS:
            crashes.append(Crash(tool, "<whole-program>", error))
            per_tool[tool] = []
        return per_tool, len(files), crashes
    for tool, analyze_sources in PROGRAM_TOOLS:
        try:
            per_tool[tool] = analyze_sources(sources)
        except Exception as error:
            crashes.append(Crash(tool, "<whole-program>", error))
            per_tool[tool] = []
    return per_tool, len(files), crashes


def check_suppressions(paths: Sequence[str]) -> Tuple[List[Violation], List[Crash]]:
    """Audit suppression comments under ``paths``; stale ones → SUP001.

    Each tool is re-run with its ``# <tool>: disable`` markers
    neutralized; a marker whose line then shows no finding of the listed
    codes is stale.  Findings keep the tool name in the message so mixed
    reports stay readable.
    """
    files = iter_python_files(paths)
    stale: List[Violation] = []
    crashes: List[Crash] = []
    sources = [(str(path), _read(path)) for path in files]
    for (path_str, source) in sources:
        lines = source.splitlines()
        for tool, analyze_source in SOURCE_TOOLS:
            try:
                raw = analyze_source(
                    strip_suppression_comments(source, tool), path=path_str
                )
            except Exception as error:  # pragma: no cover - exercised via tests
                crashes.append(Crash(tool, path_str, error))
                continue
            for violation in unused_suppressions(path_str, lines, tool, raw):
                stale.append(
                    Violation(
                        violation.path,
                        violation.line,
                        violation.col,
                        violation.code,
                        f"[{tool}] {violation.message}",
                    )
                )
    for tool, analyze_sources in PROGRAM_TOOLS:
        try:
            raw = analyze_sources(sources, apply_suppressions=False)
        except Exception as error:
            crashes.append(Crash(tool, "<whole-program>", error))
            continue
        for (path_str, source) in sources:
            lines = source.splitlines()
            for violation in unused_suppressions(path_str, lines, tool, raw):
                stale.append(
                    Violation(
                        violation.path,
                        violation.line,
                        violation.col,
                        violation.code,
                        f"[{tool}] {violation.message}",
                    )
                )
    stale.sort(key=lambda v: (v.path, v.line, v.col, v.message))
    return stale, crashes


def merged_document(
    per_tool: Dict[str, List[Violation]],
    files_checked: int,
    crashes: Sequence[Crash] = (),
) -> Dict[str, object]:
    """The merged findings document (shared schema + per-finding ``tool``)."""
    findings: List[Dict[str, object]] = []
    for tool, violations in per_tool.items():
        for violation in violations:
            entry: Dict[str, object] = asdict(violation)
            entry["tool"] = tool
            findings.append(entry)
    findings.sort(key=lambda f: (f["path"], f["line"], f["col"], f["code"]))
    document: Dict[str, object] = {
        "tool": "analyze",
        "schema_version": SCHEMA_VERSION,
        "count": len(findings),
        "files_checked": files_checked,
        "by_tool": {tool: len(violations) for tool, violations in per_tool.items()},
        "findings": findings,
    }
    if crashes:
        document["crashes"] = [crash.as_dict() for crash in crashes]
    return document


def configure_parser(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the merged findings document as JSON",
    )
    parser.add_argument(
        "--check-suppressions",
        action="store_true",
        help="also flag stale '# <tool>: disable=' comments (SUP001)",
    )
    add_baseline_arguments(parser)


def run(args: argparse.Namespace) -> int:
    per_tool, files_checked, crashes = run_all(args.paths)

    if getattr(args, "check_suppressions", False):
        stale, stale_crashes = check_suppressions(args.paths)
        per_tool["suppressions"] = stale
        crashes.extend(stale_crashes)

    if getattr(args, "write_baseline", None):
        document = merged_document(per_tool, files_checked, crashes)
        with open(args.write_baseline, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(
            f"analyze: wrote baseline with {document['count']} finding(s) "
            f"to {args.write_baseline}"
        )
        return 2 if crashes else 0
    if getattr(args, "baseline", None):
        keys = load_baseline(args.baseline)
        per_tool = {
            tool: filter_baseline(violations, keys)
            for tool, violations in per_tool.items()
        }

    total = sum(len(v) for v in per_tool.values())
    if args.json:
        print(
            json.dumps(
                merged_document(per_tool, files_checked, crashes),
                indent=2,
                sort_keys=True,
            )
        )
        if crashes:
            return 2
        return 1 if total else 0

    for tool in per_tool:
        for violation in per_tool[tool]:
            print(f"{tool}: {violation.format()}")
    for crash in crashes:
        print(crash.format(), file=sys.stderr)
    summary = ", ".join(f"{tool}: {len(per_tool[tool])}" for tool in per_tool)
    if crashes:
        print(
            f"\nanalyze: {len(crashes)} tool crash(es) — "
            f"the affected files were NOT fully analyzed",
            file=sys.stderr,
        )
        return 2
    if total:
        print(f"\nanalyze: {total} violation(s) in {files_checked} file(s) ({summary})")
        return 1
    print(f"analyze: {files_checked} file(s) clean across {len(per_tool)} tools")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.analyze",
        description=(
            "Run simlint + simrace + simflow + simeffect + simcost + "
            "simbatch and merge their findings."
        ),
    )
    configure_parser(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped into `head`
        sys.exit(0)
