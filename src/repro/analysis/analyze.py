"""Umbrella runner: simlint + simrace + simflow in one pass.

``python -m repro analyze [paths]`` runs all three static-analysis
families over the same file set and merges their findings into a single
report (or, with ``--json``, a single findings document in the shared
schema of :mod:`repro.analysis.findings`, with each finding carrying a
``tool`` field).  Exit status is 1 when any tool found anything.

The merged document is also a valid ``--baseline`` snapshot: rule codes
are disjoint across tools (SL/SR/SF), so one baseline file can cover all
three analyses at once.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.findings import (
    SCHEMA_VERSION,
    Violation,
    add_baseline_arguments,
    filter_baseline,
    iter_python_files,
    load_baseline,
)
from repro.analysis.simflow.engine import analyze_file as _flow_file
from repro.analysis.simlint.engine import lint_file as _lint_file
from repro.analysis.simrace.engine import analyze_file as _race_file

#: The analysis families the umbrella runs, in report order.
TOOLS: Tuple[Tuple[str, Callable[..., List[Violation]]], ...] = (
    ("simlint", _lint_file),
    ("simrace", _race_file),
    ("simflow", _flow_file),
)


def run_all(paths: Sequence[str]) -> Tuple[Dict[str, List[Violation]], int]:
    """Run every tool over ``paths``; returns (per-tool findings, #files)."""
    files = iter_python_files(paths)
    per_tool: Dict[str, List[Violation]] = {}
    for tool, analyze in TOOLS:
        violations: List[Violation] = []
        for path in files:
            violations.extend(analyze(path))
        per_tool[tool] = violations
    return per_tool, len(files)


def merged_document(
    per_tool: Dict[str, List[Violation]], files_checked: int
) -> Dict[str, object]:
    """The merged findings document (shared schema + per-finding ``tool``)."""
    findings: List[Dict[str, object]] = []
    for tool, violations in per_tool.items():
        for violation in violations:
            entry: Dict[str, object] = asdict(violation)
            entry["tool"] = tool
            findings.append(entry)
    findings.sort(key=lambda f: (f["path"], f["line"], f["col"], f["code"]))
    return {
        "tool": "analyze",
        "schema_version": SCHEMA_VERSION,
        "count": len(findings),
        "files_checked": files_checked,
        "by_tool": {tool: len(per_tool[tool]) for tool, _ in TOOLS},
        "findings": findings,
    }


def configure_parser(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the merged findings document as JSON",
    )
    add_baseline_arguments(parser)


def run(args: argparse.Namespace) -> int:
    per_tool, files_checked = run_all(args.paths)

    if getattr(args, "write_baseline", None):
        document = merged_document(per_tool, files_checked)
        with open(args.write_baseline, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(
            f"analyze: wrote baseline with {document['count']} finding(s) "
            f"to {args.write_baseline}"
        )
        return 0
    if getattr(args, "baseline", None):
        keys = load_baseline(args.baseline)
        per_tool = {
            tool: filter_baseline(violations, keys)
            for tool, violations in per_tool.items()
        }

    total = sum(len(v) for v in per_tool.values())
    if args.json:
        print(json.dumps(merged_document(per_tool, files_checked), indent=2, sort_keys=True))
        return 1 if total else 0

    for tool, _ in TOOLS:
        for violation in per_tool[tool]:
            print(f"{tool}: {violation.format()}")
    summary = ", ".join(f"{tool}: {len(per_tool[tool])}" for tool, _ in TOOLS)
    if total:
        print(f"\nanalyze: {total} violation(s) in {files_checked} file(s) ({summary})")
        return 1
    print(f"analyze: {files_checked} file(s) clean across {len(TOOLS)} tools")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.analyze",
        description="Run simlint + simrace + simflow and merge their findings.",
    )
    configure_parser(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped into `head`
        sys.exit(0)
