"""simflow rule catalogue.

Unlike simlint (independent per-rule AST visitors) and simrace
(per-rule passes over an interprocedural model), simflow's five rules
are all facets of one flow analysis — the checker in
:mod:`repro.analysis.simflow.model` emits every code in a single walk.
The descriptors here carry the metadata for ``--list-rules``,
``--select`` validation and the docs.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RuleInfo:
    code: str
    title: str
    explanation: str
    sim_scope_only: bool = True


RULES = (
    RuleInfo(
        "SF001",
        "arithmetic/comparison mixes two address domains",
        "Adding, subtracting or ordering a vpn against an lpn (or any two "
        "of VPN/PFN/HOST_PAGE/LPN/PPN/BLOCK) has no meaning — the spaces "
        "are only related through the page table, FTL map or BAR window. "
        "Route the value through a registered translation first.",
    ),
    RuleInfo(
        "SF002",
        "argument domain contradicts the callee's declared domain",
        "A call passes a value of one address domain where the signature "
        "(repro.units annotation, name heuristic, or registry entry) "
        "declares another domain of the same architectural layer — e.g. "
        "an LPN where a PPN is expected. The classic FTL bug class.",
    ),
    RuleInfo(
        "SF003",
        "address crosses a layer boundary without a translation",
        "A host-layer value (VPN/PFN) flows into an ssd-layer consumer "
        "(LPN/PPN/BLOCK) or vice versa, or an interconnect HOST_PAGE "
        "leaks past the BAR window, without passing a registered "
        "translation (page-table walk, FTL map, resolve_lpn/host_page_of, "
        "lpn_of_vpn). The message names the sanctioned translation.",
    ),
    RuleInfo(
        "SF004",
        "time-unit mixing (ns vs µs vs cycles)",
        "Nanoseconds, microseconds and CPU cycles met in arithmetic, a "
        "comparison or a call without an explicit conversion. The "
        "simulator's clock is ns-only; convert via NS_PER_US (or an "
        "explicit cycles-per-ns factor) at the boundary.",
    ),
    RuleInfo(
        "SF005",
        "container keyed by one domain, indexed by another",
        "A dict declared (or named) as keyed by one address domain is "
        "subscripted, probed (in / get / pop / setdefault) or assigned "
        "with a key from a different domain — e.g. indexing the FTL's "
        "lpn→ppn map with a ppn.",
    ),
)
