"""Domain vocabulary for simflow: kinds, heuristics, translation registry.

A *kind* classifies what an integer means.  The address kinds mirror
FlatFlash's layered address spaces (paper §3: virtual page → host frame
or BAR-window device page → device logical page → NAND physical page);
the unit kinds cover byte offsets, page counts and the time units the
simulator's ns-clock discipline cares about.

Kind inference is annotation-first: ``repro/units.py`` domain types in
a signature are ground truth, the translation registry below covers the
sanctioned cross-layer hops (page-table walk, FTL map, cache-set hash,
BAR resolve), and identifier-name heuristics fill the gaps for
unannotated code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.units import DOMAIN_TYPES

# --------------------------------------------------------------------------
# Kinds
# --------------------------------------------------------------------------

VPN = "VPN"  #: virtual page number (host address space)
PFN = "PFN"  #: host DRAM frame index
HOST_PAGE = "HOST_PAGE"  #: device page as exposed through the PCIe BAR
LPN = "LPN"  #: device logical page number (LBA space)
PPN = "PPN"  #: NAND physical page number
BLOCK = "BLOCK"  #: NAND erase-block index
OFFSET_BYTES = "OFFSET_BYTES"  #: byte offset within a page
SIZE_PAGES = "SIZE_PAGES"  #: a count of pages
TIME_NS = "TIME_NS"  #: nanoseconds
TIME_US = "TIME_US"  #: microseconds
TIME_CYCLES = "TIME_CYCLES"  #: CPU cycles
PLAIN = "PLAIN"  #: explicitly an ordinary number (no domain claim)

#: Kinds that name a page/block in some address space; SF001/SF002/SF003
#: police these.
ADDRESS_KINDS = frozenset({VPN, PFN, HOST_PAGE, LPN, PPN, BLOCK})

#: Time-unit kinds; SF004 polices these.
TIME_KINDS = frozenset({TIME_NS, TIME_US, TIME_CYCLES})

#: Which architectural layer owns each address kind.  Same-layer
#: confusion is SF002; crossing layers without a translation is SF003.
LAYER: Dict[str, str] = {
    VPN: "host",
    PFN: "host",
    HOST_PAGE: "interconnect",
    LPN: "ssd",
    PPN: "ssd",
    BLOCK: "ssd",
}

_DESCRIPTION = {
    VPN: "virtual page number",
    PFN: "host DRAM frame index",
    HOST_PAGE: "host-visible device page (BAR window)",
    LPN: "device logical page number",
    PPN: "NAND physical page number",
    BLOCK: "NAND erase-block index",
    OFFSET_BYTES: "byte offset",
    SIZE_PAGES: "page count",
    TIME_NS: "nanoseconds",
    TIME_US: "microseconds",
    TIME_CYCLES: "CPU cycles",
    PLAIN: "plain number",
}


def describe(kind: str) -> str:
    return f"{kind} ({_DESCRIPTION.get(kind, kind)})"


# --------------------------------------------------------------------------
# Identifier-name heuristics (fallback when no annotation applies)
# --------------------------------------------------------------------------

#: Exact identifier names with an unambiguous domain meaning in this
#: codebase.  Deliberately conservative: ``frame`` (a Frame object),
#: ``block`` (a FlashBlock object), ``offset`` and ``size`` (page-local
#: byte math everywhere) are NOT mapped — annotation-only.
_EXACT_NAMES: Dict[str, str] = {
    "vpn": VPN,
    "pfn": PFN,
    "lpn": LPN,
    "ppn": PPN,
    "base_vpn": VPN,
    "frame_index": PFN,
    "frame_idx": PFN,
    "mem_tag": PFN,
    "host_page": HOST_PAGE,
    "ssd_page": HOST_PAGE,
    "ssd_tag": HOST_PAGE,
    "device_page": HOST_PAGE,
    "block_index": BLOCK,
    "block_idx": BLOCK,
    "now": TIME_NS,
}

_SUFFIXES: Tuple[Tuple[str, str], ...] = (
    ("_vpn", VPN),
    ("_pfn", PFN),
    ("_lpn", LPN),
    ("_ppn", PPN),
    ("_host_page", HOST_PAGE),
    ("_ssd_page", HOST_PAGE),
    ("_ssd_tag", HOST_PAGE),
    ("_ns", TIME_NS),
    ("_us", TIME_US),
    ("_cycles", TIME_CYCLES),
)


def heuristic_kind(name: str) -> Optional[str]:
    """Best-effort kind for an identifier, or ``None``.

    ALL_CAPS names are constants (``NS_PER_US`` is a conversion factor,
    not a time), and ``*_to_*`` / ``by_*`` names are containers — both
    are excluded.
    """
    if not name or name.isupper():
        return None
    if "_to_" in name or name.startswith("by_") or "_by_" in name:
        return None
    bare = name.lstrip("_")
    exact = _EXACT_NAMES.get(bare)
    if exact is not None:
        return exact
    for suffix, kind in _SUFFIXES:
        if bare.endswith(suffix):
            return kind
    return None


def heuristic_return_kind(func_name: str) -> Optional[str]:
    """Kind implied by a function's *name* for its return value.

    The ``*_ns`` / ``*_cost`` naming convention is already enforced by
    simlint SL003, so it is safe to lean on here.
    """
    bare = func_name.lstrip("_")
    if bare.endswith("_ns") or bare.endswith("_cost"):
        return TIME_NS
    if bare.endswith("_us"):
        return TIME_US
    if bare.endswith("_cycles"):
        return TIME_CYCLES
    return None


def container_name_kinds(name: str) -> Tuple[Optional[str], Optional[str]]:
    """(key_kind, value_kind) implied by a container's name.

    Recognises the ``<a>_to_<b>`` and ``by_<a>`` naming patterns used
    throughout the simulator (``_vpn_to_lpn``, ``_by_ssd_tag``).
    """
    bare = name.lstrip("_")
    if "_to_" in bare:
        left, _, right = bare.partition("_to_")
        return _EXACT_NAMES.get(left), _EXACT_NAMES.get(right)
    if bare.startswith("by_"):
        return _EXACT_NAMES.get(bare[3:]), None
    if "_by_" in bare:
        _, _, right = bare.partition("_by_")
        return _EXACT_NAMES.get(right), None
    return None, None


# --------------------------------------------------------------------------
# Annotation parsing
# --------------------------------------------------------------------------

_DICT_BASES = {"Dict", "dict", "DefaultDict", "defaultdict", "Mapping", "MutableMapping"}


def _terminal_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def annotation_kind(node: Optional[ast.expr]) -> Optional[str]:
    """Kind named by an annotation AST, scanning through ``Optional[...]``
    and ``Annotated[int, LPN]`` wrappers.  Returns the first domain-type
    name found, or ``None``."""
    if node is None:
        return None
    for sub in ast.walk(node):
        name = _terminal_name(sub) if isinstance(sub, (ast.Name, ast.Attribute)) else None
        if name in DOMAIN_TYPES:
            return DOMAIN_TYPES[name]
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            # string annotation, e.g. "LPN"
            if sub.value in DOMAIN_TYPES:
                return DOMAIN_TYPES[sub.value]
    return None


def annotation_container(node: Optional[ast.expr]) -> Optional[Tuple[Optional[str], Optional[str]]]:
    """(key_kind, value_kind) for a ``Dict[K, V]``-shaped annotation."""
    if node is None:
        return None
    if isinstance(node, ast.Subscript) and _terminal_name(node.value) in _DICT_BASES:
        sl = node.slice
        if isinstance(sl, ast.Tuple) and len(sl.elts) == 2:
            return annotation_kind(sl.elts[0]), annotation_kind(sl.elts[1])
    return None


def annotation_tuple(node: Optional[ast.expr]) -> Optional[Tuple[Optional[str], ...]]:
    """Element kinds for a ``Tuple[A, B, ...]`` return annotation."""
    if node is None:
        return None
    if isinstance(node, ast.Subscript) and _terminal_name(node.value) in {"Tuple", "tuple"}:
        sl = node.slice
        if isinstance(sl, ast.Tuple):
            return tuple(annotation_kind(elt) for elt in sl.elts)
    return None


# --------------------------------------------------------------------------
# Translation registry: the sanctioned cross-domain hops
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Translation:
    """One sanctioned translation/consumer signature.

    ``receivers`` restricts matching to attribute calls whose receiver's
    last identifier is listed (``self.ftl.lookup`` → ``"ftl"``); ``None``
    matches any receiver.  ``params`` gives the expected kind per
    positional argument (``None`` = unchecked).  ``returns`` is a kind,
    a tuple of kinds (for tuple returns), or ``None``.  ``pun`` marks
    the two host/ssd page-pun resolvers whose *bodies* are exempt from
    domain checking — they exist to cross the streams.
    """

    method: str
    receivers: Optional[Tuple[str, ...]]
    params: Tuple[Optional[str], ...]
    returns: object = None
    description: str = ""
    pun: bool = False


REGISTRY: Tuple[Translation, ...] = (
    # host: page-table walk & TLB (VPN consumers)
    Translation("walk", ("page_table",), (VPN,), (None, TIME_NS), "page-table walk"),
    Translation("entry", ("page_table",), (VPN,), None, "page-table entry"),
    Translation("lookup", ("page_table",), (VPN,), None, "page-table lookup"),
    Translation("remove", ("page_table",), (VPN,), None, "page-table remove"),
    Translation("lookup", ("tlb",), (VPN,), None, "TLB probe"),
    Translation("fill", ("tlb",), (VPN,), None, "TLB fill"),
    Translation("invalidate", ("tlb",), (VPN,), TIME_NS, "TLB shootdown"),
    Translation("allocate", ("dram",), (VPN,), None, "frame allocation"),
    # interconnect: PLB + bridge routing (HOST_PAGE consumers)
    Translation(
        "start", ("plb",), (HOST_PAGE, PFN, None, TIME_NS), None, "PLB fill start"
    ),
    Translation("lookup", ("plb",), (HOST_PAGE,), None, "PLB probe"),
    Translation("dram_addr", ("bridge",), (PFN, OFFSET_BYTES), PLAIN, "DRAM address forge"),
    Translation("ssd_addr", ("bridge",), (HOST_PAGE, OFFSET_BYTES), PLAIN, "SSD address forge"),
    # ssd: FTL map — the LPN→PPN translation proper
    Translation("lookup", ("ftl",), (LPN,), PPN, "FTL map lookup"),
    Translation("lpn_of", ("ftl",), (PPN,), LPN, "FTL reverse map"),
    Translation("map_page", ("ftl",), (LPN,), (PPN, TIME_NS), "FTL map fill"),
    Translation("write", ("ftl",), (LPN, None), (PPN, TIME_NS), "FTL out-of-place write"),
    Translation("read", ("ftl",), (LPN,), None, "FTL read"),
    Translation("trim", ("ftl",), (LPN,), None, "FTL trim"),
    Translation("is_mapped", ("ftl",), (LPN,), None, "FTL map probe"),
    # ssd: cache (keyed by LPN) and its set hash
    Translation("_set_of", ("cache", "self"), (LPN,), PLAIN, "cache-set hash"),
    Translation("lookup", ("cache",), (LPN,), None, "SSD-cache lookup"),
    Translation("peek", ("cache",), (LPN,), None, "SSD-cache peek"),
    Translation("insert", ("cache",), (LPN, None), None, "SSD-cache insert"),
    Translation("invalidate", ("cache",), (LPN,), None, "SSD-cache invalidate"),
    # ssd: NAND array (PPN/BLOCK consumers)
    Translation("read", ("flash",), (PPN,), None, "NAND page read"),
    Translation("program", ("flash",), (PPN, None), None, "NAND page program"),
    Translation("invalidate", ("flash",), (PPN,), None, "NAND page invalidate"),
    Translation("erase", ("flash",), (BLOCK,), None, "NAND block erase"),
    # device boundary: the BAR-window page pun (HOST_PAGE ↔ LPN)
    Translation(
        "resolve_lpn", None, (HOST_PAGE,), LPN, "BAR page → logical page", pun=True
    ),
    Translation(
        "host_page_of", None, (LPN,), HOST_PAGE, "logical page → BAR page", pun=True
    ),
    Translation("map_page", ("ssd", "device"), (LPN,), (HOST_PAGE, TIME_NS), "device map"),
    Translation("write_page", ("ssd", "device"), (LPN, None), None, "device page write"),
    Translation(
        "read_page_for_promotion",
        ("ssd", "device"),
        (HOST_PAGE,),
        None,
        "promotion DMA read",
    ),
    Translation("mmio_read", ("ssd", "device"), (HOST_PAGE,), None, "MMIO read"),
    Translation("mmio_write", ("ssd", "device"), (HOST_PAGE,), None, "MMIO write"),
    Translation("drain_remaps", ("ssd", "device"), (), (None, TIME_NS), "remap drain"),
    # core: region bookkeeping (VPN → LPN is linear tiling, but must be cast)
    Translation("lpn_of_vpn", None, (VPN,), LPN, "region vpn→lpn map"),
)

#: Function names whose bodies are exempt from SF checks — the
#: sanctioned pun points that deliberately cross layer families.
PUN_FUNCTIONS = frozenset(t.method for t in REGISTRY if t.pun)


def find_translation(method: str, receiver: Optional[str]) -> Optional[Translation]:
    """Registry entry matching a call, preferring receiver-specific rows."""
    fallback: Optional[Translation] = None
    for entry in REGISTRY:
        if entry.method != method:
            continue
        if entry.receivers is None:
            fallback = fallback or entry
        elif receiver is not None and receiver in entry.receivers:
            return entry
    return fallback


def translation_hint(actual: str, expected: str) -> str:
    """Human hint naming the registered translation from one kind to another."""
    for entry in REGISTRY:
        returns = entry.returns
        ret_kinds: Tuple[object, ...]
        if isinstance(returns, tuple):
            ret_kinds = returns
        else:
            ret_kinds = (returns,)
        if expected in ret_kinds and entry.params[:1] == (actual,):
            return f"translate via {entry.method}() ({entry.description})"
    return f"no registered {actual}→{expected} translation exists"


# --------------------------------------------------------------------------
# Containers discovered from annotations
# --------------------------------------------------------------------------


@dataclass
class ContainerInfo:
    """Key/value kinds for one dict-like container."""

    key_kind: Optional[str] = None
    value_kind: Optional[str] = None


@dataclass
class ContainerTable:
    """Containers by (class_name, attr_or_var_name); '' = module scope."""

    table: Dict[Tuple[str, str], ContainerInfo] = field(default_factory=dict)

    def record(
        self, class_name: str, name: str, kinds: Tuple[Optional[str], Optional[str]]
    ) -> None:
        key_kind, value_kind = kinds
        if key_kind is None and value_kind is None:
            return
        self.table[(class_name, name)] = ContainerInfo(key_kind, value_kind)

    def lookup(self, class_name: str, name: str) -> Optional[ContainerInfo]:
        info = self.table.get((class_name, name))
        if info is not None:
            return info
        key_kind, value_kind = container_name_kinds(name)
        if key_kind is None and value_kind is None:
            return None
        return ContainerInfo(key_kind, value_kind)
