"""simflow engine: file walking, suppression handling, checker dispatch.

Mirrors the simlint engine: parse each file once, compute the per-line
``simflow: disable=SF001`` comment suppression table, decide sim scope, and
run the flow checker (:func:`repro.analysis.simflow.model.check_module`)
over it.  All SF rules are sim-scope-only — the address-domain
discipline they police applies to the simulator layers, not to
experiment scripts tabulating results.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.analysis.findings import (
    ALL_CODES,
    Violation,
    iter_python_files as _iter_python_files,
    parse_suppressions,
)
from repro.analysis.simflow.model import check_module

#: Same simulation scope as simlint/simrace.
SIM_SCOPE_DIRS = {"sim", "ssd", "host", "core", "interconnect"}


class FileContext:
    """Suppression table + scope decision for one file under analysis."""

    def __init__(self, path: str, source: str, sim_scope: Optional[bool] = None):
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.suppressions = self._parse_suppressions(self.lines)
        if sim_scope is None:
            sim_scope = infer_sim_scope(path)
        self.sim_scope = sim_scope

    @staticmethod
    def _parse_suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
        return parse_suppressions(lines, "simflow")

    def suppressed(self, line: int, code: str) -> bool:
        codes = self.suppressions.get(line)
        if codes is None:
            return False
        return ALL_CODES in codes or code in codes


def infer_sim_scope(path: str) -> bool:
    """A file is in simulation scope when it lives under ``repro/<dir>/``
    for one of the :data:`SIM_SCOPE_DIRS` layers."""
    parts = Path(path).parts
    for index, part in enumerate(parts[:-1]):
        if part == "repro" and parts[index + 1] in SIM_SCOPE_DIRS:
            return True
    return False


def analyze_source(
    source: str,
    path: str = "<string>",
    select: Optional[Iterable[str]] = None,
    sim_scope: Optional[bool] = None,
) -> List[Violation]:
    """Analyze one source string; returns violations sorted by location."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        line = error.lineno or 1
        col = (error.offset or 1) - 1
        return [Violation(path, line, col, "SF000", f"syntax error: {error.msg}")]

    context = FileContext(path, source, sim_scope=sim_scope)
    if not context.sim_scope:
        return []

    wanted = None if select is None else {code.upper() for code in select}
    violations: List[Violation] = []
    seen: Set[tuple] = set()

    def report(code: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if wanted is not None and code not in wanted:
            return
        if context.suppressed(line, code):
            return
        key = (line, col, code, message)
        if key in seen:
            return
        seen.add(key)
        violations.append(Violation(path, line, col, code, message))

    check_module(tree, report)
    violations.sort(key=lambda v: (v.line, v.col, v.code))
    return violations


def analyze_file(
    path: Path, select: Optional[Iterable[str]] = None
) -> List[Violation]:
    source = path.read_text(encoding="utf-8")
    return analyze_source(source, path=str(path), select=select)


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    return _iter_python_files(paths)


def analyze_paths(
    paths: Iterable[str], select: Optional[Iterable[str]] = None
) -> List[Violation]:
    """Analyze every Python file under the given paths."""
    violations: List[Violation] = []
    for path in iter_python_files(paths):
        violations.extend(analyze_file(path, select=select))
    return violations
