"""simflow: address-space & unit flow analysis for the FlatFlash simulator.

The third member of the repo's analysis family.  simlint checks
token-level simulation hygiene, simrace checks cross-yield atomicity;
simflow tracks *what kind of number* flows where — virtual pages, host
frames, BAR-window device pages, logical pages, physical pages, erase
blocks and time units — and flags cross-domain mixing (rules
SF001–SF005).  Kinds come annotation-first from :mod:`repro.units`,
then the sanctioned-translation registry, then identifier heuristics.

Run it with ``python -m repro.analysis.simflow src/`` (exit 1 on
findings) or through the :mod:`repro.analysis.analyze` umbrella.  The
dynamic counterpart is :mod:`repro.sim.domain_tags`.
"""

from repro.analysis.findings import Violation
from repro.analysis.simflow.engine import (
    analyze_file,
    analyze_paths,
    analyze_source,
    infer_sim_scope,
)
from repro.analysis.simflow.rules import RULES

__all__ = [
    "Violation",
    "analyze_source",
    "analyze_file",
    "analyze_paths",
    "infer_sim_scope",
    "RULES",
]
