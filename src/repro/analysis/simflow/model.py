"""simflow model: function summaries + the flow-sensitive domain checker.

Two passes over each module, mirroring the simrace architecture:

1. **Summaries** — every function/method gets a
   :class:`FunctionSummary`: per-parameter kinds (annotation first,
   name heuristic fallback) and a return kind (annotation first, then
   the ``*_ns``/``*_cost`` naming convention).  Class bodies are also
   scanned for ``Dict[K, V]``-annotated containers.

2. **Flow walk** — each function body is walked statement by statement
   with an environment mapping local names to kinds.  Assignments
   propagate kinds (including tuple unpacking of registered tuple
   returns); branches are walked on copies of the environment and
   merged by agreement; expression evaluation reports domain mixing as
   it computes kinds.

Call resolution order: in-module summary (``f(...)`` → module scope,
``self.m(...)`` → current class), then the translation registry
(:data:`repro.analysis.simflow.domains.REGISTRY`) keyed on method name
plus receiver hint.  Calls to ``repro.units`` domain types are
*sanctioned casts*: they never warn and their result adopts the cast
kind.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.simflow import domains as d
from repro.units import DOMAIN_TYPES

Kind = Optional[str]
#: Kind of a value: a single kind, a tuple of kinds (tuple values), or None.
ValueKind = Union[None, str, Tuple[Kind, ...]]

Report = Callable[[str, ast.AST, str], None]


# --------------------------------------------------------------------------
# Pass 1: summaries
# --------------------------------------------------------------------------


@dataclass
class FunctionSummary:
    name: str
    class_name: str  # "" for module-level functions
    node: ast.AST
    param_order: List[str]
    param_kinds: Dict[str, str]
    return_kind: ValueKind
    exempt: bool  # pun-point body: skip all checks inside


@dataclass
class ModuleModel:
    functions: Dict[Tuple[str, str], FunctionSummary] = field(default_factory=dict)
    containers: d.ContainerTable = field(default_factory=d.ContainerTable)

    def resolve(self, class_name: str, name: str) -> Optional[FunctionSummary]:
        return self.functions.get((class_name, name))


def _summarize_function(
    node: ast.FunctionDef, class_name: str
) -> FunctionSummary:
    args = node.args
    params: List[ast.arg] = list(args.posonlyargs) + list(args.args)
    order: List[str] = []
    kinds: Dict[str, str] = {}
    for index, arg in enumerate(params):
        if index == 0 and class_name and arg.arg in ("self", "cls"):
            continue
        order.append(arg.arg)
        kind = d.annotation_kind(arg.annotation) or d.heuristic_kind(arg.arg)
        if kind is not None:
            kinds[arg.arg] = kind
    for arg in args.kwonlyargs:
        kind = d.annotation_kind(arg.annotation) or d.heuristic_kind(arg.arg)
        if kind is not None:
            kinds[arg.arg] = kind
    return_kind: ValueKind = d.annotation_tuple(node.returns) or d.annotation_kind(
        node.returns
    )
    if return_kind is None:
        return_kind = d.heuristic_return_kind(node.name)
    return FunctionSummary(
        name=node.name,
        class_name=class_name,
        node=node,
        param_order=order,
        param_kinds=kinds,
        return_kind=return_kind,
        exempt=node.name in d.PUN_FUNCTIONS,
    )


def _record_container(
    model: ModuleModel, class_name: str, name: str, annotation: ast.expr
) -> None:
    kinds = d.annotation_container(annotation)
    if kinds is not None:
        model.containers.record(class_name, name, kinds)


def build_module(tree: ast.Module) -> ModuleModel:
    """Collect function summaries and container declarations."""
    model = ModuleModel()

    def visit_body(body: Sequence[ast.stmt], class_name: str) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                summary = _summarize_function(stmt, class_name)
                model.functions[(class_name, stmt.name)] = summary
                # self.x: Dict[K, V] declarations live inside methods
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.AnnAssign) and isinstance(
                        sub.target, ast.Attribute
                    ):
                        if (
                            isinstance(sub.target.value, ast.Name)
                            and sub.target.value.id == "self"
                        ):
                            _record_container(
                                model, class_name, sub.target.attr, sub.annotation
                            )
            elif isinstance(stmt, ast.ClassDef):
                for sub in stmt.body:
                    if isinstance(sub, ast.AnnAssign) and isinstance(
                        sub.target, ast.Name
                    ):
                        _record_container(model, stmt.name, sub.target.id, sub.annotation)
                visit_body(stmt.body, stmt.name)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                _record_container(model, class_name, stmt.target.id, stmt.annotation)

    visit_body(tree.body, "")
    return model


# --------------------------------------------------------------------------
# Pass 2: flow-sensitive walk
# --------------------------------------------------------------------------

_DICT_KEY_METHODS = {"get", "pop", "setdefault"}


def _receiver_hint(func: ast.expr) -> Optional[str]:
    """Last identifier of a call receiver chain: ``self.ftl.lookup`` → ftl."""
    if isinstance(func, ast.Attribute):
        value = func.value
        if isinstance(value, ast.Name):
            return value.id
        if isinstance(value, ast.Attribute):
            return value.attr
    return None


class FlowChecker:
    """Walks one function body, tracking kinds and reporting domain mixing."""

    def __init__(self, model: ModuleModel, summary: FunctionSummary, report: Report):
        self.model = model
        self.summary = summary
        self.report = report
        self.env: Dict[str, str] = dict(summary.param_kinds)
        # containers declared locally: name -> ContainerInfo
        self.local_containers: Dict[str, d.ContainerInfo] = {}

    # -- entry point -------------------------------------------------------

    def run(self) -> None:
        if self.summary.exempt:
            return
        node = self.summary.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        self._walk_body(node.body)

    # -- statements --------------------------------------------------------

    def _walk_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested defs are checked as their own summaries
        if isinstance(stmt, ast.Assign):
            value_kind = self._expr(stmt.value)
            for target in stmt.targets:
                self._bind(target, value_kind)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._expr(stmt.value)
            if isinstance(stmt.target, ast.Name):
                container = d.annotation_container(stmt.annotation)
                if container is not None:
                    self.local_containers[stmt.target.id] = d.ContainerInfo(*container)
                declared = d.annotation_kind(stmt.annotation)
                if declared is not None:
                    self.env[stmt.target.id] = declared
            elif isinstance(stmt.target, ast.Subscript):
                self._subscript(stmt.target)
        elif isinstance(stmt, ast.AugAssign):
            target_kind = self._expr(stmt.target, store=True)
            value_kind = self._expr(stmt.value)
            self._check_mix(stmt, target_kind, value_kind, "augmented assignment")
        elif isinstance(stmt, (ast.Return, ast.Expr)):
            if stmt.value is not None:
                self._expr(stmt.value)
        elif isinstance(stmt, ast.If):
            self._expr(stmt.test)
            self._branch([stmt.body, stmt.orelse])
        elif isinstance(stmt, (ast.While,)):
            self._expr(stmt.test)
            self._loop(stmt.body)
            self._walk_body(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_kind = self._expr(stmt.iter)
            self._bind_loop_target(stmt.target, stmt.iter, iter_kind)
            self._loop(stmt.body)
            self._walk_body(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._expr(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, None)
            self._walk_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._walk_body(stmt.body)
            for handler in stmt.handlers:
                env = dict(self.env)
                self._walk_body(handler.body)
                self.env = env
            self._walk_body(stmt.orelse)
            self._walk_body(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._expr(child)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Subscript):
                    self._subscript(target)

    def _branch(self, bodies: Sequence[Sequence[ast.stmt]]) -> None:
        base = dict(self.env)
        posts: List[Dict[str, str]] = []
        for body in bodies:
            self.env = dict(base)
            self._walk_body(body)
            posts.append(self.env)
        merged: Dict[str, str] = {}
        for name in set().union(*posts):
            kinds = {post.get(name) for post in posts}
            if len(kinds) == 1:
                kind = kinds.pop()
                if kind is not None:
                    merged[name] = kind
        self.env = merged

    def _loop(self, body: Sequence[ast.stmt]) -> None:
        base = dict(self.env)
        self._walk_body(body)
        post = self.env
        self.env = {
            name: kind
            for name, kind in base.items()
            if post.get(name) == kind
        }
        for name, kind in post.items():
            if name not in base and kind is not None:
                # loop may not run; keep only if base had no opinion either
                self.env.setdefault(name, kind)

    # -- binding -----------------------------------------------------------

    def _bind(self, target: ast.expr, value_kind: ValueKind) -> None:
        if isinstance(target, ast.Name):
            if isinstance(value_kind, str):
                if value_kind == d.PLAIN:
                    # a literal doesn't override what the name declares:
                    # ``elapsed_ns = 0`` still holds nanoseconds
                    value_kind = d.heuristic_kind(target.id) or d.PLAIN
                self.env[target.id] = value_kind
            else:
                self.env.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            elements: Tuple[Kind, ...]
            if isinstance(value_kind, tuple) and len(value_kind) == len(target.elts):
                elements = value_kind
            else:
                elements = tuple(None for _ in target.elts)
            for element, kind in zip(target.elts, elements):
                self._bind(element, kind)
        elif isinstance(target, ast.Subscript):
            self._subscript(target)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, None)
        # attribute targets carry no local env

    def _bind_loop_target(
        self, target: ast.expr, iter_expr: ast.expr, iter_kind: ValueKind
    ) -> None:
        # ``for k, v in mapping.items()`` — propagate container kinds
        if (
            isinstance(iter_expr, ast.Call)
            and isinstance(iter_expr.func, ast.Attribute)
            and iter_expr.func.attr in {"items", "keys", "values"}
        ):
            info = self._container_of(iter_expr.func.value)
            if info is not None:
                method = iter_expr.func.attr
                if method == "items" and isinstance(target, ast.Tuple) and len(target.elts) == 2:
                    self._bind(target.elts[0], info.key_kind)
                    self._bind(target.elts[1], info.value_kind)
                    return
                if method == "keys":
                    self._bind(target, info.key_kind)
                    return
                if method == "values":
                    self._bind(target, info.value_kind)
                    return
        # iterating a container directly yields its keys
        info = self._container_of(iter_expr)
        if info is not None and isinstance(target, ast.Name):
            self._bind(target, info.key_kind)
            return
        # unknown iterable: leave names unbound so heuristics still apply
        for name_node in ast.walk(target):
            if isinstance(name_node, ast.Name):
                self.env.pop(name_node.id, None)

    # -- expression kinds --------------------------------------------------

    def _name_kind(self, name: str) -> Kind:
        if name in self.env:
            return self.env[name]
        return d.heuristic_kind(name)

    def _expr(self, node: ast.expr, store: bool = False) -> ValueKind:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(node.value, (int, float)):
                return None
            return d.PLAIN
        if isinstance(node, ast.Name):
            return self._name_kind(node.id)
        if isinstance(node, ast.Attribute):
            if not isinstance(node.value, (ast.Name, ast.Attribute)):
                self._expr(node.value)
            return d.heuristic_kind(node.attr)
        if isinstance(node, ast.BinOp):
            left = self._expr(node.left)
            right = self._expr(node.right)
            return self._binop(node, left, right)
        if isinstance(node, ast.UnaryOp):
            return self._expr(node.operand)
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self._expr(value)
            return None
        if isinstance(node, ast.Compare):
            return self._compare(node)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Subscript):
            return self._subscript(node)
        if isinstance(node, ast.IfExp):
            self._expr(node.test)
            body = self._expr(node.body)
            orelse = self._expr(node.orelse)
            return body if body == orelse else None
        if isinstance(node, (ast.Tuple, ast.List)):
            kinds = tuple(
                k if isinstance(k, str) else None
                for k in (self._expr(elt) for elt in node.elts)
            )
            return kinds if isinstance(node, ast.Tuple) else None
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            saved = dict(self.env)
            for comp in node.generators:
                iter_kind = self._expr(comp.iter)
                self._bind_loop_target(comp.target, comp.iter, iter_kind)
                for test in comp.ifs:
                    self._expr(test)
            if isinstance(node, ast.DictComp):
                self._expr(node.key)
                self._expr(node.value)
            else:
                self._expr(node.elt)
            self.env = saved
            return None
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self._expr(value.value)
            return None
        if isinstance(node, ast.Starred):
            return self._expr(node.value)
        if isinstance(node, ast.Lambda):
            return None
        if isinstance(node, (ast.Dict, ast.Set)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._expr(child)
            return None
        if isinstance(node, (ast.Await, ast.Yield, ast.YieldFrom)):
            if getattr(node, "value", None) is not None:
                self._expr(node.value)  # type: ignore[arg-type]
            return None
        return None

    # -- operators ---------------------------------------------------------

    def _check_mix(
        self, node: ast.AST, left: ValueKind, right: ValueKind, what: str
    ) -> bool:
        """Report SF001/SF004 when two concrete, different kinds meet."""
        if not isinstance(left, str) or not isinstance(right, str):
            return False
        if left == right or d.PLAIN in (left, right):
            return False
        if left in d.ADDRESS_KINDS and right in d.ADDRESS_KINDS:
            self.report(
                "SF001",
                node,
                f"{what} mixes address domains {d.describe(left)} and "
                f"{d.describe(right)}",
            )
            return True
        if left in d.TIME_KINDS and right in d.TIME_KINDS:
            self.report(
                "SF004",
                node,
                f"{what} mixes time units {d.describe(left)} and "
                f"{d.describe(right)}; convert explicitly (e.g. NS_PER_US)",
            )
            return True
        return False

    def _binop(self, node: ast.BinOp, left: ValueKind, right: ValueKind) -> ValueKind:
        op = type(node.op)
        what = "arithmetic" if op in (ast.Add, ast.Sub) else "arithmetic"
        self._check_mix(node, left, right, what)
        lk = left if isinstance(left, str) else None
        rk = right if isinstance(right, str) else None
        if op in (ast.Add, ast.Sub):
            for a, b in ((lk, rk), (rk, lk)):
                if a in d.ADDRESS_KINDS and b in (None, d.PLAIN):
                    return a  # page ± offset stays in the domain
                if a in d.TIME_KINDS and (b == a or b in (None, d.PLAIN)):
                    return a  # durations add within one unit
            if lk is not None and lk == rk and lk in d.ADDRESS_KINDS:
                return d.PLAIN  # address − address = distance
            return None
        if op in (ast.Mult, ast.FloorDiv):
            if lk in d.TIME_KINDS or rk in d.TIME_KINDS:
                return None  # multiplication is how conversions are spelled
            return d.PLAIN if lk or rk else None
        if op in (ast.Mod, ast.Div, ast.Pow, ast.LShift, ast.RShift,
                  ast.BitAnd, ast.BitOr, ast.BitXor):
            return d.PLAIN if lk or rk else None
        return None

    def _compare(self, node: ast.Compare) -> ValueKind:
        left_kind = self._expr(node.left)
        prev = left_kind
        for op, comparator in zip(node.ops, node.comparators):
            if isinstance(op, (ast.In, ast.NotIn)):
                info = self._container_of(comparator)
                kind = prev if isinstance(prev, str) else None
                if (
                    info is not None
                    and kind is not None
                    and info.key_kind is not None
                    and kind != info.key_kind
                    and d.PLAIN not in (kind, info.key_kind)
                ):
                    self.report(
                        "SF005",
                        node,
                        f"membership test probes a container keyed by "
                        f"{d.describe(info.key_kind)} with {d.describe(kind)}",
                    )
                prev = self._expr(comparator) if info is None else None
                continue
            comp_kind = self._expr(comparator)
            if not isinstance(op, (ast.Is, ast.IsNot)):
                self._check_mix(node, prev, comp_kind, "comparison")
            prev = comp_kind
        return None

    # -- containers --------------------------------------------------------

    def _container_of(self, node: ast.expr) -> Optional[d.ContainerInfo]:
        if isinstance(node, ast.Name):
            info = self.local_containers.get(node.id)
            if info is not None:
                return info
            return self.model.containers.lookup("", node.id) or (
                self.model.containers.lookup(self.summary.class_name, node.id)
                if self.summary.class_name
                else None
            )
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return self.model.containers.lookup(
                    self.summary.class_name, node.attr
                )
            # other receivers: name-pattern heuristic only
            key_kind, value_kind = d.container_name_kinds(node.attr)
            if key_kind is None and value_kind is None:
                return None
            return d.ContainerInfo(key_kind, value_kind)
        return None

    def _subscript(self, node: ast.Subscript) -> ValueKind:
        info = self._container_of(node.value)
        if info is None and not isinstance(node.value, (ast.Name, ast.Attribute)):
            self._expr(node.value)
        index_kind = self._expr(node.slice) if isinstance(node.slice, ast.expr) else None
        if info is not None and isinstance(index_kind, str):
            self._check_index(node, info, index_kind, node.value)
        if info is not None:
            return info.value_kind
        return None

    def _check_index(
        self,
        node: ast.AST,
        info: d.ContainerInfo,
        index_kind: str,
        container_node: ast.expr,
    ) -> None:
        key_kind = info.key_kind
        if key_kind is None or index_kind == key_kind:
            return
        if d.PLAIN in (index_kind, key_kind):
            return
        name = (
            container_node.attr
            if isinstance(container_node, ast.Attribute)
            else getattr(container_node, "id", "container")
        )
        self.report(
            "SF005",
            node,
            f"container {name!r} is keyed by {d.describe(key_kind)} but "
            f"indexed with {d.describe(index_kind)}",
        )

    # -- calls -------------------------------------------------------------

    def _call(self, node: ast.Call) -> ValueKind:
        func = node.func
        # sanctioned domain cast: LPN(x), units.LPN(x)
        cast_name = None
        if isinstance(func, ast.Name):
            cast_name = func.id
        elif isinstance(func, ast.Attribute):
            cast_name = func.attr
        if cast_name in DOMAIN_TYPES:
            for arg in node.args:
                self._expr(arg)
            return DOMAIN_TYPES[cast_name]

        # int(x) and friends strip the domain claim
        if isinstance(func, ast.Name) and func.id in {"int", "float", "len", "abs"}:
            for arg in node.args:
                self._expr(arg)
            return d.PLAIN

        if isinstance(func, ast.Name) and func.id in {"min", "max", "sum"}:
            kinds = {self._expr(arg) for arg in node.args}
            kinds.discard(None)
            if len(kinds) == 1:
                only = kinds.pop()
                return only if isinstance(only, str) else None
            return None

        # dict access methods double as container indexing
        if isinstance(func, ast.Attribute) and func.attr in _DICT_KEY_METHODS:
            info = self._container_of(func.value)
            if info is not None and node.args:
                index_kind = self._expr(node.args[0])
                for extra in node.args[1:]:
                    self._expr(extra)
                if isinstance(index_kind, str):
                    self._check_index(node, info, index_kind, func.value)
                return info.value_kind

        summary = self._resolve_summary(func)
        if summary is not None:
            self._check_args_against_summary(node, summary)
            return summary.return_kind

        method = func.attr if isinstance(func, ast.Attribute) else None
        receiver = _receiver_hint(func)
        if method is not None:
            entry = d.find_translation(method, receiver)
            if entry is not None:
                self._check_args_against_registry(node, entry)
                returns = entry.returns
                if isinstance(returns, tuple):
                    return tuple(r if isinstance(r, str) else None for r in returns)
                return returns if isinstance(returns, str) else None
            implied = d.heuristic_return_kind(method)
            if implied is not None:
                for arg in node.args:
                    self._expr(arg)
                for keyword in node.keywords:
                    self._expr(keyword.value)
                return implied

        # unknown callee: still walk arguments for nested violations
        if isinstance(func, ast.Attribute) and not isinstance(
            func.value, (ast.Name, ast.Attribute)
        ):
            self._expr(func.value)
        for arg in node.args:
            self._expr(arg)
        for keyword in node.keywords:
            self._expr(keyword.value)
        return None

    def _resolve_summary(self, func: ast.expr) -> Optional[FunctionSummary]:
        if isinstance(func, ast.Name):
            return self.model.resolve("", func.id)
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name) and value.id == "self":
                if self.summary.class_name:
                    return self.model.resolve(self.summary.class_name, func.attr)
        return None

    def _check_args_against_summary(
        self, node: ast.Call, summary: FunctionSummary
    ) -> None:
        for index, arg in enumerate(node.args):
            actual = self._expr(arg)
            if isinstance(arg, ast.Starred):
                break
            if index < len(summary.param_order):
                param = summary.param_order[index]
                expected = summary.param_kinds.get(param)
                self._check_arg(arg, actual, expected, summary.name, param)
        for keyword in node.keywords:
            actual = self._expr(keyword.value)
            if keyword.arg is not None:
                expected = summary.param_kinds.get(keyword.arg)
                self._check_arg(
                    keyword.value, actual, expected, summary.name, keyword.arg
                )

    def _check_args_against_registry(
        self, node: ast.Call, entry: d.Translation
    ) -> None:
        for index, arg in enumerate(node.args):
            actual = self._expr(arg)
            if isinstance(arg, ast.Starred):
                break
            expected = entry.params[index] if index < len(entry.params) else None
            self._check_arg(arg, actual, expected, entry.method, f"arg {index + 1}")
        for keyword in node.keywords:
            self._expr(keyword.value)

    def _check_arg(
        self,
        node: ast.AST,
        actual: ValueKind,
        expected: Optional[str],
        callee: str,
        param: str,
    ) -> None:
        if expected is None or not isinstance(actual, str):
            return
        if actual == expected or d.PLAIN in (actual, expected):
            return
        if actual in d.TIME_KINDS and expected in d.TIME_KINDS:
            self.report(
                "SF004",
                node,
                f"{callee}() expects {param} in {d.describe(expected)} but "
                f"receives {d.describe(actual)}; convert explicitly",
            )
            return
        if actual in d.ADDRESS_KINDS and expected in d.ADDRESS_KINDS:
            if d.LAYER[actual] != d.LAYER[expected]:
                hint = d.translation_hint(actual, expected)
                self.report(
                    "SF003",
                    node,
                    f"{d.describe(actual)} crosses the "
                    f"{d.LAYER[actual]}→{d.LAYER[expected]} boundary into "
                    f"{callee}() which expects {d.describe(expected)}; {hint}",
                )
            else:
                self.report(
                    "SF002",
                    node,
                    f"{callee}() declares {param} as {d.describe(expected)} "
                    f"but receives {d.describe(actual)}",
                )
            return
        # mixed categories (address vs time vs offset/count)
        self.report(
            "SF002",
            node,
            f"{callee}() declares {param} as {d.describe(expected)} "
            f"but receives {d.describe(actual)}",
        )


def check_module(tree: ast.Module, report: Report) -> None:
    """Run the flow checker over every function in a parsed module."""
    model = build_module(tree)
    for summary in model.functions.values():
        FlowChecker(model, summary, report).run()
