"""Command-line entry point: ``python -m repro.analysis.simflow <paths>``.

Exits 1 when any violation is found, 0 on a clean tree.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.findings import (
    Violation,
    add_baseline_arguments,
    apply_baseline,
    findings_json,
)
from repro.analysis.simflow.engine import analyze_file, iter_python_files
from repro.analysis.simflow.rules import RULES


def _list_rules() -> str:
    lines = ["simflow rule catalogue:", ""]
    for rule in RULES:
        scope = "sim scope only" if rule.sim_scope_only else "all files"
        lines.append(f"  {rule.code}  {rule.title}  [{scope}]")
        lines.append(f"         {rule.explanation}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.simflow",
        description=(
            "Address-space and unit flow analysis for the FlatFlash simulator."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (directories are walked for *.py)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all), e.g. SF001,SF003",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit findings as JSON (shared simlint/simrace/simflow schema)",
    )
    add_baseline_arguments(parser)
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0
    if not args.paths:
        parser.error("no paths given (try: python -m repro.analysis.simflow src/)")

    select = None
    if args.select:
        select = [code.strip().upper() for code in args.select.split(",") if code.strip()]
        known = {rule.code for rule in RULES} | {"SF000"}
        unknown = sorted(set(select) - known)
        if unknown:
            parser.error(
                f"unknown rule code(s): {', '.join(unknown)} "
                f"(see --list-rules)"
            )

    files = iter_python_files(args.paths)
    if not files:
        print("simflow: no Python files found under the given paths", file=sys.stderr)
        return 0

    violations: List[Violation] = []
    for path in files:
        try:
            violations.extend(analyze_file(path, select=select))
        except (OSError, UnicodeDecodeError) as error:
            print(f"simflow: cannot read {path}: {error}", file=sys.stderr)
            return 2

    violations, done = apply_baseline(args, "simflow", violations, len(files))
    if done is not None:
        return done

    if args.json:
        print(findings_json("simflow", violations, files_checked=len(files)))
        return 1 if violations else 0

    for violation in violations:
        print(violation.format())
    if violations:
        print(f"\nsimflow: {len(violations)} violation(s) in {len(files)} file(s)")
        return 1
    print(f"simflow: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped into `head`
        sys.exit(0)
