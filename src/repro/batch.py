"""Batching contracts: declared reorder-safety for hot-path access loops.

ROADMAP item 1 replaces the interpretive per-access hot path with a
trace-compiled, vectorized engine.  That engine batches the iterations
of the per-access loops (PLB/TLB lookups, page-table walks, SSD-Cache
probes, workload emit loops) and is free to reorder work within a
batch — which is only legal when the loop iterations are independent,
or interact solely through commutative folds whose final value does not
depend on iteration order.

This module is the *declaration* side of that guarantee, mirroring
:mod:`repro.effects` (``@kernel``) and :mod:`repro.costs`
(``@counters``):

* :func:`batchable` marks a function whose loops form a batchable
  region: the vectorized engine may split, batch, and reorder their
  iterations.
* :func:`reduction` declares a loop-carried accumulator inside a
  batchable region and the commutative operator it folds through, so
  the analyzer can tell a legal reduction from an ordering bug.

Both are inert at runtime — they only attach metadata — but validate
eagerly so a typo'd contract fails at import time, not in the analyzer.
The ``simbatch`` analyzer (:mod:`repro.analysis.simbatch`) reads the
decorators syntactically, re-derives every loop-carried dependence from
the program itself, and emits ``BATCH.json``: the reorder oracle the
vectorized engine consults next to ``EFFECTS.json`` and ``COSTS.json``.
"""

from __future__ import annotations

from typing import Callable, Tuple

__all__ = ["COMMUTATIVE_OPS", "batchable", "reduction"]

#: Operators under which a loop-carried fold is reorder-safe.  ``+`` also
#: covers ``-=`` accumulation (a sum of negated terms); ``or``/``and``
#: are commutative for the flag folds the simulator uses (operands are
#: effect-free reads), even though Python's operators short-circuit.
COMMUTATIVE_OPS = frozenset({"+", "*", "min", "max", "or", "and", "|", "&", "^"})


def batchable(func: Callable) -> Callable:
    """Declare a function's loops safe to batch and reorder.

    The contract: every loop in the function either carries no
    dependence between iterations, or carries state only through
    accumulators declared with :func:`reduction`.  Calls made inside
    the region must be EFFECTS.json-certified kernels (or effect-free
    helpers) so the whole region stays inside the proven replay
    envelope.  simbatch checks all of this (rules SB001–SB006).
    """
    if not callable(func):
        raise ValueError("@batchable must decorate a function")
    func.__sim_batchable__ = True
    return func


def reduction(var: str, op: str) -> Callable[[Callable], Callable]:
    """Declare that ``var`` folds through commutative ``op`` in a loop.

    Example::

        @batchable
        @reduction(var="misses", op="+")
        def warm_translations(self, vpns): ...

    ``op`` must come from :data:`COMMUTATIVE_OPS`; order-sensitive folds
    (last-writer-wins, ``list.append``) cannot be declared — a region
    that needs one is not batchable and simbatch will say so (SB002).
    """
    if not isinstance(var, str) or not var.isidentifier():
        raise ValueError(f"@reduction var must be an identifier, got {var!r}")
    if op not in COMMUTATIVE_OPS:
        raise ValueError(
            f"@reduction op must be one of {sorted(COMMUTATIVE_OPS)}, got {op!r}"
        )

    def mark(func: Callable) -> Callable:
        if not callable(func):
            raise ValueError("@reduction must decorate a function")
        declared: Tuple[Tuple[str, str], ...] = getattr(
            func, "__sim_reductions__", ()
        )
        func.__sim_reductions__ = declared + ((var, op),)
        return func

    return mark
