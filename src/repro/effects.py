"""Declared effect contracts for the batch-compilation gate.

ROADMAP item 1 wants to hoist the hot PTE/TLB/PLB walk out of the
per-access interpreter loop into trace-compiled, batched replay kernels.
That refactor is only sound for functions whose side effects are limited
to *vectorizable* state updates — scatter stores into model state and
counter aggregation.  Anything coupled to the simulated timeline (clock
reads or advances, DES yields), to stochastic streams (RNG, fault-plane
hooks) or to durability (flash programs) must stay in the event loop.

This module provides the two decorators through which hot-path functions
*declare* their contract; :mod:`repro.analysis.simeffect` checks the
declarations against an interprocedural effect inference and emits the
kernel-eligibility report (``EFFECTS.json``) the refactor will diff
against.

At run time both decorators are no-ops that attach metadata attributes —
they add zero overhead to the access path and are read reflectively by
tests and tooling only.  The static analyzer recognises them
syntactically, so contracts work even on code that is never imported.

Effect vocabulary (the simeffect lattice):

==================  =====================================================
effect              meaning
==================  =====================================================
``READS_CLOCK``     reads the simulated clock (``SimClock.now`` family)
``ADVANCES_CLOCK``  moves simulated time forward
``YIELDS``          yields DES commands (cooperative scheduling point)
``RNG``             draws from a random stream
``MUTATES_STATS``   updates stats primitives (counters, ratios, latits)
``MUTATES_STATE``   writes model state (attributes, containers, globals)
``PERSISTS``        programs/erases flash (durability side effect)
``FAULT_HOOK``      consults the fault-injection plane
==================  =====================================================

``MUTATES_STATE`` and ``MUTATES_STATS`` are the *kernel-safe* subset:
state scatter and counter aggregation vectorize; the rest do not.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple, TypeVar

__all__ = ["EFFECTS", "KERNEL_SAFE_EFFECTS", "kernel", "effects"]

#: Every effect name in the simeffect lattice (PURE is the empty set).
EFFECTS = frozenset(
    {
        "READS_CLOCK",
        "ADVANCES_CLOCK",
        "YIELDS",
        "RNG",
        "MUTATES_STATS",
        "MUTATES_STATE",
        "PERSISTS",
        "FAULT_HOOK",
    }
)

#: Effects a batch-compiled kernel may have without an explicit allowance.
KERNEL_SAFE_EFFECTS = frozenset({"MUTATES_STATE", "MUTATES_STATS"})

F = TypeVar("F", bound=Callable)


def _check_effect_names(names: Tuple[str, ...], decorator: str) -> Tuple[str, ...]:
    unknown = sorted(set(names) - EFFECTS)
    if unknown:
        raise ValueError(
            f"@{decorator}: unknown effect name(s) {', '.join(unknown)} "
            f"(choose from {', '.join(sorted(EFFECTS))})"
        )
    return tuple(names)


def kernel(
    func: Optional[F] = None,
    *,
    allow: Tuple[str, ...] = (),
    may_raise: Tuple[str, ...] = (),
) -> Callable:
    """Declare a function batch-compilable (kernel-eligible).

    The contract: every transitive effect of the function is kernel-safe
    (``MUTATES_STATE``/``MUTATES_STATS``) or listed in ``allow``, every
    exception that can escape is named in ``may_raise`` (its *guard*
    exceptions — the batched kernel must bail out to the interpreter on
    them), and its call graph is fully resolvable.  simeffect verifies
    all three (rules SE001/SE003/SE004/SE005).

    Usable bare or with arguments::

        @kernel
        def lookup(self, tag): ...

        @kernel(may_raise=("KeyError",))
        def walk(self, vpn): ...
    """
    allow = _check_effect_names(tuple(allow), "kernel")
    may_raise = tuple(may_raise)

    def mark(target: F) -> F:
        target.__sim_kernel__ = {"allow": allow, "may_raise": may_raise}
        return target

    if func is not None:
        return mark(func)
    return mark


def effects(*names: str) -> Callable[[F], F]:
    """Declare the full effect envelope of a non-kernel hot-path function.

    simeffect checks that the *inferred* transitive effects stay within
    the declaration (rule SE002): the annotation is a ceiling the
    implementation cannot silently outgrow, which keeps the
    kernel-eligibility report's "disqualified because ..." lines honest.
    """
    declared = _check_effect_names(tuple(names), "effects")

    def mark(target: F) -> F:
        target.__sim_effects__ = declared
        return target

    return mark
