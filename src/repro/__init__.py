"""FlatFlash reproduction: byte-addressable SSDs in a unified memory hierarchy.

Public API::

    from repro import FlatFlash, FlatFlashConfig, small_config
    from repro import TraditionalStack, UnifiedMMap, DRAMOnly
    from repro import create_pmem_region

    system = FlatFlash(small_config())
    region = system.mmap(num_pages=128)
    system.store(region.addr(0), 64, b"x" * 64)
    result = system.load(region.addr(0), 64)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured results of every table and figure.
"""

from repro.baselines import DRAMOnly, TraditionalStack, UnifiedMMap
from repro.config import (
    FlatFlashConfig,
    GeometryConfig,
    LatencyConfig,
    PromotionConfig,
    small_config,
)
from repro.core import (
    AccessResult,
    FlatFlash,
    MappedRegion,
    MemorySystem,
    PersistentRegion,
    PromotionManager,
    create_pmem_region,
)

__version__ = "1.0.0"

__all__ = [
    "FlatFlash",
    "TraditionalStack",
    "UnifiedMMap",
    "DRAMOnly",
    "MemorySystem",
    "MappedRegion",
    "AccessResult",
    "PersistentRegion",
    "create_pmem_region",
    "PromotionManager",
    "FlatFlashConfig",
    "GeometryConfig",
    "LatencyConfig",
    "PromotionConfig",
    "small_config",
    "__version__",
]
