"""The sweep scheduler: dependency-aware, serial or process-parallel.

``run_sweep`` executes a (possibly filtered) set of registered cells.
Cells with no unfinished dependencies run immediately; aggregate cells
(Table 1, the scorecard) wait for their inputs and receive them as a
``deps`` mapping.  With ``jobs > 1`` independent cells fan out across a
``ProcessPoolExecutor``; the **spawn** start method is used deliberately
so workers re-import everything under a fresh hash seed — any
hash-order-dependent output would break the byte-identity the test suite
asserts, instead of hiding behind ``fork``'s inherited seed.

Results are reported in registration order regardless of completion
order, so a parallel sweep is observably identical to a serial one
(modulo wall-clock timings).  The simulator itself is single-threaded
and deterministic per cell; parallelism never crosses a cell boundary.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.sim import domain_tags, sanitizers
from repro.sweep.cache import KeyBuilder, SweepCache
from repro.sweep.model import CellResult, result_hash
from repro.sweep.registry import Cell, Registry, call_cell, default_registry


@dataclass
class CellRun:
    """One executed (or cache-replayed) cell in a sweep."""

    name: str
    result: CellResult
    seconds: float
    cached: bool
    key: Optional[str] = None


@dataclass
class SweepReport:
    """Everything one sweep produced, in registration order."""

    runs: List[CellRun] = field(default_factory=list)
    jobs: int = 1
    total_seconds: float = 0.0

    @property
    def results(self) -> Dict[str, CellResult]:
        return {run.name: run.result for run in self.runs}

    def run_for(self, name: str) -> CellRun:
        for run in self.runs:
            if run.name == name:
                return run
        raise KeyError(f"no cell {name!r} in this sweep")


def _worker_init(sanitizers_on: bool, tags_on: bool) -> None:
    """Propagate the parent's process-wide switches into a spawn worker."""
    sanitizers.set_default_enabled(sanitizers_on)
    domain_tags.set_enabled(tags_on)


def _pool_execute(
    cell: Cell, dep_results: Optional[Mapping[str, CellResult]]
) -> "tuple[CellResult, float]":
    started = time.perf_counter()
    result = call_cell(cell, dep_results)
    return result, time.perf_counter() - started


def run_sweep(
    registry: Optional[Registry] = None,
    jobs: int = 1,
    cache: Optional[SweepCache] = None,
    only: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[CellRun], None]] = None,
) -> SweepReport:
    """Run the selected cells and return their results.

    ``only`` holds glob patterns over cell names; the selection is always
    expanded to its transitive dependency closure so aggregates can run.
    ``progress`` is invoked once per finished cell, in completion order.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if registry is None:
        registry = default_registry()
    registry.validate()
    selected = registry.select(only)
    order = registry.topo_order(selected)
    position = {name: index for index, name in enumerate(registry.names())}

    dependents: Dict[str, List[str]] = {name: [] for name in order}
    waiting: Dict[str, int] = {}
    member = set(order)
    for name in order:
        deps = [dep for dep in registry[name].deps if dep in member]
        waiting[name] = len(deps)
        for dep in deps:
            dependents[dep].append(name)

    builder = KeyBuilder()
    completed: Dict[str, CellResult] = {}
    hashes: Dict[str, str] = {}
    runs: Dict[str, CellRun] = {}
    ready: List[str] = [name for name in order if waiting[name] == 0]

    def _complete(run: CellRun) -> None:
        runs[run.name] = run
        completed[run.name] = run.result
        hashes[run.name] = result_hash(run.result)
        for dependent in dependents[run.name]:
            waiting[dependent] -= 1
            if waiting[dependent] == 0:
                ready.append(dependent)
        if progress is not None:
            progress(run)

    started = time.perf_counter()
    pool: Optional[ProcessPoolExecutor] = None
    if jobs > 1:
        pool = ProcessPoolExecutor(
            max_workers=jobs,
            mp_context=multiprocessing.get_context("spawn"),
            initializer=_worker_init,
            initargs=(sanitizers.default_enabled(), domain_tags.enabled()),
        )
    try:
        in_flight: Dict[object, "tuple[str, Optional[str]]"] = {}
        while len(runs) < len(order):
            while ready:
                ready.sort(key=position.__getitem__)
                name = ready.pop(0)
                cell = registry[name]
                key = builder.key(cell, hashes) if cache is not None else None
                if cache is not None:
                    hit = cache.load(name, key)
                    if hit is not None:
                        _complete(CellRun(name, hit, 0.0, True, key))
                        continue
                dep_results = (
                    {dep: completed[dep] for dep in cell.deps}
                    if cell.wants_deps
                    else None
                )
                if pool is None:
                    result, seconds = _pool_execute(cell, dep_results)
                    if cache is not None:
                        cache.store(name, key, result)
                    _complete(CellRun(name, result, seconds, False, key))
                else:
                    future = pool.submit(_pool_execute, cell, dep_results)
                    in_flight[future] = (name, key)
            if len(runs) < len(order) and in_flight:
                done, _ = wait(list(in_flight), return_when=FIRST_COMPLETED)
                for future in done:
                    name, key = in_flight.pop(future)
                    result, seconds = future.result()
                    if cache is not None:
                        cache.store(name, key, result)
                    _complete(CellRun(name, result, seconds, False, key))
            elif len(runs) < len(order) and not ready and not in_flight:
                # Unreachable for a validated registry; guard against hangs.
                missing = sorted(set(order) - set(runs))
                raise RuntimeError(f"sweep stalled with unrunnable cells: {missing}")
    finally:
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    ordered = sorted(runs.values(), key=lambda run: position[run.name])
    return SweepReport(
        runs=ordered, jobs=jobs, total_seconds=time.perf_counter() - started
    )
