"""Content-addressed result cache for sweep cells.

A cell's cache key is the SHA-256 of four ingredients:

* the cell's **name and params** (``{"benchmark": "TPCB"}`` and friends),
* a **config fingerprint** — a stable serialization of the resolved
  default :class:`~repro.config.FlatFlashConfig` (geometry, the full
  latency table, promotion parameters, sanitizer switches), so editing
  any simulator default invalidates every cell,
* a **source hash** over the transitive closure of ``repro.*`` modules
  the cell's module imports (computed by AST walk, no execution), so a
  code edit invalidates exactly the cells whose import closure contains
  the edited file,
* the **result hashes of its dependencies**, chaining invalidation
  through the DAG the way a build system would.

Entries are single pickle files under ``.sweep-cache/`` written via
temp-file + ``os.replace``.  A corrupt, truncated, or foreign entry is
treated as a miss — the loader never raises and never returns rows whose
recorded key or cell name disagrees with what was asked for.
"""

from __future__ import annotations

import ast
import dataclasses
import hashlib
import importlib.util
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple

from repro.config import FlatFlashConfig
from repro.sweep.model import CellResult
from repro.sweep.registry import Cell

#: Bump to orphan every existing entry after an incompatible layout change.
CACHE_FORMAT = 1

DEFAULT_CACHE_DIR = ".sweep-cache"


def config_fingerprint(config: Optional[FlatFlashConfig] = None) -> str:
    """Stable digest of the resolved simulator configuration defaults."""
    if config is None:
        config = FlatFlashConfig()
    blob = json.dumps(dataclasses.asdict(config), sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


def _module_source(module: str) -> Optional[Path]:
    """The ``.py`` file behind a module name, or None when unresolvable."""
    try:
        spec = importlib.util.find_spec(module)
    except (ImportError, AttributeError, ValueError):
        return None
    if spec is None or not spec.origin or not spec.origin.endswith(".py"):
        return None
    return Path(spec.origin)


def _imported_modules(path: Path, prefix: str) -> List[str]:
    """Module names under ``prefix`` that ``path`` imports (AST walk)."""
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except (OSError, SyntaxError):
        return []
    dotted = prefix + "."
    found: List[str] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == prefix or alias.name.startswith(dotted):
                    found.append(alias.name)
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            if node.module == prefix or node.module.startswith(dotted):
                found.append(node.module)
                # ``from repro.experiments import fig8`` names a submodule,
                # not an attribute; include it when it resolves to one.
                for alias in node.names:
                    candidate = f"{node.module}.{alias.name}"
                    if _module_source(candidate) is not None:
                        found.append(candidate)
    return found


class KeyBuilder:
    """Computes cell cache keys; memoizes per instance (one engine run).

    Memoizing per run — not per process — keeps a long-lived process
    honest: a fresh builder re-reads sources, so edits made between runs
    are always observed.
    """

    def __init__(
        self,
        prefix: str = "repro",
        config: Optional[FlatFlashConfig] = None,
    ) -> None:
        self._prefix = prefix
        self._config_fp = config_fingerprint(config)
        self._closure_memo: Dict[str, Tuple[str, ...]] = {}
        self._source_memo: Dict[str, str] = {}

    def module_closure(self, module: str) -> Tuple[str, ...]:
        """Transitive ``prefix.*`` import closure of ``module`` (inclusive)."""
        cached = self._closure_memo.get(module)
        if cached is not None:
            return cached
        seen: Dict[str, None] = {}
        stack = [module]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen[name] = None
            path = _module_source(name)
            if path is None:
                continue
            stack.extend(_imported_modules(path, self._prefix))
        closure = tuple(sorted(seen))
        self._closure_memo[module] = closure
        return closure

    def source_hash(self, module: str) -> str:
        """Digest over (name, content hash) of the module's import closure."""
        cached = self._source_memo.get(module)
        if cached is not None:
            return cached
        entries = []
        for name in self.module_closure(module):
            path = _module_source(name)
            if path is None:
                continue
            try:
                content = path.read_bytes()
            except OSError:
                continue
            entries.append((name, hashlib.sha256(content).hexdigest()))
        digest = hashlib.sha256(json.dumps(entries, sort_keys=True).encode()).hexdigest()
        self._source_memo[module] = digest
        return digest

    def key(self, cell: Cell, dep_hashes: Mapping[str, str]) -> str:
        """The cell's content address given its deps' result hashes."""
        payload = json.dumps(
            {
                "format": CACHE_FORMAT,
                "cell": cell.name,
                "params": {name: repr(value) for name, value in cell.params.items()},
                "config": self._config_fp,
                "sources": self.source_hash(cell.fn.__module__),
                "deps": {dep: dep_hashes[dep] for dep in sorted(cell.deps)},
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()


class SweepCache:
    """On-disk store of cell results, one pickle file per cache key."""

    def __init__(self, root: os.PathLike = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)

    def _entry_path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def load(self, cell_name: str, key: str) -> Optional[CellResult]:
        """The stored result, or None on miss/corruption/mismatch."""
        path = self._entry_path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        try:
            payload = pickle.loads(blob)
        except Exception:  # corrupt or truncated entry: recompute
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("format") != CACHE_FORMAT:
            return None
        if payload.get("key") != key or payload.get("cell") != cell_name:
            return None  # stale or foreign entry must never be served
        result = payload.get("result")
        if not isinstance(result, CellResult):
            return None
        return result

    def store(self, cell_name: str, key: str, result: CellResult) -> None:
        """Atomically persist one entry (temp file + ``os.replace``)."""
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": CACHE_FORMAT,
            "cell": cell_name,
            "key": key,
            "result": result,
        }
        fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=4)
            os.replace(tmp, self._entry_path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def keys(self) -> List[str]:
        """Keys of every entry currently on disk (test/diagnostic aid)."""
        if not self.root.is_dir():
            return []
        return sorted(path.stem for path in self.root.glob("*.pkl"))


def clear(root: os.PathLike = DEFAULT_CACHE_DIR) -> int:
    """Delete every cache entry under ``root``; returns the count removed."""
    cache = SweepCache(root)
    removed = 0
    for key in cache.keys():
        try:
            cache._entry_path(key).unlink()
            removed += 1
        except OSError:
            pass
    return removed
