"""Data model of the sweep engine.

A *cell* is one independently runnable unit of the paper reproduction —
a figure, a table, one ablation, one scorecard claim measurement.  Its
execution produces a :class:`CellResult`: the markdown fragments the cell
contributes to EXPERIMENTS.md (possibly none, for pure data-producer
cells), the structured result rows, and a small dict of headline metrics
that feed ``BENCH_sweep.json``.

Everything here must be picklable: results cross a process boundary under
``--jobs N`` and are stored verbatim in the content-addressed cache.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class CellResult:
    """What one cell execution produced.

    ``sections`` are the markdown fragments this cell contributes to the
    experiment document, in order, exactly as ``run_all`` historically
    appended them (the document assembler joins all fragments with a
    single newline).  Data-only cells (scorecard claims, Table 1 pairs)
    leave it empty.
    """

    sections: List[str] = field(default_factory=list)
    rows: List[Dict[str, object]] = field(default_factory=list)
    metrics: Dict[str, object] = field(default_factory=dict)


def markdown_block(text: str) -> str:
    """Fence a rendered table for EXPERIMENTS.md (``run_all``'s _block)."""
    return "```\n" + text + "\n```\n"


def result_hash(result: CellResult) -> str:
    """Content hash of a cell result, for dependency-chained cache keys.

    Uses pickle rather than JSON so numpy scalars and other simulator
    value types hash without lossy conversion; for equal values built in
    the same structural order the byte stream is deterministic.
    """
    payload = pickle.dumps(
        (result.sections, result.rows, result.metrics), protocol=4
    )
    return hashlib.sha256(payload).hexdigest()


def json_ready(value: object) -> object:
    """Recursively convert a metrics value into plain JSON types.

    Numpy scalars expose ``item()``; tuples become lists; dict keys are
    stringified.  Anything else unserializable falls back to ``repr``.
    """
    if isinstance(value, dict):
        return {str(key): json_ready(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_ready(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return json_ready(item())
        except (TypeError, ValueError):
            pass
    return repr(value)
