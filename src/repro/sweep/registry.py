"""Central cell registry: every experiment as a declarative, runnable unit.

``Cell(name, fn, params)`` replaces the ad-hoc ``run()`` calls that
``run_all`` used to make: the function is a *top-level* callable (so it
pickles by reference into pool workers), ``params`` are the keyword
arguments the cache keys on, and ``deps`` name other cells whose results
this cell consumes (the scheduler passes them as a ``deps`` mapping when
the function declares that parameter).

:func:`default_registry` builds the full paper sweep: every §5 figure and
table, the ablations, the extensions, Table 1's ten benchmark pairs, and
the scorecard's five claim measurements — the latter two families feeding
aggregate cells through real dependency edges, so Table 1 and the
scorecard wait on their inputs while everything else fans out.
"""

from __future__ import annotations

import fnmatch
import importlib
import inspect
import pkgutil
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.sweep.model import CellResult


@dataclass(frozen=True)
class Cell:
    """One declaratively registered experiment unit."""

    name: str
    fn: object  # top-level callable returning CellResult; picklable by reference
    params: Mapping[str, object] = field(default_factory=dict)
    deps: Tuple[str, ...] = ()
    #: ``module:function`` names of the public ``run*`` entry points this
    #: cell exercises — consumed by the registry completeness gate.
    covers: Tuple[str, ...] = ()

    @property
    def wants_deps(self) -> bool:
        try:
            return "deps" in inspect.signature(self.fn).parameters
        except (TypeError, ValueError):  # pragma: no cover - builtins only
            return False


def call_cell(cell: Cell, dep_results: Optional[Mapping[str, CellResult]] = None) -> CellResult:
    """Execute a cell with its registered params (and deps, if declared)."""
    kwargs = dict(cell.params)
    if cell.wants_deps:
        kwargs["deps"] = dict(dep_results or {})
    result = cell.fn(**kwargs)
    if not isinstance(result, CellResult):
        raise TypeError(
            f"cell {cell.name!r} returned {type(result).__name__}, expected CellResult"
        )
    return result


class Registry:
    """An ordered collection of cells with a validated dependency DAG."""

    def __init__(self, cells: Iterable[Cell] = ()) -> None:
        self._cells: Dict[str, Cell] = {}
        for cell in cells:
            self.register(cell)

    def register(self, cell: Cell) -> Cell:
        if cell.name in self._cells:
            raise ValueError(f"duplicate cell name {cell.name!r}")
        if not callable(cell.fn):
            raise TypeError(f"cell {cell.name!r} fn is not callable")
        self._cells[cell.name] = cell
        return cell

    def names(self) -> List[str]:
        return list(self._cells)

    def __iter__(self) -> Iterator[Cell]:
        return iter(self._cells.values())

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __getitem__(self, name: str) -> Cell:
        return self._cells[name]

    def __len__(self) -> int:
        return len(self._cells)

    def validate(self) -> None:
        """Check every dep exists and the dependency graph is acyclic."""
        for cell in self:
            for dep in cell.deps:
                if dep not in self._cells:
                    raise ValueError(f"cell {cell.name!r} depends on unknown cell {dep!r}")
        self.topo_order()

    def topo_order(self, names: Optional[Iterable[str]] = None) -> List[str]:
        """A topological order, stable by registration order.

        Raises ``ValueError`` on a dependency cycle.  ``names`` restricts
        the ordering to a subset (deps outside the subset are ignored —
        callers pass dependency-closed subsets from :meth:`closure`).
        """
        subset = list(self._cells if names is None else names)
        return self._stable_topo(subset, set(subset))

    def _stable_topo(self, subset: List[str], member: set) -> List[str]:
        emitted: List[str] = []
        done = set()
        pending = list(subset)
        while pending:
            progressed = False
            rest: List[str] = []
            for name in pending:
                deps = [dep for dep in self._cells[name].deps if dep in member]
                if all(dep in done for dep in deps):
                    emitted.append(name)
                    done.add(name)
                    progressed = True
                else:
                    rest.append(name)
            if not progressed:
                raise ValueError(f"dependency cycle among cells: {sorted(rest)}")
            pending = rest
        return emitted

    def closure(self, names: Iterable[str]) -> List[str]:
        """``names`` plus their transitive deps, in registration order."""
        wanted = set()
        stack = list(names)
        while stack:
            name = stack.pop()
            if name in wanted:
                continue
            if name not in self._cells:
                raise KeyError(f"unknown cell {name!r}")
            wanted.add(name)
            stack.extend(self._cells[name].deps)
        return [name for name in self._cells if name in wanted]

    def select(self, patterns: Optional[Iterable[str]]) -> List[str]:
        """Cells matching any glob pattern, expanded to their dep closure."""
        if not patterns:
            return self.names()
        matched = [
            name
            for name in self._cells
            if any(fnmatch.fnmatchcase(name, pattern) for pattern in patterns)
        ]
        if not matched:
            raise ValueError(f"no cells match filter(s) {list(patterns)!r}")
        return self.closure(matched)


#: Public ``run*`` functions in ``repro.experiments`` that are deliberately
#: not sweep cells.  ``run_race_check`` is the dynamic simrace harness — a
#: pass/fail analysis gate, not a result-producing experiment.
EXEMPT_RUNNERS = frozenset({"repro.experiments.race_check:run_race_check"})


def experiment_runners() -> List[str]:
    """Every public ``run*`` function defined in ``repro.experiments``.

    The completeness gate asserts each is covered by a registered cell or
    listed in :data:`EXEMPT_RUNNERS`, so a new figure module cannot
    silently dodge the sweep.
    """
    import repro.experiments as package

    runners: List[str] = []
    for info in pkgutil.iter_modules(package.__path__):
        module = importlib.import_module(f"repro.experiments.{info.name}")
        for attr, value in sorted(vars(module).items()):
            if (
                attr.startswith("run")
                and callable(value)
                and getattr(value, "__module__", None) == module.__name__
            ):
                runners.append(f"{module.__name__}:{attr}")
    return sorted(runners)


def covered_runners(registry: Registry) -> set:
    covered = set()
    for cell in registry:
        covered.update(cell.covers)
    return covered


@lru_cache(maxsize=None)
def default_registry() -> Registry:
    """The full paper sweep, one registry build per process."""
    from repro.experiments import (
        ablations,
        breakdown,
        device_tech,
        fault_campaign,
        fig8,
        fig9,
        fig10,
        fig11_12,
        fig13,
        fig14,
        fleet_scaling,
        interference,
        scorecard,
        table1,
        table2,
        table3,
    )

    registry = Registry()

    # Scorecard: five claim measurements fan out, the verdict table waits.
    claim_cells = []
    for claim in scorecard.CLAIMS:
        name = f"scorecard:{claim.key}"
        claim_cells.append(name)
        registry.register(
            Cell(name, scorecard.claim_cell, params={"claim": claim.key})
        )
    registry.register(
        Cell(
            "scorecard",
            scorecard.cell,
            deps=tuple(claim_cells),
            covers=("repro.experiments.scorecard:run",),
        )
    )

    registry.register(
        Cell("table2", table2.cell, covers=("repro.experiments.table2:run",))
    )
    registry.register(Cell("fig8", fig8.cell, covers=("repro.experiments.fig8:run",)))
    registry.register(
        Cell("fig9a", fig9.cell_a, covers=("repro.experiments.fig9:run_fig9a",))
    )
    registry.register(
        Cell("fig9b", fig9.cell_b, covers=("repro.experiments.fig9:run_fig9b",))
    )
    registry.register(Cell("fig10", fig10.cell, covers=("repro.experiments.fig10:run",)))
    registry.register(
        Cell(
            "fig11_12",
            fig11_12.cell,
            covers=(
                "repro.experiments.fig11_12:run",
                "repro.experiments.fig11_12:run_cdf",
            ),
        )
    )
    registry.register(Cell("fig13", fig13.cell, covers=("repro.experiments.fig13:run",)))
    registry.register(
        Cell(
            "fig14",
            fig14.cell,
            covers=(
                "repro.experiments.fig14:run_threads",
                "repro.experiments.fig14:run_device_latency_sweep",
            ),
        )
    )

    # Table 1: ten benchmark pairs fan out, the summary table waits.
    pair_cells = []
    for benchmark in table1.BENCHMARKS:
        name = f"table1:{benchmark.lower()}"
        pair_cells.append(name)
        registry.register(
            Cell(name, table1.pair_cell, params={"benchmark": benchmark})
        )
    registry.register(
        Cell(
            "table1",
            table1.cell,
            deps=tuple(pair_cells),
            covers=("repro.experiments.table1:run",),
        )
    )

    registry.register(
        Cell("table3", table3.cell, covers=("repro.experiments.table3:run",))
    )

    for suffix, fn, runner in (
        ("promotion-policy", ablations.cell_promotion_policy, "run_promotion_policy"),
        ("plb", ablations.cell_plb, "run_plb"),
        ("cache-policy", ablations.cell_cache_policy, "run_cache_policy"),
        ("cacheable-mmio", ablations.cell_cacheable_mmio, "run_cacheable_mmio"),
        ("prefetch", ablations.cell_prefetch, "run_prefetch"),
        (
            "sequential-fairness",
            ablations.cell_sequential_fairness,
            "run_sequential_fairness",
        ),
        ("logging-scheme", ablations.cell_logging_scheme, "run_logging_scheme"),
    ):
        registry.register(
            Cell(
                f"ablations:{suffix}",
                fn,
                covers=(f"repro.experiments.ablations:{runner}",),
            )
        )

    registry.register(
        Cell(
            "device-tech", device_tech.cell, covers=("repro.experiments.device_tech:run",)
        )
    )
    registry.register(
        Cell(
            "interference",
            interference.cell,
            covers=("repro.experiments.interference:run",),
        )
    )
    registry.register(
        Cell("breakdown", breakdown.cell, covers=("repro.experiments.breakdown:run",))
    )

    # Fleet: device-count scaling and the failover-under-load scorecard.
    # Data-only cells (no markdown), like the fault campaign below.
    registry.register(
        Cell(
            "fleet:scaling",
            fleet_scaling.cell_scaling,
            covers=("repro.experiments.fleet_scaling:run_fleet_scaling",),
        )
    )
    registry.register(
        Cell(
            "fleet:failover",
            fleet_scaling.cell_failover,
            covers=("repro.experiments.fleet_scaling:run_fleet_failover",),
        )
    )

    # simfault campaign: one data-only cell per fault scenario (smoke
    # scale).  They contribute no markdown, only metrics, so the committed
    # EXPERIMENTS.md is byte-identical with or without them.
    for scenario in fault_campaign.SCENARIO_NAMES:
        registry.register(
            Cell(
                f"faults:{scenario}",
                fault_campaign.scenario_cell,
                params={"scenario": scenario},
                covers=("repro.experiments.fault_campaign:run_fault_campaign",),
            )
        )

    registry.validate()
    return registry
