"""BENCH_sweep.json: the machine-readable perf trajectory of the sweep.

One JSON artifact per sweep run, in a stable schema:

* ``cells`` — per-cell wall-clock seconds, cache status, dependency
  list, and the cell's own headline metrics,
* ``headline`` — the numbers the paper's abstract leads with (GUPS
  speedup, YCSB p99 reduction, scorecard verdicts), pulled from the
  producing cells when they ran (``null`` under a filter that skipped
  them).

CI uploads the artifact on every push, seeding a commit-over-commit
record of both simulator results and harness runtime.
"""

from __future__ import annotations

import json
import os
from datetime import datetime, timezone
from typing import Dict, Optional

from repro.sweep.engine import SweepReport
from repro.sweep.model import json_ready

SCHEMA = "flatflash-sweep-bench/1"


def bench_payload(report: SweepReport, registry=None) -> Dict[str, object]:
    """The artifact as a plain dict (stable key order, JSON-ready values)."""
    if registry is None:
        from repro.sweep.registry import default_registry

        registry = default_registry()
    results = report.results

    def metric(cell: str, key: str) -> Optional[object]:
        if cell not in results:
            return None
        return json_ready(results[cell].metrics.get(key))

    cells = [
        {
            "name": run.name,
            "wall_s": round(run.seconds, 4),
            "cached": run.cached,
            "deps": list(registry[run.name].deps) if run.name in registry else [],
            "rows": len(run.result.rows),
            "metrics": json_ready(run.result.metrics),
        }
        for run in report.runs
    ]
    return {
        "schema": SCHEMA,
        "generated_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "jobs": report.jobs,
        "total_wall_s": round(report.total_seconds, 4),
        "cells": cells,
        "headline": {
            "gups_speedup_vs_unifiedmmap": metric("fig9a", "speedup_vs_unifiedmmap"),
            "gups_speedup_vs_traditional": metric("fig9a", "speedup_vs_traditional"),
            "ycsb_p99_reduction_vs_unifiedmmap": metric(
                "fig11_12", "p99_reduction_vs_unifiedmmap"
            ),
            "ycsb_p99_reduction_vs_traditional": metric(
                "fig11_12", "p99_reduction_vs_traditional"
            ),
            "scorecard_verdicts": metric("scorecard", "verdicts"),
            "fleet_failover_scorecard": metric("fleet:failover", "scorecard"),
        },
    }


def write_bench(report: SweepReport, path: "os.PathLike[str]", registry=None) -> None:
    """Write the artifact (atomically, like the document)."""
    from repro.sweep.document import write_document

    payload = bench_payload(report, registry=registry)
    write_document(path, json.dumps(payload, indent=2, sort_keys=False) + "\n")
