"""Parallel, content-addressed experiment sweep engine.

Public surface:

* :class:`~repro.sweep.model.CellResult` — what a cell produces,
* :class:`~repro.sweep.registry.Cell` / :class:`~repro.sweep.registry.Registry`
  and :func:`~repro.sweep.registry.default_registry` — the declarative
  cell catalogue,
* :func:`~repro.sweep.engine.run_sweep` — the scheduler,
* :class:`~repro.sweep.cache.SweepCache` — the result cache,
* :func:`~repro.sweep.document.assemble` — EXPERIMENTS.md assembly.

Only :mod:`repro.sweep.model` is imported eagerly: experiment modules
import ``CellResult`` from there while the registry imports the
experiment modules, and keeping this ``__init__`` light breaks the cycle.
"""

from repro.sweep.model import CellResult, markdown_block, result_hash

_LAZY = {
    "Cell": ("repro.sweep.registry", "Cell"),
    "Registry": ("repro.sweep.registry", "Registry"),
    "default_registry": ("repro.sweep.registry", "default_registry"),
    "run_sweep": ("repro.sweep.engine", "run_sweep"),
    "SweepReport": ("repro.sweep.engine", "SweepReport"),
    "SweepCache": ("repro.sweep.cache", "SweepCache"),
    "KeyBuilder": ("repro.sweep.cache", "KeyBuilder"),
    "assemble": ("repro.sweep.document", "assemble"),
    "write_document": ("repro.sweep.document", "write_document"),
    "document_cells": ("repro.sweep.document", "document_cells"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


__all__ = ["CellResult", "markdown_block", "result_hash", *_LAZY]
