"""``python -m repro sweep`` — the parallel, cached experiment runner.

Flags:

* ``--jobs N`` — worker processes (default: the machine's CPU count),
* ``--filter GLOB`` — run only matching cells (repeatable; transitive
  dependencies are pulled in automatically),
* ``--no-cache`` — bypass the content-addressed cache entirely,
* ``--cache-dir DIR`` — cache location (default ``.sweep-cache``),
* ``--json PATH`` — also emit the BENCH artifact (per-cell runtimes and
  headline metrics).

A full (unfiltered) sweep rewrites EXPERIMENTS.md atomically with output
byte-identical to the serial ``run_all`` path; a filtered sweep skips
the document and just reports the cells it ran.
"""

from __future__ import annotations

import argparse
import os
from typing import Optional

from repro.sweep.cache import DEFAULT_CACHE_DIR, SweepCache


def positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {text!r}")
    return value


def configure_parser(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "output",
        nargs="?",
        default="EXPERIMENTS.md",
        help="document path for a full sweep (default EXPERIMENTS.md)",
    )
    parser.add_argument(
        "--jobs",
        type=positive_int,
        default=None,
        help="worker processes (default: CPU count)",
    )
    parser.add_argument(
        "--filter",
        action="append",
        dest="filters",
        metavar="GLOB",
        help="run only cells matching this glob (repeatable); deps are included",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every cell, neither reading nor writing the cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"content-addressed result cache location (default {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--json",
        dest="json_path",
        metavar="PATH",
        help="also write the BENCH artifact (per-cell runtimes + headline metrics)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress lines"
    )


def run(args: argparse.Namespace) -> int:
    from repro.sweep.bench import write_bench
    from repro.sweep.document import assemble, document_cells, write_document
    from repro.sweep.engine import run_sweep
    from repro.sweep.registry import default_registry

    registry = default_registry()
    jobs: int = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
    cache: Optional[SweepCache] = None if args.no_cache else SweepCache(args.cache_dir)

    def progress(cell_run) -> None:
        if not args.quiet:
            suffix = "  (cached)" if cell_run.cached else ""
            print(f"  {cell_run.name:<30} {cell_run.seconds:8.2f}s{suffix}", flush=True)

    report = run_sweep(
        registry=registry,
        jobs=jobs,
        cache=cache,
        only=args.filters,
        progress=progress,
    )

    hits = sum(1 for cell_run in report.runs if cell_run.cached)
    print(
        f"sweep: {len(report.runs)} cells in {report.total_seconds:.2f}s "
        f"({jobs} job(s), {hits} cache hit(s))"
    )

    produced = {cell_run.name for cell_run in report.runs}
    if set(document_cells()) <= produced:
        content = assemble(report.results)
        write_document(args.output, content)
        print(f"wrote {args.output} ({len(content)} bytes)")
    else:
        print("filtered sweep: document cells incomplete, EXPERIMENTS.md not written")

    if args.json_path:
        write_bench(report, args.json_path, registry=registry)
        print(f"wrote {args.json_path}")
    return 0
