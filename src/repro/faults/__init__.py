"""simfault: deterministic cross-layer fault injection (repro.faults).

Three fault planes, all replayable byte-for-byte from a
:class:`~repro.faults.plan.FaultPlan`:

* **NAND** — per-operation bit-error / program-fail / erase-fail draws and
  wear-triggered bad-block retirement inside the flash array, absorbed by
  ECC retries and bad-block handling in the FTL/GC;
* **PCIe** — MMIO timeout/corruption faults on the link, absorbed by the
  host bridge's bounded retry + exponential backoff, with graceful
  degradation to the block/DMA path for pages that keep failing;
* **power loss** — a deadline armed on the simulation clock that halts the
  run mid-workload; recovery restarts a fresh system from the surviving
  flash image and checks application-level crash invariants.

This package root imports only the leaf plan module (plus the clock's
power-loss exception) so ``repro.config`` can depend on it without
cycles; the power/recovery/campaign machinery is imported explicitly by
its users.
"""

from repro.faults.plan import (
    FAULT_SITES,
    FaultConfig,
    FaultEvent,
    FaultInjector,
    FaultPlan,
)
from repro.sim.clock import PowerLossTriggered

__all__ = [
    "FAULT_SITES",
    "FaultConfig",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "PowerLossTriggered",
]
