"""Seeded, deterministic fault plans and the cross-layer fault injector.

The simulator's fault model is *replayable by construction*: every fault
decision is a draw from a per-site ``numpy`` generator seeded with
``(plan seed, crc32(site name))``, so

* the same :class:`FaultConfig` always produces the same fault schedule,
  byte for byte, regardless of Python hash seeds or host;
* sites are independent streams — adding NAND traffic never perturbs
  which PCIe transactions fail, and vice versa;
* a campaign can pin exact fault *instants* via ``forced`` (site → the
  zero-based operation indices that must fail), which is how unit tests
  place a program failure on precisely the third program operation.

This module is deliberately leaf-level (stdlib + numpy only): it is
imported by ``repro.config`` and must not import anything above it.

Fault sites
-----------

======================================  =======================================
site                                    drawn on
======================================  =======================================
``nand.read``                           every flash page read (ECC bit error)
``nand.program``                        every flash page program (program fail)
``nand.erase``                          every block erase (erase fail → bad block)
``pcie.mmio_read.timeout`` / ``.corrupt``    every non-posted MMIO read
``pcie.mmio_write.timeout`` / ``.corrupt``   every posted MMIO write
``pcie.mmio_atomic.timeout`` / ``.corrupt``  every PCIe atomic
``pcie.device_loss``                    every MMIO transaction (link dies)
======================================  =======================================

Power loss is *not* a probabilistic site: it is an armed deadline on the
simulated clock (see :mod:`repro.faults.power`), because "cut power at
instant T" must be exact to make crash-recovery sweeps meaningful.

Multi-device fleets
-------------------

A fleet (:mod:`repro.fleet`) instantiates one injector per device with a
``namespace`` of ``"dev<k>"``; streams are then seeded per *(device,
site)* — ``crc32("dev<k>/<site>")`` — so adding a device to a fleet never
perturbs another device's fault schedule.  An empty namespace (the
single-device default) reproduces the historical ``crc32(site)`` streams
byte for byte.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

import numpy as np

#: Every site the injector draws for, in canonical report order.
FAULT_SITES: Tuple[str, ...] = (
    "nand.read",
    "nand.program",
    "nand.erase",
    "pcie.mmio_read.timeout",
    "pcie.mmio_read.corrupt",
    "pcie.mmio_write.timeout",
    "pcie.mmio_write.corrupt",
    "pcie.mmio_atomic.timeout",
    "pcie.mmio_atomic.corrupt",
    "pcie.device_loss",
)


@dataclass
class FaultConfig:
    """Fault-injection knobs, carried by ``FlatFlashConfig.faults``.

    All rates default to 0.0 and ``forced`` to empty, which makes the
    injector inert: the device skips constructing one entirely, so a
    zero-fault run is bit-identical to a build without this subsystem.
    """

    #: Base seed of every per-site fault stream.
    seed: int = 0

    # NAND plane.
    nand_read_error_rate: float = 0.0
    nand_program_fail_rate: float = 0.0
    nand_erase_fail_rate: float = 0.0
    #: Erase count at which a block is retired as bad (0 = no wear limit).
    nand_wear_limit: int = 0
    #: ECC read retries before the FTL falls back to soft-decode recovery.
    ecc_max_retries: int = 3

    # PCIe plane.
    pcie_timeout_rate: float = 0.0
    pcie_corrupt_rate: float = 0.0
    #: Whole-device loss: per-MMIO-transaction probability that the PCIe
    #: link goes down permanently (fail-stop).  Only meaningful behind a
    #: fleet (:mod:`repro.fleet`), where the loss triggers failover; on a
    #: single device it surfaces as an unrecoverable DeviceLostError.
    device_loss_rate: float = 0.0
    #: Bounded MMIO retries in the host bridge before giving up on a access.
    mmio_max_retries: int = 3
    #: Exponential backoff: attempt ``k`` waits base * multiplier**k ns.
    mmio_backoff_base_ns: int = 2_000
    mmio_backoff_multiplier: int = 4
    #: Consecutive MMIO failures on one logical page before it is degraded
    #: to the block/DMA path permanently (promotion suppressed).
    mmio_degraded_threshold: int = 8

    #: Pinned fault schedule: site name -> zero-based op indices that fail
    #: unconditionally (tests and targeted campaigns).
    forced: Dict[str, Tuple[int, ...]] = field(default_factory=dict)

    def rate_of(self, site: str) -> float:
        if site.startswith("nand."):
            return {
                "nand.read": self.nand_read_error_rate,
                "nand.program": self.nand_program_fail_rate,
                "nand.erase": self.nand_erase_fail_rate,
            }[site]
        if site == "pcie.device_loss":
            return self.device_loss_rate
        if site.endswith(".timeout"):
            return self.pcie_timeout_rate
        if site.endswith(".corrupt"):
            return self.pcie_corrupt_rate
        raise KeyError(f"unknown fault site {site!r}")

    @property
    def active(self) -> bool:
        """Whether any fault can ever fire under this configuration."""
        if self.nand_wear_limit > 0 or self.forced:
            return True
        return any(self.rate_of(site) > 0.0 for site in FAULT_SITES)

    def plan(self) -> "FaultPlan":
        """The normalized, replayable schedule this config denotes."""
        rates = {site: self.rate_of(site) for site in FAULT_SITES}
        forced = tuple(
            (site, tuple(sorted(set(int(i) for i in indices))))
            for site, indices in sorted(self.forced.items())
        )
        return FaultPlan(seed=self.seed, rates=rates, forced=forced)

    def validate(self) -> None:
        for name in (
            "nand_read_error_rate",
            "nand_program_fail_rate",
            "nand_erase_fail_rate",
            "pcie_timeout_rate",
            "pcie_corrupt_rate",
            "device_loss_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"fault rate {name} must be in [0, 1], got {rate}")
        for name in ("nand_wear_limit", "ecc_max_retries", "mmio_max_retries",
                     "mmio_backoff_base_ns", "mmio_degraded_threshold"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"faults.{name} must be >= 0, got {value}")
        if self.mmio_backoff_multiplier < 1:
            raise ValueError(
                f"faults.mmio_backoff_multiplier must be >= 1, "
                f"got {self.mmio_backoff_multiplier}"
            )
        for site, indices in self.forced.items():
            if site not in FAULT_SITES:
                raise ValueError(
                    f"forced fault site {site!r} unknown "
                    f"(known sites: {', '.join(FAULT_SITES)})"
                )
            for index in indices:
                if index < 0:
                    raise ValueError(
                        f"forced fault index must be >= 0, got {index} at {site!r}"
                    )


@dataclass(frozen=True)
class FaultPlan:
    """The normalized seeded schedule a campaign is replayed from.

    Two runs with equal plans (and equal workloads) observe the same
    faults at the same operation indices — the byte-for-byte replay
    guarantee campaign reports rely on.
    """

    seed: int
    rates: Mapping[str, float]
    forced: Tuple[Tuple[str, Tuple[int, ...]], ...]

    def to_dict(self) -> dict:
        """JSON-shaped form embedded in campaign reports."""
        return {
            "seed": self.seed,
            "rates": {site: self.rates[site] for site in FAULT_SITES},
            "forced": {site: list(indices) for site, indices in self.forced},
        }


@dataclass(frozen=True)
class FaultEvent:
    """One realized fault: which site fired on which operation index."""

    site: str
    index: int


def _site_stream_seed(seed: int, site: str, namespace: str = "") -> Tuple[int, int]:
    # crc32 gives each site a stable, collision-free-enough sub-seed so the
    # (seed, site) pair fully determines the stream — independent of every
    # other site's traffic volume.  A non-empty namespace (one per fleet
    # device) extends the key to (seed, namespace, site) so per-device
    # schedules are independent too; the empty namespace preserves the
    # historical single-device streams exactly.
    key = f"{namespace}/{site}" if namespace else site
    return (seed & 0xFFFFFFFF, zlib.crc32(key.encode("ascii")))


class FaultInjector:
    """Draws fault decisions from per-site seeded streams and logs them."""

    def __init__(self, config: FaultConfig, namespace: str = "") -> None:
        config.validate()
        self.config = config
        self.namespace = namespace
        self.plan = config.plan()
        self._counts: Dict[str, int] = {site: 0 for site in FAULT_SITES}
        self._fired: Dict[str, int] = {site: 0 for site in FAULT_SITES}
        self._forced = {
            site: frozenset(indices) for site, indices in self.plan.forced
        }
        self._rngs: Dict[str, np.random.Generator] = {}
        #: Realized schedule, in firing order — equal across equal replays.
        self.events: List[FaultEvent] = []

    def _rng(self, site: str) -> np.random.Generator:
        rng = self._rngs.get(site)
        if rng is None:
            rng = np.random.default_rng(
                _site_stream_seed(self.config.seed, site, self.namespace)
            )
            self._rngs[site] = rng
        return rng

    def fires(self, site: str) -> bool:
        """Advance the site's operation counter; True if this op faults."""
        index = self._counts[site]
        self._counts[site] = index + 1
        if index in self._forced.get(site, frozenset()):
            fired = True
        else:
            rate = self.config.rate_of(site)
            # Draw only when the site can fire: an all-zero-rate injector
            # never touches its RNGs, so enabling one fault plane does not
            # change any other plane's schedule.
            fired = rate > 0.0 and float(self._rng(site).random()) < rate
        if fired:
            self._fired[site] += 1
            self.events.append(FaultEvent(site, index))
        return fired

    def operations(self, site: str) -> int:
        """How many operations have been drawn for at a site."""
        return self._counts[site]

    def fired(self, site: str) -> int:
        """How many faults fired at a site."""
        return self._fired[site]

    def summary(self) -> Dict[str, Dict[str, int]]:
        """Per-site operation/fired counts, in canonical site order."""
        return {
            site: {"operations": self._counts[site], "fired": self._fired[site]}
            for site in FAULT_SITES
        }
