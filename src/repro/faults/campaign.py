"""Replayable fault campaigns: the ``python -m repro faults`` matrix.

A *campaign* runs a fixed matrix of scenarios — one per fault plane plus
a zero-fault self-check — and emits a findings-style JSON report.  Every
scenario builds its systems from an explicit :class:`FaultConfig`, so the
report embeds the exact :class:`FaultPlan` it was produced from and two
runs with the same seed are byte-identical (the report carries no wall
clock and is serialized with sorted keys).

Scenarios
---------

``zero_faults``
    Self-check: a workload run under an all-zero fault config must
    produce exactly the same stats snapshot and elapsed time as the same
    workload without the fault subsystem (the injector must be inert).
``nand_soak``
    Write/read soak under NAND bit errors, program failures, erase
    failures and a wear limit; every read-back must still be correct
    (ECC retries and FTL re-programs absorb the faults).
``pcie_storm``
    MMIO traffic under link timeouts/corruption; the bridge's bounded
    retry + backoff and block-path degradation must preserve data.
``power_wal`` / ``power_db_log`` / ``power_flatfs``
    Sweep the power-loss instant across a workload, restart from the
    surviving flash image, and check the application invariant: WAL
    prefix durability, commit-log monotonicity, FlatFS fsck cleanliness.
``device_loss``
    Fleet failover: kill device ``k`` at a deterministic mid-workload
    instant, across a replication-factor sweep on a 3-device fleet.
    With R >= 2 every acknowledged WAL append must survive the failover
    (zero durable bytes lost) and the run must replay byte-for-byte;
    R = 1 is the control arm that shows what replication buys.  A rate
    arm drives the same machinery through the ``pcie.device_loss``
    injector plane.
"""

from __future__ import annotations

import argparse
import json
import struct
import zlib
from typing import Callable, Dict, List, Optional, Tuple

from repro.apps.flatfs import FlatFS
from repro.apps.wal import WriteAheadLog
from repro.config import small_config
from repro.core.hierarchy import FlatFlash
from repro.core.persistence import PersistentRegion
from repro.faults.plan import FaultConfig
from repro.faults.power import PowerLossInjector, restart_system
from repro.faults.recovery import (
    check_flatfs,
    check_log_monotonic,
    check_wal_prefix,
)
from repro.fleet import FlatFlashFleet, FleetConfig, FleetExhaustedError

#: Stat counters worth reporting per scenario (prefix match).
_METRIC_PREFIXES = (
    "flash.read_faults",
    "flash.program_fails",
    "flash.erase_fails",
    "flash.wear_retired_blocks",
    "ftl.ecc_retries",
    "ftl.ecc_hard_errors",
    "ftl.program_retries",
    "bridge.mmio_retries",
    "bridge.mmio_failures",
    "bridge.mmio_giveups",
    "bridge.mmio_backoff_ns",
    "bridge.degraded_pages",
    "bridge.degraded_accesses",
    "pcie.mmio_timeouts",
    "pcie.mmio_corruptions",
    "pcie.device_losses",
    "fleet.",
    "router.",
    "repl.",
    "ssd.peek_misses",
    "ssd.poke_misses",
    "pmem.recover_failures",
    "mem.cacheable_fallbacks",
)


def _fault_metrics(system: FlatFlash) -> Dict[str, int]:
    counters = system.stats.counters()
    return {
        key: int(counters[key])
        for key in sorted(counters)
        if key.startswith(_METRIC_PREFIXES)
    }


def _merge_metrics(into: Dict[str, int], system: FlatFlash) -> None:
    for key, value in _fault_metrics(system).items():
        into[key] = into.get(key, 0) + value


def _scenario_report(
    name: str,
    faults: Optional[FaultConfig],
    metrics: Dict[str, int],
    problems: List[str],
    details: Dict[str, int],
    injector_summary: Optional[dict] = None,
) -> dict:
    return {
        "name": name,
        "plan": faults.plan().to_dict() if faults is not None else None,
        "injector": injector_summary,
        "metrics": metrics,
        "details": details,
        "problems": problems,
        "status": "ok" if not problems else "failed",
    }


# --------------------------------------------------------------------- #
# Probabilistic-plane scenarios
# --------------------------------------------------------------------- #


def _zero_faults(seed: int, smoke: bool) -> dict:
    """All-zero fault config must be bit-identical to no fault subsystem."""
    rounds = 2 if smoke else 6

    def run_one(config) -> Tuple[Dict[str, object], int]:
        system = FlatFlash(config)
        region = system.mmap(32, name="baseline")
        for round_index in range(rounds):
            for page in range(region.num_pages):
                system.store_u64(region.page_addr(page), round_index * 100 + page)
            for page in range(region.num_pages):
                system.load_u64(region.page_addr(page))
        system.quiesce()
        return dict(system.stats.snapshot()), system.clock.now

    baseline, baseline_ns = run_one(small_config(track_data=True))
    zeroed_faults = FaultConfig(seed=seed)
    zeroed, zeroed_ns = run_one(
        small_config(track_data=True, faults=zeroed_faults)
    )
    problems: List[str] = []
    if baseline_ns != zeroed_ns:
        problems.append(
            f"elapsed time diverged: baseline {baseline_ns}ns, "
            f"zero-fault config {zeroed_ns}ns"
        )
    for key in sorted(set(baseline) | set(zeroed)):
        if baseline.get(key) != zeroed.get(key):
            problems.append(
                f"stat {key!r} diverged: baseline {baseline.get(key)!r}, "
                f"zero-fault config {zeroed.get(key)!r}"
            )
    return _scenario_report(
        "zero_faults",
        None,
        {},
        problems,
        {"stats_compared": len(set(baseline) | set(zeroed)), "rounds": rounds},
    )


def _nand_soak(seed: int, smoke: bool) -> dict:
    """Write/read soak through NAND faults; data must survive verbatim."""
    faults = FaultConfig(
        seed=seed,
        nand_read_error_rate=0.02,
        nand_program_fail_rate=0.01,
        nand_erase_fail_rate=0.05,
        nand_wear_limit=24,
    )
    system = FlatFlash(small_config(track_data=True, faults=faults))
    region = system.mmap(128, name="soak")
    rounds = 3 if smoke else 12
    problems: List[str] = []
    for round_index in range(rounds):
        for page in range(region.num_pages):
            system.store_u64(region.page_addr(page), round_index * 1_000 + page)
        for page in range(region.num_pages):
            value, _result = system.load_u64(region.page_addr(page))
            expected = round_index * 1_000 + page
            if value != expected:
                problems.append(
                    f"round {round_index} page {page}: read {value}, "
                    f"wrote {expected}"
                )
    system.quiesce()
    assert system.ssd.faults is not None
    return _scenario_report(
        "nand_soak",
        faults,
        _fault_metrics(system),
        problems,
        {"rounds": rounds, "pages": region.num_pages,
         "retired_blocks": system.ssd.gc.retired_blocks},
        system.ssd.faults.summary(),
    )


def _pcie_storm(seed: int, smoke: bool) -> dict:
    """MMIO under link faults; retry/backoff/degradation keep data intact."""
    faults = FaultConfig(
        seed=seed,
        pcie_timeout_rate=0.2,
        pcie_corrupt_rate=0.05,
        mmio_max_retries=2,
        mmio_degraded_threshold=4,
    )
    system = FlatFlash(small_config(track_data=True, faults=faults))
    region = system.mmap(48, name="storm")
    rounds = 3 if smoke else 10
    problems: List[str] = []
    for round_index in range(rounds):
        for page in range(region.num_pages):
            system.store_u64(region.page_addr(page), round_index * 7_919 + page)
        for page in range(region.num_pages):
            value, _result = system.load_u64(region.page_addr(page))
            expected = round_index * 7_919 + page
            if value != expected:
                problems.append(
                    f"round {round_index} page {page}: read {value}, "
                    f"wrote {expected}"
                )
    system.quiesce()
    assert system.ssd.faults is not None
    retry = system.bridge.mmio_retry
    assert retry is not None
    return _scenario_report(
        "pcie_storm",
        faults,
        _fault_metrics(system),
        problems,
        {"rounds": rounds, "pages": region.num_pages,
         "degraded_pages": retry.degraded_pages},
        system.ssd.faults.summary(),
    )


# --------------------------------------------------------------------- #
# Power-loss scenarios
# --------------------------------------------------------------------- #


def _loss_instants(t0: int, t1: int, trials: int) -> List[int]:
    """``trials`` deterministic instants strictly inside ``(t0, t1]``."""
    span = max(1, t1 - t0)
    return sorted({t0 + max(1, (span * k) // (trials + 1)) for k in range(1, trials + 1)})


def _power_sweep(
    name: str,
    build: Callable[[], Tuple[FlatFlash, object]],
    workload: Callable[[object], None],
    recover_and_check: Callable[[FlatFlash, FlatFlash, object], List[str]],
    trials: int,
) -> dict:
    """Shared driver: dry-run to learn the duration, then sweep instants."""
    system, app = build()
    t0 = system.clock.now
    workload(app)
    t1 = system.clock.now
    instants = _loss_instants(t0, t1, trials)
    problems: List[str] = []
    metrics: Dict[str, int] = {}
    tripped = 0
    for at_ns in instants:
        system, app = build()
        injector = PowerLossInjector(system, at_ns)
        if not injector.run(lambda: workload(app)):
            # The instant fell past the workload's end on this run (clock
            # advances are discrete); nothing to recover.
            continue
        tripped += 1
        restarted = restart_system(system)
        trial_problems = recover_and_check(system, restarted, app)
        problems.extend(
            f"loss at {at_ns}ns: {problem}" for problem in trial_problems
        )
        _merge_metrics(metrics, restarted)
    return _scenario_report(
        name,
        None,
        metrics,
        problems,
        {
            "trials": len(instants),
            "tripped": tripped,
            "workload_span_ns": t1 - t0,
        },
    )


def _wal_payloads(count: int) -> List[bytes]:
    return [struct.pack("<Q", index) + b"\xab" * 24 for index in range(count)]


def _power_wal(seed: int, smoke: bool) -> dict:
    """Power loss mid-append: the recovered WAL is a durable prefix."""
    del seed  # the plane is deterministic; instants come from the dry run
    payloads = _wal_payloads(8 if smoke else 24)

    def build() -> Tuple[FlatFlash, dict]:
        system = FlatFlash(small_config(track_data=True))
        wal = WriteAheadLog.create(system, num_pages=4, name="campaign.wal")
        return system, {"system": system, "wal": wal, "completed": []}

    def workload(app: dict) -> None:
        for payload in payloads:
            app["wal"].append(payload)
            app["completed"].append(payload)

    def recover_and_check(
        old: FlatFlash, restarted: FlatFlash, app: dict
    ) -> List[str]:
        wal = WriteAheadLog(
            PersistentRegion(restarted, app["wal"].pmem.region)
        )
        recovered = wal.recover()
        problems = check_wal_prefix(payloads, recovered)
        if len(recovered) < len(app["completed"]):
            problems.append(
                f"durable record lost: {len(app['completed'])} appends "
                f"acknowledged but only {len(recovered)} recovered"
            )
        return problems

    return _power_sweep(
        "power_wal", build, workload, recover_and_check, 6 if smoke else 16
    )


def _power_db_log(seed: int, smoke: bool) -> dict:
    """A commit log of sequence numbers recovers gap-free and in order."""
    del seed
    count = 10 if smoke else 32
    payloads = [struct.pack("<Q", index) for index in range(count)]

    def build() -> Tuple[FlatFlash, dict]:
        system = FlatFlash(small_config(track_data=True))
        wal = WriteAheadLog.create(system, num_pages=4, name="campaign.dblog")
        return system, {"wal": wal}

    def workload(app: dict) -> None:
        for payload in payloads:
            app["wal"].append(payload)

    def recover_and_check(
        old: FlatFlash, restarted: FlatFlash, app: dict
    ) -> List[str]:
        wal = WriteAheadLog(
            PersistentRegion(restarted, app["wal"].pmem.region)
        )
        recovered = wal.recover()
        return check_wal_prefix(payloads, recovered) + check_log_monotonic(
            recovered
        )

    return _power_sweep(
        "power_db_log", build, workload, recover_and_check, 5 if smoke else 12
    )


def _power_flatfs(seed: int, smoke: bool) -> dict:
    """Power loss mid-namespace-op: post-recovery fsck must be clean."""
    del seed

    def build() -> Tuple[FlatFlash, FlatFS]:
        system = FlatFlash(small_config(track_data=True))
        fs = FlatFS(system, num_inodes=16, data_blocks=16, name="campaign.fs")
        return system, fs

    def workload(fs: FlatFS) -> None:
        fs.mkdir("/dir")
        fs.create("/dir/a")
        fs.write_file("/dir/a", b"alpha" * 120)
        fs.create("/b")
        fs.link("/dir/a", "/a2")
        fs.rename("/b", "/dir/b")
        fs.write_file("/dir/b", b"beta" * 300)
        fs.unlink("/a2")
        fs.mkdir("/dir/sub")
        fs.create("/dir/sub/c")
        fs.write_file("/dir/sub/c", b"gamma" * 64)
        fs.unlink("/dir/b")

    def recover_and_check(
        old: FlatFlash, restarted: FlatFlash, fs: FlatFS
    ) -> List[str]:
        reattached = FlatFS.reattach(restarted, fs)
        reattached.recover()
        return check_flatfs(reattached)

    return _power_sweep(
        "power_flatfs", build, workload, recover_and_check, 5 if smoke else 14
    )


# --------------------------------------------------------------------- #
# Fleet device-loss scenario
# --------------------------------------------------------------------- #


def _fleet_wal_trial(
    payloads: List[bytes],
    replication: int,
    kills: Tuple[Tuple[int, int], ...],
    faults: Optional[FaultConfig] = None,
) -> Tuple[FlatFlashFleet, List[bytes], List[bytes], bool]:
    """One WAL-append run on a 3-device fleet; returns what survived."""
    if faults is None:
        config = small_config(track_data=True)
    else:
        config = small_config(track_data=True, faults=faults)
    fleet = FlatFlashFleet(
        config,
        FleetConfig(
            num_devices=3,
            replication_factor=replication,
            scheduled_losses=kills,
        ),
    )
    wal = WriteAheadLog.create(fleet, num_pages=4, name="campaign.wal")
    acked: List[bytes] = []
    exhausted = False
    try:
        for payload in payloads:
            wal.append(payload)
            acked.append(payload)
    except FleetExhaustedError:
        exhausted = True
    # Post-failover durability is checked through normal loads: no crash
    # happened, so the battery-backed SSD-Cache (ahead of the flash
    # image) still counts as durable.
    records = [] if exhausted else wal.records()
    return fleet, acked, records, exhausted


def _fleet_fingerprint(fleet: FlatFlashFleet, records: List[bytes]) -> int:
    """Canonical digest of a trial: events, summary, clock and payloads."""
    blob = json.dumps(
        {
            "events": [event.as_dict() for event in fleet.failover_events],
            "summary": fleet.fleet_summary(),
            "elapsed_ns": fleet.clock.now,
            "records_crc": zlib.crc32(b"".join(records)),
        },
        sort_keys=True,
    )
    return zlib.crc32(blob.encode("ascii"))


def _device_loss(seed: int, smoke: bool) -> dict:
    """Kill device k mid-workload; R >= 2 must lose zero durable bytes."""
    payloads = _wal_payloads(12 if smoke else 36)
    problems: List[str] = []
    metrics: Dict[str, int] = {}
    details: Dict[str, int] = {"trials": 0}
    fingerprints: Dict[Tuple[int, int], int] = {}
    instants: Dict[int, int] = {}

    for replication in (1, 2, 3):
        # Dry run (no losses) to learn this R's workload span, then kill
        # each device in turn at the deterministic mid-workload instant.
        dry, _acked, _records, _exhausted = _fleet_wal_trial(
            payloads, replication, ()
        )
        instant = max(1, dry.clock.now // 2)
        instants[replication] = instant
        for victim in range(3):
            fleet, acked, records, exhausted = _fleet_wal_trial(
                payloads, replication, ((instant, victim),)
            )
            details["trials"] += 1
            _merge_metrics(metrics, fleet)
            for device in fleet.devices:
                _merge_metrics(metrics, device)
            summary = fleet.fleet_summary()
            label = f"R={replication} kill dev{victim} at {instant}ns"
            key = f"r{replication}_durable_pages_lost"
            details[key] = details.get(key, 0) + summary["durable_pages_lost"]
            key = f"r{replication}_pages_promoted"
            details[key] = details.get(key, 0) + summary["pages_promoted"]
            if exhausted:
                problems.append(f"{label}: fleet exhausted by a single loss")
                continue
            fingerprints[(replication, victim)] = _fleet_fingerprint(
                fleet, records
            )
            events = fleet.failover_events
            if len(events) != 1 or events[0].device != victim:
                problems.append(
                    f"{label}: expected one failover on dev{victim}, "
                    f"got {[event.device for event in events]}"
                )
            if replication >= 2:
                if summary["durable_pages_lost"]:
                    problems.append(
                        f"{label}: lost {summary['durable_pages_lost']} "
                        "durable page(s) despite replication"
                    )
                if len(records) != len(acked):
                    problems.append(
                        f"{label}: {len(acked)} appends acknowledged but "
                        f"only {len(records)} readable after failover"
                    )
                problems.extend(
                    f"{label}: {problem}"
                    for problem in check_wal_prefix(acked, records)
                )

    # Byte-replay gate: re-running one killed config must reproduce the
    # failover events, summary, elapsed time and surviving bytes exactly.
    fleet, _acked, records, _exhausted = _fleet_wal_trial(
        payloads, 2, ((instants[2], 1),)
    )
    replay = _fleet_fingerprint(fleet, records)
    details["replay_identical"] = int(replay == fingerprints.get((2, 1)))
    if not details["replay_identical"]:
        problems.append(
            "R=2 kill dev1 did not replay byte-for-byte "
            f"(fingerprints {fingerprints.get((2, 1))} vs {replay})"
        )

    # Rate arm: the same failovers driven through the pcie.device_loss
    # injector plane (per-device streams; see repro.faults.plan).  How
    # many devices die depends on the seed, so the durability assertion
    # is guarded: a single loss with R=2 must still lose nothing.
    faults = FaultConfig(seed=seed, device_loss_rate=0.01)
    fleet, acked, records, exhausted = _fleet_wal_trial(
        payloads, 2, (), faults=faults
    )
    _merge_metrics(metrics, fleet)
    for device in fleet.devices:
        _merge_metrics(metrics, device)
    summary = fleet.fleet_summary()
    details["rate_device_losses"] = summary["device_losses"]
    details["rate_exhausted"] = int(exhausted)
    if not exhausted and summary["device_losses"] == 1:
        if summary["durable_pages_lost"]:
            problems.append(
                "rate arm: single injected loss with R=2 lost "
                f"{summary['durable_pages_lost']} durable page(s)"
            )
        problems.extend(
            f"rate arm: {problem}"
            for problem in check_wal_prefix(acked, records)
        )
    injector = fleet.devices[0].ssd.faults
    return _scenario_report(
        "device_loss",
        faults,
        metrics,
        problems,
        details,
        injector.summary() if injector is not None else None,
    )

SCENARIOS: Dict[str, Callable[[int, bool], dict]] = {
    "zero_faults": _zero_faults,
    "nand_soak": _nand_soak,
    "pcie_storm": _pcie_storm,
    "power_wal": _power_wal,
    "power_db_log": _power_db_log,
    "power_flatfs": _power_flatfs,
    "device_loss": _device_loss,
}

SCENARIO_NAMES: Tuple[str, ...] = tuple(SCENARIOS)


def run_campaign(
    seed: int = 0,
    smoke: bool = False,
    scenarios: Optional[List[str]] = None,
) -> dict:
    """Run the scenario matrix; returns the deterministic report dict."""
    selected = list(SCENARIOS) if scenarios is None else list(scenarios)
    for name in selected:
        if name not in SCENARIOS:
            raise ValueError(
                f"unknown scenario {name!r} (known: {', '.join(SCENARIOS)})"
            )
    results = [SCENARIOS[name](seed, smoke) for name in selected]
    return {
        "campaign": "simfault",
        "seed": seed,
        "smoke": smoke,
        "scenarios": results,
        "problem_count": sum(len(entry["problems"]) for entry in results),
    }


def render_report(report: dict) -> str:
    """Canonical JSON form: sorted keys, no timestamps — byte-replayable."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro faults",
        description="Run the deterministic fault-injection campaign matrix.",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="fault-plan seed (default 0)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced iteration counts for CI smoke runs",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the canonical JSON report to PATH",
    )
    parser.add_argument(
        "--only",
        action="append",
        metavar="SCENARIO",
        default=None,
        help=f"run a subset (repeatable); choices: {', '.join(SCENARIOS)}",
    )
    args = parser.parse_args(argv)
    report = run_campaign(seed=args.seed, smoke=args.smoke, scenarios=args.only)
    for entry in report["scenarios"]:
        summary = ", ".join(
            f"{key}={value}" for key, value in sorted(entry["details"].items())
        )
        print(f"{entry['name']:>14}: {entry['status']}  ({summary})")
        for problem in entry["problems"]:
            print(f"    PROBLEM {problem}")
    print(
        f"campaign {'FAILED' if report['problem_count'] else 'passed'}: "
        f"{report['problem_count']} problem(s) across "
        f"{len(report['scenarios'])} scenario(s)"
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(render_report(report))
        print(f"report written to {args.json}")
    return 1 if report["problem_count"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
