"""Power-loss injection and system restart (the third fault plane).

Unlike the NAND and PCIe planes, power loss is not probabilistic: the
injector arms a deadline on the simulation clock and the clock raises
:class:`~repro.sim.clock.PowerLossTriggered` the moment simulated time
reaches it — deterministic to the nanosecond, so a campaign can sweep the
loss instant across every point of a workload.

Recovery follows the paper's §3.5 story:

1. :meth:`~repro.ssd.device.ByteAddressableSSD.crash` — unfenced posted
   writes are reverted (they never reached the battery domain), then the
   battery-backed controller destages dirty SSD-Cache pages to flash;
2. :meth:`~repro.ssd.device.ByteAddressableSSD.flash_image` snapshots
   what survives: the NAND array and the FTL's mapping state;
3. :func:`restart_system` boots a *fresh* FlatFlash from the same config,
   loads the image, and rebuilds the page table to point every surviving
   logical page back at its flash location.  Host DRAM contents are gone
   — pages promoted to DRAM restart from their last flash copy, which is
   exactly the durability contract (only persist regions, pinned to the
   SSD, promise byte durability).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.hierarchy import FlatFlash
from repro.sim.clock import PowerLossTriggered
from repro.units import TimeNs


class PowerLossInjector:
    """Arms a power-loss deadline and runs a workload until it trips."""

    def __init__(self, system: FlatFlash, at_ns: TimeNs) -> None:
        if at_ns < 0:
            raise ValueError(f"power-loss instant must be >= 0, got {at_ns}")
        self.system = system
        self.at_ns = at_ns
        #: Simulated time at which the loss actually fired (None = never).
        self.tripped_at_ns: Optional[TimeNs] = None

    def run(self, workload: Callable[[], None]) -> bool:
        """Run ``workload`` with the deadline armed; True if power was lost.

        The workload is any callable driving the system's clock.  When the
        deadline fires mid-access the exception unwinds the workload; the
        system is then in the crashed state and must go through
        :func:`restart_system` before further use.
        """
        self.system.clock.arm_power_loss(self.at_ns)
        try:
            workload()
        except PowerLossTriggered as loss:
            self.tripped_at_ns = loss.at_ns
            return True
        finally:
            self.system.clock.disarm_power_loss()
        return False


def restart_system(old_system: FlatFlash) -> FlatFlash:
    """Boot a fresh FlatFlash from ``old_system``'s surviving flash image.

    Models the machine coming back after power loss: the device performs
    its crash handling (battery destage + posted-write revert), the flash
    image is carried over, and the new host rebuilds its address space —
    same regions at the same virtual addresses, every PTE pointing at the
    page's current flash location.  The page table is rebuilt *directly*
    rather than via ``mmap`` (which would program fresh zero pages over
    the survivors).
    """
    old_system.ssd.crash()
    image = old_system.ssd.flash_image()
    system = FlatFlash(old_system.config)
    system.ssd.load_flash_image(image)

    # Region bookkeeping carries over verbatim: MappedRegion objects are
    # immutable address-range descriptors, so applications holding one
    # (a WAL's pmem region, FlatFS's data region) can reattach by handing
    # it to the new system.
    system.regions = list(old_system.regions)
    system._next_vpn = old_system._next_vpn
    persist_of = {}
    for region in old_system.regions:
        for page in range(region.num_pages):
            persist_of[region.base_vpn + page] = region.persist
    for vpn, lpn in old_system._vpn_to_lpn.items():
        system._vpn_to_lpn[vpn] = lpn
        if not system.ssd.ftl.is_mapped(lpn):
            continue  # trimmed before the crash: stays unbacked
        ssd_page = system.ssd.host_page_of(lpn)
        pte = system.page_table.entry(vpn)
        pte.point_to_ssd(ssd_page, present=True)
        pte.persist = persist_of.get(vpn, False)
        system._ssd_page_to_vpn[ssd_page] = vpn
    return system
