"""Application-level crash-recovery invariants.

Each checker returns a list of human-readable problems (empty = the
invariant holds), in the same findings style as ``fsck``.  The campaign
runner and the property-based tests share these so a violation reads the
same everywhere.

* :func:`check_wal_prefix` — *prefix durability*: whatever a write-ahead
  log recovers after a crash must be an exact prefix of what was
  appended; a torn or unfenced tail may be cut, but no record may be
  altered, reordered, or resurrected.
* :func:`check_log_monotonic` — a database-style commit log carrying
  little-endian u64 sequence numbers must recover a strictly increasing,
  gap-free run (each committed transaction depends on its predecessor).
* :func:`check_flatfs` — after FlatFS redo recovery the file system's own
  ``fsck`` must be clean.
"""

from __future__ import annotations

import struct
from typing import List, Sequence

_U64 = struct.Struct("<Q")


def check_wal_prefix(
    appended: Sequence[bytes], recovered: Sequence[bytes]
) -> List[str]:
    """Problems with prefix durability of a recovered WAL."""
    problems: List[str] = []
    if len(recovered) > len(appended):
        problems.append(
            f"recovered {len(recovered)} records but only "
            f"{len(appended)} were ever appended"
        )
    for index, (wrote, read) in enumerate(zip(appended, recovered)):
        if wrote != read:
            problems.append(
                f"record {index} torn: appended {wrote!r} but recovered {read!r}"
            )
            break  # later records are downstream of the same corruption
    return problems


def check_log_monotonic(recovered: Sequence[bytes]) -> List[str]:
    """Problems with a recovered u64 sequence-number log."""
    problems: List[str] = []
    previous = None
    for index, payload in enumerate(recovered):
        if len(payload) < _U64.size:
            problems.append(
                f"record {index} too short for a sequence number: {payload!r}"
            )
            return problems
        value = _U64.unpack_from(payload)[0]
        if previous is not None and value != previous + 1:
            problems.append(
                f"record {index}: sequence {value} after {previous} "
                f"(must increase by exactly 1)"
            )
            return problems
        previous = value
    return problems


def check_flatfs(fs) -> List[str]:
    """Problems found by FlatFS's own consistency check (post-recovery)."""
    return list(fs.fsck())
