"""Multi-device FlatFlash fleet: sharding, replication, failover.

See :mod:`repro.fleet.fleet` for the composition model and
``docs/fleet.md`` for the design narrative.
"""

from repro.fleet.config import STRIPING_POLICIES, FleetConfig
from repro.fleet.fleet import FailoverEvent, FlatFlashFleet, FleetExhaustedError
from repro.fleet.replication import ReplicaMap
from repro.fleet.router import (
    BlockedPolicy,
    HashedPolicy,
    ShardRouter,
    StripedPolicy,
    make_policy,
)

__all__ = [
    "BlockedPolicy",
    "FailoverEvent",
    "FlatFlashFleet",
    "FleetConfig",
    "FleetExhaustedError",
    "HashedPolicy",
    "ReplicaMap",
    "ShardRouter",
    "STRIPING_POLICIES",
    "StripedPolicy",
    "make_policy",
]
