"""Fleet composition knobs: sharding, replication, failover detection.

A :class:`FleetConfig` describes how N independent FlatFlash devices are
composed behind one flat address space (:class:`repro.fleet.FlatFlashFleet`):
how host pages stripe across devices, how many replicas each durable
(persist-mapped) page keeps, how many of those replicas must acknowledge
a write before it completes in the foreground, and how many consecutive
``DeviceLostError`` observations on one device escalate to failover.

Like :class:`repro.config.FlatFlashConfig` this is a plain dataclass with
an explicit :meth:`validate`, so sweeps can construct variants cheaply
and every knob is auditable by the dead-knob analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

#: Striping policies :mod:`repro.fleet.router` knows how to build.
STRIPING_POLICIES: Tuple[str, ...] = ("striped", "hashed", "blocked")


@dataclass
class FleetConfig:
    """How a fleet shards, replicates and fails over.

    The defaults describe a single-device "fleet" with no replication,
    which behaves identically to a bare FlatFlash system.
    """

    #: Number of FlatFlash devices behind the flat space.
    num_devices: int = 1
    #: Copies kept of every durable (persist-mapped) page, primary
    #: included.  1 = no replication.
    replication_factor: int = 1
    #: Replica acknowledgements (primary included) a durable write waits
    #: for in the foreground; the rest complete in the background.
    #: 0 = majority, i.e. ``replication_factor // 2 + 1``.
    write_quorum: int = 0
    #: Page→device placement policy: one of :data:`STRIPING_POLICIES`.
    striping: str = "striped"
    #: Pages per striping chunk for the ``blocked`` policy.
    stripe_chunk_pages: int = 8
    #: Consecutive ``DeviceLostError`` observations on one device before
    #: the fleet declares it failed and promotes replicas.
    loss_detect_threshold: int = 2
    #: Whether failover re-replicates surviving copies onto other
    #: devices to restore the replication factor.
    re_replicate: bool = True
    #: Administrative device kills: ``(at_ns, device)`` pairs fired when
    #: the fleet clock first reaches ``at_ns``.  Exact simulated
    #: instants, so campaigns replay byte for byte.
    scheduled_losses: Tuple[Tuple[int, int], ...] = field(default_factory=tuple)

    @property
    def effective_write_quorum(self) -> int:
        """The resolved quorum size (majority when ``write_quorum`` is 0)."""
        if self.write_quorum:
            return self.write_quorum
        return self.replication_factor // 2 + 1

    def validate(self) -> None:
        if self.num_devices < 1:
            raise ValueError(f"num_devices must be >= 1, got {self.num_devices}")
        if not 1 <= self.replication_factor <= self.num_devices:
            raise ValueError(
                f"replication_factor must be in [1, num_devices="
                f"{self.num_devices}], got {self.replication_factor}"
            )
        if not 0 <= self.write_quorum <= self.replication_factor:
            raise ValueError(
                f"write_quorum must be in [0, replication_factor="
                f"{self.replication_factor}], got {self.write_quorum}"
            )
        if self.striping not in STRIPING_POLICIES:
            raise ValueError(
                f"striping must be one of {STRIPING_POLICIES}, "
                f"got {self.striping!r}"
            )
        if self.stripe_chunk_pages < 1:
            raise ValueError(
                f"stripe_chunk_pages must be >= 1, got {self.stripe_chunk_pages}"
            )
        if self.loss_detect_threshold < 1:
            raise ValueError(
                f"loss_detect_threshold must be >= 1, "
                f"got {self.loss_detect_threshold}"
            )
        for at_ns, device in self.scheduled_losses:
            if at_ns < 0:
                raise ValueError(f"scheduled loss instant must be >= 0, got {at_ns}")
            if not 0 <= device < self.num_devices:
                raise ValueError(
                    f"scheduled loss device {device} outside fleet of "
                    f"{self.num_devices}"
                )
