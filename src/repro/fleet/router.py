"""Shard router: the global page → (device, local page) bijection.

The fleet exposes one flat virtual address space; the router decides
which device backs each global page and tracks the resulting placement.
Placement has two parts:

* a pluggable, stateless *striping policy* that names the preferred
  device for a page (pure arithmetic — replayable by construction);
* the mutable *placement map*, a bijection from global vpn to
  ``(device, local vpn)`` that failover rewrites when a replica is
  promoted or a page is relocated to a survivor.

Local page numbers are the device's own vpns (each backing page is a
one-page mapping on the member device), so per-device PLBs, SSD-Caches
and promotion machinery run completely unchanged.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Tuple

from repro.costs import counters
from repro.effects import effects
from repro.sim.stats import StatRegistry


class StripedPolicy:
    """Round-robin striping: page ``v`` prefers device ``v % N``."""

    name = "striped"

    def device_of(self, vpn: int, num_devices: int) -> int:
        return vpn % num_devices


class HashedPolicy:
    """Hash placement: crc32 of the page number, mod N.

    Decorrelates placement from access strides (a power-of-two stride
    never camps on one device) while staying seed-free deterministic.
    """

    name = "hashed"

    def device_of(self, vpn: int, num_devices: int) -> int:
        digest = zlib.crc32(int(vpn).to_bytes(8, "little"))
        return digest % num_devices


class BlockedPolicy:
    """Chunked striping: runs of ``chunk`` consecutive pages per device,
    preserving intra-chunk spatial locality (sequential prefetch,
    SSD-Cache line reuse) at the cost of coarser load spreading."""

    name = "blocked"

    def __init__(self, chunk: int) -> None:
        if chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        self.chunk = chunk

    def device_of(self, vpn: int, num_devices: int) -> int:
        return (vpn // self.chunk) % num_devices


def make_policy(name: str, chunk: int = 8):
    """Build a striping policy by config name."""
    if name == "striped":
        return StripedPolicy()
    if name == "hashed":
        return HashedPolicy()
    if name == "blocked":
        return BlockedPolicy(chunk)
    raise ValueError(f"unknown striping policy {name!r}")


@counters(
    owner="router",
    conserve=(
        "place: router.placements == 1",
        "remap: router.remaps == 1",
        "remove: router.removals == 1",
        "route: router.routes == 1",
    ),
)
class ShardRouter:
    """The mutable placement bijection: global vpn ↔ (device, local vpn)."""

    def __init__(
        self,
        policy,
        num_devices: int,
        stats: Optional[StatRegistry] = None,
    ) -> None:
        if num_devices < 1:
            raise ValueError(f"num_devices must be >= 1, got {num_devices}")
        self.policy = policy
        self.num_devices = num_devices
        self.stats = stats if stats is not None else StatRegistry()
        self._forward: Dict[int, Tuple[int, int]] = {}
        # Per-device reverse maps: device -> {local vpn: global vpn}.
        self._by_device: List[Dict[int, int]] = [{} for _ in range(num_devices)]
        self._placements = self.stats.counter("router.placements")
        self._routes = self.stats.counter("router.routes")
        self._remaps = self.stats.counter("router.remaps")
        self._removals = self.stats.counter("router.removals")

    # ------------------------------------------------------------------ #
    # Policy
    # ------------------------------------------------------------------ #

    def preferred_device(self, vpn: int) -> int:
        """The striping policy's choice for a page (ignores liveness)."""
        return self.policy.device_of(vpn, self.num_devices)

    # ------------------------------------------------------------------ #
    # Placement map
    # ------------------------------------------------------------------ #

    @effects("MUTATES_STATE", "MUTATES_STATS")
    def place(self, vpn: int, device: int, local_vpn: int) -> None:
        """Record the initial placement of a new global page."""
        if vpn in self._forward:
            raise ValueError(f"vpn {vpn} is already placed")
        self._claim(device, local_vpn, vpn)
        self._forward[vpn] = (device, local_vpn)
        self._placements.add()

    @effects("MUTATES_STATS")
    def route(self, vpn: int) -> Tuple[int, int]:
        """Resolve a global page to its current (device, local vpn)."""
        entry = self._forward.get(vpn)
        if entry is None:
            raise KeyError(f"vpn {vpn} is not placed on any device")
        self._routes.add()
        return entry

    def lookup(self, vpn: int) -> Optional[Tuple[int, int]]:
        """Like :meth:`route` but uncounted and None when unplaced."""
        return self._forward.get(vpn)

    def vpn_at(self, device: int, local_vpn: int) -> Optional[int]:
        """Reverse lookup: which global page a device slot backs."""
        return self._by_device[device].get(local_vpn)

    @effects("MUTATES_STATE", "MUTATES_STATS")
    def remap(self, vpn: int, device: int, local_vpn: int) -> None:
        """Move a placed page to a new slot (promotion / relocation)."""
        old = self._forward.get(vpn)
        if old is None:
            raise KeyError(f"vpn {vpn} is not placed on any device")
        self._claim(device, local_vpn, vpn)
        del self._by_device[old[0]][old[1]]
        self._forward[vpn] = (device, local_vpn)
        self._remaps.add()

    @effects("MUTATES_STATE", "MUTATES_STATS")
    def remove(self, vpn: int) -> Tuple[int, int]:
        """Drop a page from the map (munmap); returns its last slot."""
        entry = self._forward.pop(vpn, None)
        if entry is None:
            raise KeyError(f"vpn {vpn} is not placed on any device")
        del self._by_device[entry[0]][entry[1]]
        self._removals.add()
        return entry

    def _claim(self, device: int, local_vpn: int, vpn: int) -> None:
        if not 0 <= device < self.num_devices:
            raise ValueError(f"device {device} outside fleet of {self.num_devices}")
        holder = self._by_device[device].get(local_vpn)
        if holder is not None:
            raise ValueError(
                f"slot (device={device}, local={local_vpn}) already backs "
                f"vpn {holder}"
            )
        self._by_device[device][local_vpn] = vpn

    # ------------------------------------------------------------------ #
    # Enumeration (failover, tests)
    # ------------------------------------------------------------------ #

    def pages_on(self, device: int) -> List[Tuple[int, int]]:
        """All (global vpn, local vpn) primaries on a device, vpn-sorted."""
        return sorted(
            (vpn, local) for local, vpn in self._by_device[device].items()
        )

    def placed_vpns(self) -> List[int]:
        """Every placed global page, sorted."""
        return sorted(self._forward)

    def __len__(self) -> int:
        return len(self._forward)
