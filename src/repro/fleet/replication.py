"""Replica tracking for durable (persist-mapped) fleet pages.

The fleet mirrors every persist-mapped global page onto ``R`` devices
(primary included).  This module is pure bookkeeping — *which* copies
exist and which is primary; the fleet applies the actual writes and
charges quorum timing.  Copy lists are kept in ack-ring order: index 0
is the primary, the rest are replicas.

Conservation contracts make the failover arithmetic auditable: every
promotion, lost copy and re-replication bumps exactly one counter, so
``repl.replicas_lost`` vs ``repl.re_replications`` in a campaign report
is the exact redundancy debt failover left behind.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.costs import counters
from repro.effects import effects
from repro.sim.stats import StatRegistry


@counters(
    owner="repl",
    conserve=(
        "register: repl.pages_replicated == 1",
        "promote: repl.promotions == 1",
        "record_loss: repl.replicas_lost == 1",
        "record_repair: repl.re_replications == 1",
    ),
)
class ReplicaMap:
    """Copy sets of replicated pages: vpn -> [(device, local vpn), ...]."""

    def __init__(self, stats: Optional[StatRegistry] = None) -> None:
        self.stats = stats if stats is not None else StatRegistry()
        self._copies: Dict[int, List[Tuple[int, int]]] = {}
        # Per-device membership index: device -> vpns with a copy there.
        self._on_device: Dict[int, Set[int]] = {}
        self._pages = self.stats.counter("repl.pages_replicated")
        self._promotions = self.stats.counter("repl.promotions")
        self._lost = self.stats.counter("repl.replicas_lost")
        self._repairs = self.stats.counter("repl.re_replications")

    @effects("MUTATES_STATE", "MUTATES_STATS")
    def register(self, vpn: int, copies: Tuple[Tuple[int, int], ...]) -> None:
        """Record the copy set of a newly mapped replicated page."""
        if vpn in self._copies:
            raise ValueError(f"vpn {vpn} already has a copy set")
        if len(copies) < 2:
            raise ValueError(f"a copy set needs >= 2 copies, got {len(copies)}")
        devices = [device for device, _local in copies]
        if len(set(devices)) != len(devices):
            raise ValueError(f"copy set for vpn {vpn} repeats a device")
        self._copies[vpn] = list(copies)
        for device in devices:
            self._on_device.setdefault(device, set()).add(vpn)
        self._pages.add()

    def is_replicated(self, vpn: int) -> bool:
        return vpn in self._copies

    def copies(self, vpn: int) -> List[Tuple[int, int]]:
        """The page's copy set, primary first (empty if unreplicated)."""
        return list(self._copies.get(vpn, ()))

    def replicas(self, vpn: int) -> List[Tuple[int, int]]:
        """The non-primary copies, in ack-ring order."""
        return list(self._copies.get(vpn, ())[1:])

    @effects("MUTATES_STATE", "MUTATES_STATS")
    def promote(self, vpn: int, device: int) -> Tuple[int, int]:
        """Make the copy on ``device`` primary; returns its slot."""
        copies = self._copies.get(vpn)
        if not copies:
            raise KeyError(f"vpn {vpn} has no copy set")
        index = next(
            (i for i, (dev, _local) in enumerate(copies) if dev == device), None
        )
        if index is None:
            raise KeyError(f"vpn {vpn} has no copy on device {device}")
        copies.insert(0, copies.pop(index))
        self._promotions.add()
        return copies[0]

    @effects("MUTATES_STATE", "MUTATES_STATS")
    def record_loss(self, vpn: int, device: int) -> None:
        """Drop the copy on a failed device from the page's copy set."""
        copies = self._copies.get(vpn)
        if not copies:
            raise KeyError(f"vpn {vpn} has no copy set")
        kept = [(dev, local) for dev, local in copies if dev != device]
        if len(kept) == len(copies):
            raise KeyError(f"vpn {vpn} has no copy on device {device}")
        self._copies[vpn] = kept
        self._on_device[device].discard(vpn)
        self._lost.add()

    @effects("MUTATES_STATE", "MUTATES_STATS")
    def record_repair(self, vpn: int, device: int, local_vpn: int) -> None:
        """Append a freshly re-replicated copy to the page's copy set."""
        copies = self._copies.get(vpn)
        if not copies:
            raise KeyError(f"vpn {vpn} has no copy set")
        if any(dev == device for dev, _local in copies):
            raise ValueError(f"vpn {vpn} already has a copy on device {device}")
        copies.append((device, local_vpn))
        self._on_device.setdefault(device, set()).add(vpn)
        self._repairs.add()

    def discard(self, vpn: int) -> None:
        """Forget a page entirely (munmap); no-op when unreplicated."""
        copies = self._copies.pop(vpn, None)
        if copies:
            for device, _local in copies:
                self._on_device[device].discard(vpn)

    def pages_with_copy_on(self, device: int) -> List[int]:
        """Replicated vpns holding a copy on a device, sorted."""
        return sorted(self._on_device.get(device, ()))

    def __len__(self) -> int:
        return len(self._copies)
