"""N FlatFlash devices behind one flat address space, with failover.

:class:`FlatFlashFleet` is a :class:`~repro.core.memory_system.MemorySystem`
whose backing store is a *fleet* of complete, unmodified
:class:`~repro.core.hierarchy.FlatFlash` members — each with its own host
DRAM shard, PLB, SSD-Cache, FTL and PCIe link.  Three mechanisms compose
them:

* **Sharding** — the :class:`~repro.fleet.router.ShardRouter` stripes
  global pages across devices; every global page is a one-page mapping
  on its member device, so per-device promotion/caching machinery runs
  unchanged.  Accesses are split at page boundaries and device-contiguous
  runs are delegated as single member accesses, which makes a one-device
  fleet *bit-identical* to a bare FlatFlash system.
* **Replication** — persist-mapped (durable) pages are mirrored onto R
  devices.  Writes apply to every copy; the foreground charge is the
  write-quorum completion time (the W-th fastest ack, copies issued in
  parallel), the rest is charged to the background ledger.
* **Failover** — a member dies fail-stop (``DeviceLostError`` from its
  PCIe link: the injected ``pcie.device_loss`` plane or a scheduled
  kill).  Detection reuses the host bridge's
  :class:`~repro.host.bridge.MMIORetryPolicy` degradation ladder keyed
  by device: each observed loss is a "consecutive failure"; crossing the
  threshold declares the device failed, promotes surviving replicas to
  primary, re-replicates onto spare survivors in the background, and
  records a :class:`FailoverEvent` with detection/recovery times.

With R ≥ 2, killing any single device loses zero durable bytes: every
persist page has a surviving replica that is promoted in place.
Unreplicated pages on the dead device are relocated to fresh zeroed
pages on survivors and counted as lost (volatile or durable-sole-copy).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config import FlatFlashConfig
from repro.core.hierarchy import FlatFlash
from repro.core.memory_system import AccessResult, MemorySystem
from repro.costs import counters
from repro.effects import effects
from repro.fleet.config import FleetConfig
from repro.fleet.replication import ReplicaMap
from repro.fleet.router import ShardRouter, make_policy
from repro.host.bridge import MMIORetryPolicy
from repro.interconnect.pcie import DeviceLostError
from repro.units import LPN, VPN


class FleetExhaustedError(RuntimeError):
    """Every device in the fleet has failed; no placement is possible."""


class FailoverEvent:
    """One completed device failover, with its recovery accounting."""

    __slots__ = (
        "device",
        "detected_ns",
        "detection_ns",
        "pages_promoted",
        "pages_re_replicated",
        "volatile_pages_lost",
        "durable_pages_lost",
        "recovery_ns",
    )

    def __init__(
        self,
        device: int,
        detected_ns: int,
        detection_ns: int,
        pages_promoted: int,
        pages_re_replicated: int,
        volatile_pages_lost: int,
        durable_pages_lost: int,
        recovery_ns: int,
    ) -> None:
        self.device = device
        #: Fleet-clock instant the loss was declared.
        self.detected_ns = detected_ns
        #: Foreground time burned observing the dead link (timeouts and
        #: ladder backoffs) before declaration.
        self.detection_ns = detection_ns
        self.pages_promoted = pages_promoted
        self.pages_re_replicated = pages_re_replicated
        self.volatile_pages_lost = volatile_pages_lost
        #: Sole-copy persist pages lost (always 0 when R >= 2).
        self.durable_pages_lost = durable_pages_lost
        #: Background time spent restoring redundancy (re-replication I/O).
        self.recovery_ns = recovery_ns

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        return (
            f"FailoverEvent(device={self.device}, at={self.detected_ns}ns, "
            f"promoted={self.pages_promoted}, lost_durable="
            f"{self.durable_pages_lost}, recovery={self.recovery_ns}ns)"
        )


class _FleetSanitizerFan:
    """Fans durability acknowledgements out to every member sanitizer."""

    def __init__(self, sanitizers) -> None:
        self._sanitizers = sanitizers

    def ack_durable(self, what: str = "durable store") -> None:
        for sanitizer in self._sanitizers:
            sanitizer.ack_durable(what)


class _FleetStoragePort:
    """Duck-typed stand-in for ``system.ssd`` on a fleet.

    :class:`~repro.core.persistence.PersistentRegion` (and the WAL /
    FlatFS apps above it) only touch three points of the device surface:
    ``verify_read()`` (the §3.5 durability fence), ``recover_read(lpn)``
    (post-crash flash reads) and ``persistence_sanitizer``.  The port
    maps each onto the fleet: the fence completes when every active
    member's fence completes (parallel, so the cost is the max), crash
    reads route through the shard router, and acknowledgements fan out
    to every member's sanitizer.
    """

    def __init__(self, fleet: "FlatFlashFleet") -> None:
        self._fleet = fleet

    @property
    def flash(self):
        """Geometry probe (e.g. MiniDB channel count); members are uniform."""
        return self._fleet.devices[0].ssd.flash

    @property
    def persistence_sanitizer(self):
        sanitizers = [
            device.ssd.persistence_sanitizer
            for device in self._fleet.active_devices()
            if device.ssd.persistence_sanitizer is not None
        ]
        if not sanitizers:
            return None
        return _FleetSanitizerFan(sanitizers)

    def verify_read(self) -> int:
        """Fence every active member; cost = slowest fence (parallel)."""
        fleet = self._fleet
        cost = 0
        for index in fleet.active_indices():
            device = fleet.devices[index]
            try:
                device.clock.advance_to(fleet.clock.now)
                cost = max(cost, device.ssd.verify_read())
            except DeviceLostError as err:
                cost = max(cost, err.latency_ns)
                fleet._note_loss(index, err.latency_ns)
        return cost

    def recover_read(self, lpn: LPN) -> Optional[bytes]:
        """Post-crash read of a global page via its current primary."""
        fleet = self._fleet
        entry = fleet._router.lookup(int(lpn))
        if entry is None:
            return None
        device_index, local_vpn = entry
        device = fleet.devices[device_index]
        # The local page is its own device-level lpn (regions tile the
        # member's logical space linearly) — sanctioned local cast.
        return device.ssd.recover_read(LPN(local_vpn))


@counters(
    owner="fleet",
    conserve=(
        "_note_failed_device: fleet.device_losses == 1",
        "_lose_volatile_page: fleet.volatile_pages_lost == 1",
        "_lose_durable_page: fleet.durable_pages_lost == 1",
    ),
)
class FlatFlashFleet(MemorySystem):
    """A sharded, replicated fleet of FlatFlash devices (one flat space)."""

    name = "FlatFlashFleet"
    #: The fleet preserves FlatFlash's byte-granular persistence protocol
    #: (persist stores post to every replica; the fence covers them all).
    supports_byte_persistence = True

    def __init__(
        self,
        config: Optional[FlatFlashConfig] = None,
        fleet: Optional[FleetConfig] = None,
        cache_policy: str = "rrip",
    ) -> None:
        if config is None:
            config = FlatFlashConfig()
        if fleet is None:
            fleet = FleetConfig()
        fleet.validate()
        super().__init__(config)
        self.fleet_config = fleet
        #: The member devices; each is a complete unmodified FlatFlash
        #: with per-device fault-injector RNG namespaces ("dev<k>").
        self.devices: List[FlatFlash] = [
            FlatFlash(config, cache_policy=cache_policy, device_id=index)
            for index in range(fleet.num_devices)
        ]
        self._device_state: List[str] = ["active"] * fleet.num_devices
        self._router = ShardRouter(
            make_policy(fleet.striping, fleet.stripe_chunk_pages),
            fleet.num_devices,
            stats=self.stats,
        )
        self._replicas = ReplicaMap(stats=self.stats)
        # Device-loss detection reuses the bridge's MMIO degradation
        # ladder, keyed by device index instead of lpn: each observed
        # DeviceLostError is a consecutive failure, and crossing the
        # (fleet-scoped) threshold declares the device failed.
        self._ladder = MMIORetryPolicy(
            max_retries=config.faults.mmio_max_retries,
            backoff_base_ns=config.faults.mmio_backoff_base_ns,
            backoff_multiplier=config.faults.mmio_backoff_multiplier,
            degraded_threshold=fleet.loss_detect_threshold,
            stats=self.stats,
        )
        self.ssd = _FleetStoragePort(self)
        #: Completed failovers, in declaration order.
        self.failover_events: List[FailoverEvent] = []
        self._local_regions: Dict[Tuple[int, int], object] = {}
        self._page_persist: Dict[int, bool] = {}
        self._pending_losses: List[Tuple[int, int]] = sorted(
            fleet.scheduled_losses
        )
        self._loss_observed_ns: Dict[int, int] = {}
        self._device_losses = self.stats.counter("fleet.device_losses")
        self._scheduled_kills = self.stats.counter("fleet.scheduled_kills")
        self._volatile_lost = self.stats.counter("fleet.volatile_pages_lost")
        self._durable_lost = self.stats.counter("fleet.durable_pages_lost")
        self._detection_total = self.stats.counter("fleet.detection_ns")
        self._recovery_total = self.stats.counter("fleet.recovery_ns")
        self._replica_writes = self.stats.counter("fleet.replica_writes")
        self._replica_lag_ns = self.stats.counter("fleet.replica_lag_ns")

    # ------------------------------------------------------------------ #
    # Device liveness
    # ------------------------------------------------------------------ #

    def active_indices(self) -> List[int]:
        return [
            index
            for index, state in enumerate(self._device_state)
            if state == "active"
        ]

    def active_devices(self) -> List[FlatFlash]:
        return [self.devices[index] for index in self.active_indices()]

    def device_state(self, index: int) -> str:
        """``"active"`` or ``"failed"``."""
        return self._device_state[index]

    def _fire_due_losses(self) -> None:
        """Apply scheduled administrative kills whose instant has come."""
        while self._pending_losses and self._pending_losses[0][0] <= self.clock.now:
            _at_ns, device_index = self._pending_losses.pop(0)
            self.devices[device_index].ssd.fail_stop()
            self._scheduled_kills.add()

    def _note_loss(self, device_index: int, latency_ns: int) -> None:
        """One DeviceLostError observed; escalate through the ladder."""
        self._loss_observed_ns[device_index] = (
            self._loss_observed_ns.get(device_index, 0) + latency_ns
        )
        # Device index rides the ladder's page-keyed table — the
        # sanctioned fleet-scope reuse of the degradation ladder.
        if self._ladder.note_failure(LPN(device_index)):
            self._failover(device_index)

    # ------------------------------------------------------------------ #
    # Mapping
    # ------------------------------------------------------------------ #

    def _map_page(self, vpn: VPN, lpn: LPN, persist: bool) -> None:
        primary = self._pick_active(self._router.preferred_device(vpn))
        local = self._allocate_local(primary, persist, f"shard:v{vpn}")
        self._router.place(vpn, primary, local)
        self._page_persist[int(vpn)] = persist
        factor = self.fleet_config.replication_factor
        if persist and factor > 1:
            copies: List[Tuple[int, int]] = [(primary, local)]
            taken = {primary}
            cursor = primary
            while len(copies) < factor:
                cursor = self._next_active(cursor, exclude=taken)
                if cursor is None:
                    break
                taken.add(cursor)
                copies.append(
                    (cursor, self._allocate_local(cursor, True, f"repl:v{vpn}"))
                )
            if len(copies) > 1:
                self._replicas.register(int(vpn), tuple(copies))

    def _unmap_page(self, vpn: VPN) -> None:
        entry = self._router.lookup(int(vpn))
        if entry is None:
            return
        copies = self._replicas.copies(int(vpn)) or [entry]
        for device_index, local in copies:
            region = self._local_regions.pop((device_index, local), None)
            if region is not None and self._device_state[device_index] == "active":
                self.devices[device_index].munmap(region)
        self._router.remove(int(vpn))
        self._replicas.discard(int(vpn))
        self._page_persist.pop(int(vpn), None)

    def _allocate_local(self, device_index: int, persist: bool, name: str) -> int:
        """One fresh backing page on a member device; returns its local vpn."""
        region = self.devices[device_index].mmap(1, persist=persist, name=name)
        self._local_regions[(device_index, region.base_vpn)] = region
        return region.base_vpn

    def _pick_active(self, preferred: int) -> int:
        if self._device_state[preferred] == "active":
            return preferred
        fallback = self._next_active(preferred, exclude={preferred})
        if fallback is None:
            raise FleetExhaustedError("every device in the fleet has failed")
        return fallback

    def _next_active(self, start: int, exclude) -> Optional[int]:
        count = self.fleet_config.num_devices
        for step in range(1, count + 1):
            candidate = (start + step) % count
            if candidate in exclude:
                continue
            if self._device_state[candidate] == "active":
                return candidate
        return None

    # ------------------------------------------------------------------ #
    # Access path
    # ------------------------------------------------------------------ #

    @effects(
        "READS_CLOCK",
        "ADVANCES_CLOCK",
        "MUTATES_STATE",
        "MUTATES_STATS",
        "PERSISTS",
        "FAULT_HOOK",
    )
    def _access(
        self, vaddr: int, size: int, is_write: bool, data: Optional[bytes]
    ) -> AccessResult:
        if size <= 0:
            raise ValueError(f"access size must be > 0, got {size}")
        if vaddr < 0:
            raise ValueError(f"negative virtual address {vaddr:#x}")
        self._fire_due_losses()
        if is_write:
            self._stores.add()
        else:
            self._loads.add()
        chunks = self._split_chunks(vaddr, size, data)
        total_latency = 0
        fault = False
        source = "dram"
        pieces: List[bytes] = []
        position = 0
        while position < len(chunks):
            latency, result, taken = self._group_access(chunks, position, is_write)
            total_latency += latency
            fault = fault or result.fault
            source = result.source
            if result.data is not None:
                pieces.append(result.data)
            position += taken
        self.clock.advance(total_latency)
        self._access_latency.record(total_latency)
        by_source = self._by_source_latency.get(source)
        if by_source is None:
            by_source = self.stats.latency(
                f"mem.by_source.{source}", keep_samples=False
            )
            self._by_source_latency[source] = by_source
        by_source.record(total_latency)
        merged = b"".join(pieces) if pieces else None
        return AccessResult(total_latency, source, fault, merged)

    def _access_page(
        self,
        vpn: VPN,
        offset: int,
        size: int,
        is_write: bool,
        data: Optional[bytes],
    ) -> AccessResult:
        """Unused: the fleet overrides ``_access`` and delegates whole
        device-contiguous runs to its members instead of single pages."""
        raise NotImplementedError(
            "FlatFlashFleet delegates accesses to member devices"
        )

    def _split_chunks(
        self, vaddr: int, size: int, data: Optional[bytes]
    ) -> List[Tuple[int, int, int, Optional[bytes]]]:
        """Page-confined (vpn, page offset, size, payload) pieces."""
        chunks: List[Tuple[int, int, int, Optional[bytes]]] = []
        offset_in_access = 0
        remaining = size
        addr = vaddr
        while remaining > 0:
            vpn, page_offset = divmod(addr, self.page_size)
            chunk = min(remaining, self.page_size - page_offset)
            payload = None
            if data is not None:
                payload = data[offset_in_access : offset_in_access + chunk]
            chunks.append((vpn, page_offset, chunk, payload))
            addr += chunk
            offset_in_access += chunk
            remaining -= chunk
        return chunks

    def _group_access(
        self,
        chunks: List[Tuple[int, int, int, Optional[bytes]]],
        position: int,
        is_write: bool,
    ) -> Tuple[int, AccessResult, int]:
        """Delegate a maximal same-device run of chunks to its member.

        Regrouped from scratch on every attempt: a failover triggered by
        a ``DeviceLostError`` rewrites the routing, so the retry may
        land on a different device (the promoted replica).  Returns
        (latency including detection overhead, member result, chunks
        consumed).
        """
        extra_ns = 0
        attempt = 0
        while True:
            vpn0 = chunks[position][0]
            device_index, local0 = self._router.route(vpn0)
            taken = 1
            group_size = chunks[position][2]
            while position + taken < len(chunks):
                next_vpn = chunks[position + taken][0]
                entry = self._router.lookup(next_vpn)
                if entry is None or entry != (device_index, local0 + taken):
                    break
                group_size += chunks[position + taken][2]
                taken += 1
            payload: Optional[bytes] = None
            if is_write and chunks[position][3] is not None:
                payload = b"".join(
                    chunks[position + i][3] for i in range(taken)
                )
            local_vaddr = local0 * self.page_size + chunks[position][1]
            device = self.devices[device_index]
            try:
                device.clock.advance_to(self.clock.now)
                if is_write:
                    result = device.store(local_vaddr, group_size, payload)
                else:
                    result = device.load(local_vaddr, group_size)
            except DeviceLostError as err:
                extra_ns += err.latency_ns
                failed_before = len(self.failover_events)
                self._note_loss(device_index, err.latency_ns)
                if len(self.failover_events) == failed_before:
                    # Not yet declared: back off and probe the link again.
                    wait = self._ladder.backoff_ns(attempt)
                    self._loss_observed_ns[device_index] += wait
                    extra_ns += wait
                    attempt += 1
                else:
                    attempt = 0
                continue
            self._ladder.note_success(LPN(device_index))
            latency = extra_ns + result.latency_ns
            if is_write:
                latency += self._replicate_group(
                    chunks, position, taken, result.latency_ns
                )
            return latency, result, taken

    def _replicate_group(
        self,
        chunks: List[Tuple[int, int, int, Optional[bytes]]],
        position: int,
        taken: int,
        primary_latency_ns: int,
    ) -> int:
        """Mirror a written group onto its replicas; returns the extra
        foreground wait beyond the primary ack (quorum semantics).

        All copies are issued in parallel at the access instant, so the
        write completes in the foreground when the W-th fastest copy
        (primary included) acknowledges; slower replicas drain in the
        background ledger.
        """
        ack_latencies: List[int] = []
        for i in range(taken):
            vpn, page_offset, chunk_size, payload = chunks[position + i]
            for replica_index, replica_local in self._replicas.replicas(vpn):
                if self._device_state[replica_index] != "active":
                    continue
                replica = self.devices[replica_index]
                replica_vaddr = replica_local * self.page_size + page_offset
                try:
                    replica.clock.advance_to(self.clock.now)
                    result = replica.store(replica_vaddr, chunk_size, payload)
                except DeviceLostError as err:
                    self._replica_lag_ns.add(err.latency_ns)
                    self._note_loss(replica_index, err.latency_ns)
                    continue
                self._ladder.note_success(LPN(replica_index))
                self._replica_writes.add()
                ack_latencies.append(result.latency_ns)
        if not ack_latencies:
            return 0
        acks = sorted([primary_latency_ns] + ack_latencies)
        quorum = min(self.fleet_config.effective_write_quorum, len(acks))
        foreground = max(acks[quorum - 1], primary_latency_ns)
        self._replica_lag_ns.add(sum(acks) - foreground)
        return foreground - primary_latency_ns

    # ------------------------------------------------------------------ #
    # Failover
    # ------------------------------------------------------------------ #

    @effects("MUTATES_STATE", "MUTATES_STATS")
    def _note_failed_device(self, device_index: int) -> None:
        self._device_state[device_index] = "failed"
        self._device_losses.add()

    def _failover(self, device_index: int) -> None:
        """Declare a device failed: promote, re-replicate, relocate."""
        detected_ns = self.clock.now
        self._note_failed_device(device_index)
        # The loss may have been observed on any path (access, replica
        # write, fence); make the fail-stop explicit and idempotent.
        self.devices[device_index].ssd.fail_stop()
        promoted = 0
        repaired = 0
        recovery_ns = 0
        # 1. Replicated pages with a copy on the dead device: drop the
        # copy, promote a survivor when the primary died, and restore
        # the replication factor onto a spare survivor.
        for vpn in self._replicas.pages_with_copy_on(device_index):
            copies = self._replicas.copies(vpn)
            primary_device = copies[0][0]
            self._replicas.record_loss(vpn, device_index)
            if primary_device == device_index:
                survivors = self._replicas.copies(vpn)
                if not survivors:
                    # Every copy died (repeated losses outran repair);
                    # step 2 relocates it and charges the durable loss.
                    self._replicas.discard(vpn)
                    continue
                new_primary, new_local = survivors[0]
                self._replicas.promote(vpn, new_primary)
                self._local_regions.pop((device_index, copies[0][1]), None)
                self._router.remap(vpn, new_primary, new_local)
                promoted += 1
            if self.fleet_config.re_replicate:
                spare = self._spare_device_for(vpn)
                if spare is not None:
                    try:
                        recovery_ns += self._re_replicate(vpn, spare)
                    except DeviceLostError:
                        # A second device died mid-repair; its own
                        # detection will declare it — skip this repair.
                        continue
                    repaired += 1
        # 2. Sole-copy pages whose only home was the dead device:
        # relocate to fresh zeroed pages on survivors and count the loss.
        volatile_before = self._volatile_lost.value
        durable_before = self._durable_lost.value
        for vpn, local in self._router.pages_on(device_index):
            self._local_regions.pop((device_index, local), None)
            if self._page_persist.get(vpn, False):
                self._lose_durable_page(vpn)
            else:
                self._lose_volatile_page(vpn)
        detection_ns = self._loss_observed_ns.get(device_index, 0)
        event = FailoverEvent(
            device=device_index,
            detected_ns=detected_ns,
            detection_ns=detection_ns,
            pages_promoted=promoted,
            pages_re_replicated=repaired,
            volatile_pages_lost=self._volatile_lost.value - volatile_before,
            durable_pages_lost=self._durable_lost.value - durable_before,
            recovery_ns=recovery_ns,
        )
        self.failover_events.append(event)
        self._detection_total.add(detection_ns)
        self._recovery_total.add(recovery_ns)
        # Redundancy restoration runs off the critical path.
        self.charge_background(recovery_ns)

    def _spare_device_for(self, vpn: int) -> Optional[int]:
        holders = {device for device, _local in self._replicas.copies(vpn)}
        for candidate in self.active_indices():
            if candidate not in holders:
                return candidate
        return None

    def _re_replicate(self, vpn: int, target_index: int) -> int:
        """Copy a page's primary onto a spare survivor (block path)."""
        source_index, source_local = self._replicas.copies(vpn)[0]
        source = self.devices[source_index]
        target = self.devices[target_index]
        # Local pages are their own device-level lpns — sanctioned cast.
        data, read_cost = source.ssd.read_page_block(LPN(source_local))
        new_local = self._allocate_local(target_index, True, f"repair:v{vpn}")
        write_cost = target.ssd.write_page_block(LPN(new_local), data)
        self._replicas.record_repair(vpn, target_index, new_local)
        return read_cost + write_cost

    @effects("MUTATES_STATE", "MUTATES_STATS")
    def _lose_volatile_page(self, vpn: int) -> None:
        self._relocate_lost_page(vpn, persist=False)
        self._volatile_lost.add()

    @effects("MUTATES_STATE", "MUTATES_STATS")
    def _lose_durable_page(self, vpn: int) -> None:
        self._relocate_lost_page(vpn, persist=True)
        self._durable_lost.add()

    def _relocate_lost_page(self, vpn: int, persist: bool) -> None:
        """Repoint a sole-copy page to a fresh zeroed page on a survivor."""
        survivor = self._pick_active(self._router.preferred_device(vpn))
        local = self._allocate_local(survivor, persist, f"relocate:v{vpn}")
        self._router.remap(vpn, survivor, local)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def fleet_summary(self) -> Dict[str, int]:
        """Headline failover/replication metrics for reports."""
        return {
            "num_devices": self.fleet_config.num_devices,
            "replication_factor": self.fleet_config.replication_factor,
            "write_quorum": self.fleet_config.effective_write_quorum,
            "active_devices": len(self.active_indices()),
            "device_losses": self._device_losses.value,
            "pages_promoted": sum(
                event.pages_promoted for event in self.failover_events
            ),
            "pages_re_replicated": sum(
                event.pages_re_replicated for event in self.failover_events
            ),
            "volatile_pages_lost": self._volatile_lost.value,
            "durable_pages_lost": self._durable_lost.value,
            "detection_ns": self._detection_total.value,
            "recovery_ns": self._recovery_total.value,
            "replica_writes": self._replica_writes.value,
            "replica_lag_ns": self._replica_lag_ns.value,
        }
