"""Figures 11 and 12: Redis/YCSB latency (§5.4).

Workloads B (95r/5u, Zipfian) and D (95r/5i, latest) against the KV store,
sweeping the working-set : DRAM ratio at a fixed SSD:DRAM ratio of 256.

* Fig. 11 reports the 99th-percentile latency — the paper sees FlatFlash
  2.0-2.8x under UnifiedMMap and 1.8-2.7x under TraditionalStack, because
  the adaptive promotion avoids polluting DRAM with low-reuse pages.
* Fig. 12 reports the mean latency plus the (DRAM + SSD-Cache) hit ratio —
  FlatFlash 1.1-1.4x / 1.2-3.2x better.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.report import Table
from repro.apps.kvstore import KVStore, run_ycsb
from repro.experiments.common import ExperimentResult, build_system, scaled_config
from repro.sweep.model import CellResult, markdown_block
from repro.workloads.ycsb import RECORD_SIZE, WORKLOADS

EVALUATED = ("TraditionalStack", "UnifiedMMap", "FlatFlash")


def run(
    workload_names: Optional[List[str]] = None,
    ws_ratios: Optional[List[int]] = None,
    dram_pages: int = 32,
    ssd_to_dram: int = 256,
    num_ops: int = 8_000,
    theta: float = 0.99,
) -> ExperimentResult:
    """``ws_ratios``: working-set size as a multiple of DRAM size."""
    if workload_names is None:
        workload_names = ["YCSB-B", "YCSB-D"]
    if ws_ratios is None:
        ws_ratios = [4, 8, 16]
    result = ExperimentResult(
        "Figures 11-12", "YCSB tail/mean latency and cache hit ratio"
    )
    for workload_name in workload_names:
        workload = WORKLOADS[workload_name]
        for ratio in ws_ratios:
            records = ratio * dram_pages * 4_096 // RECORD_SIZE
            for name in EVALUATED:
                config = scaled_config(dram_pages=dram_pages, ssd_to_dram=ssd_to_dram)
                system = build_system(name, config)
                capacity = records + max(64, num_ops // 10)  # headroom for inserts
                store = KVStore(system, capacity_records=capacity)
                stats = run_ycsb(
                    store, workload, num_ops=num_ops, num_records=records, theta=theta
                )
                hit_ratio = _memory_hit_ratio(system)
                result.add(
                    workload=workload_name,
                    ws_ratio=ratio,
                    system=name,
                    mean_ns=round(stats.mean, 1),
                    p99_ns=stats.p99,
                    hit_ratio=round(hit_ratio, 3),
                    page_movements=system.page_movements,
                )
    return result


def _memory_hit_ratio(system) -> float:
    """Fraction of accesses served without touching raw flash."""
    counters = system.stats.counters()
    fills = counters.get("ssd.cache_fills", 0)
    faults = counters.get("mem.page_faults", 0)
    loads = counters.get("mem.loads", 0) + counters.get("mem.stores", 0)
    if loads == 0:
        return 0.0
    flash_touches = fills + faults
    return max(0.0, 1.0 - flash_touches / loads)


def render(result: ExperimentResult) -> Table:
    table = Table(
        "Figures 11-12: YCSB latency (ns) and hit ratio",
        ["Workload", "WS:DRAM", "System", "Mean (ns)", "p99 (ns)", "Hit ratio", "Movements"],
    )
    for row in result.rows:
        table.add_row(
            row["workload"],
            f"{row['ws_ratio']}x",
            row["system"],
            row["mean_ns"],
            row["p99_ns"],
            row["hit_ratio"],
            row["page_movements"],
        )
    return table


def run_cdf(
    workload_name: str = "YCSB-B",
    ws_ratio: int = 8,
    dram_pages: int = 32,
    num_ops: int = 6_000,
) -> Table:
    """Latency CDF table (Fig. 11 is a tail plot; this is its raw shape).

    One row per log2 latency bucket, one column per system, cells are the
    cumulative fraction of requests completing within the bucket bound.
    """
    from repro.sim.stats import Histogram

    workload = WORKLOADS[workload_name]
    records = ws_ratio * dram_pages * 4_096 // RECORD_SIZE
    histograms = {}
    for name in EVALUATED:
        config = scaled_config(dram_pages=dram_pages, ssd_to_dram=256)
        system = build_system(name, config)
        store = KVStore(system, capacity_records=records + 512)
        stats = run_ycsb(store, workload, num_ops=num_ops, num_records=records)
        histogram = Histogram(name, base_ns=1_000, num_buckets=9)
        histogram.extend(stats.samples)
        histograms[name] = histogram
    table = Table(
        f"Latency CDF, {workload_name} (cumulative fraction <= bound)",
        ["Latency <=", *EVALUATED],
    )
    for bucket in range(9):
        bound_us = histograms[EVALUATED[0]].bucket_bound_ns(bucket) / 1_000
        table.add_row(
            f"{bound_us:g} us",
            *(f"{histograms[name].cdf()[bucket]:.3f}" for name in EVALUATED),
        )
    return table


def tail_latency_reduction(result: ExperimentResult, baseline: str) -> float:
    """Max p99 reduction of FlatFlash vs a baseline across the sweep."""
    best = 0.0
    keys = {(row["workload"], row["ws_ratio"]) for row in result.rows}
    for workload, ratio in keys:
        flat = result.filtered(workload=workload, ws_ratio=ratio, system="FlatFlash")[0]
        base = result.filtered(workload=workload, ws_ratio=ratio, system=baseline)[0]
        if flat["p99_ns"]:
            best = max(best, base["p99_ns"] / flat["p99_ns"])
    return round(best, 2)


# --------------------------------------------------------------- sweep cell

SECTION = (
    "## Figures 11 & 12 — YCSB on the KV store\n",
    "Paper: p99 reduced 2.0-2.8x vs UnifiedMMap and 1.8-2.7x vs\n"
    "TraditionalStack (Fig. 11); mean improved 1.1-1.4x / 1.2-3.2x with\n"
    "hit-ratio lines (Fig. 12); page movements sharply lower.\n",
)


def cell() -> CellResult:
    result = run()
    vs_unified = tail_latency_reduction(result, "UnifiedMMap")
    vs_traditional = tail_latency_reduction(result, "TraditionalStack")
    return CellResult(
        sections=[
            *SECTION,
            markdown_block(render(result).render()),
            "Measured max p99 reductions: "
            f"vs UnifiedMMap {vs_unified}x, "
            f"vs TraditionalStack {vs_traditional}x\n",
            markdown_block(run_cdf().render()),
        ],
        rows=result.rows,
        metrics={
            "p99_reduction_vs_unifiedmmap": float(vs_unified),
            "p99_reduction_vs_traditional": float(vs_traditional),
        },
    )


if __name__ == "__main__":
    outcome = run()
    render(outcome).print()
    for baseline in ("UnifiedMMap", "TraditionalStack"):
        print(
            f"\nmax p99 reduction vs {baseline}:",
            tail_latency_reduction(outcome, baseline),
        )
