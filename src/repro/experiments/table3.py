"""Table 3: cost-effectiveness of FlatFlash vs DRAM-only (§5.7).

Each workload is rerun with its entire working set resident in DRAM; the
performance ratio (slowdown), the configuration cost ratio (cost saving)
and their quotient (cost-effectiveness, i.e. normalized performance per
dollar) make one row.  Capacities are translated to paper-scale dollars by
anchoring the experiment's DRAM to the paper's 2 GB host DRAM.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.analysis.cost import DollarCostModel
from repro.analysis.report import Table
from repro.apps.database import run_oltp
from repro.apps.graph_analytics import GraphEngine
from repro.apps.kvstore import KVStore, run_ycsb
from repro.experiments.common import ExperimentResult, build_system, scaled_config
from repro.sweep.model import CellResult, markdown_block
from repro.workloads.graphs import power_law_graph
from repro.workloads.gups import run_gups
from repro.workloads.oltp import WORKLOADS as OLTP_WORKLOADS
from repro.workloads.ycsb import RECORD_SIZE, WORKLOADS as YCSB_WORKLOADS

PAPER = {
    "GUPS": (8.9, 14.6, 1.6),
    "PageRank": (11.0, 14.6, 1.3),
    "ConnectedComponent": (6.9, 14.6, 2.1),
    "YCSB-B": (6.1, 15.0, 2.5),
    "YCSB-D": (5.5, 15.0, 2.7),
    "TPCC": (1.4, 2.4, 1.7),
    "TPCB": (1.9, 2.6, 1.4),
    "TATP": (1.2, 4.5, 3.8),
}

#: Anchor: the experiment's hybrid DRAM maps to the paper's 2 GB host DRAM.
PAPER_DRAM_GB = 2.0

#: Application compute per operation (ns) — request processing in Redis,
#: RNG/loop work in GUPS.  The paper's slowdowns are whole-application, so
#: the memory-latency ratio is damped by this per-op CPU time.
THINK_NS = {"GUPS": 3_000, "YCSB-B": 4_000, "YCSB-D": 4_000}


def _run_workload(name: str, system) -> int:
    """Run one workload; returns elapsed simulated ns.  The mapped dataset
    is sized by the *workload*, identical across systems."""
    rng = np.random.default_rng(3)
    think = THINK_NS.get(name, 0)
    if name == "GUPS":
        region = system.mmap(384, name="gups")
        elapsed = run_gups(system, region, 6_000, rng=rng).elapsed_ns
        return elapsed + 6_000 * think
    if name in ("PageRank", "ConnectedComponent"):
        graph = power_law_graph(2_000, avg_degree=12, seed=55)
        engine = GraphEngine(system, graph)
        start = system.clock.now
        if name == "PageRank":
            engine.pagerank(iterations=2)
        else:
            engine.connected_components(max_iterations=2)
        return system.clock.now - start
    if name.startswith("YCSB"):
        records = 384 * 4_096 // RECORD_SIZE
        store = KVStore(system, capacity_records=records + 1_024)
        start = system.clock.now
        run_ycsb(store, YCSB_WORKLOADS[name], num_ops=5_000, num_records=records)
        return (system.clock.now - start) + 5_000 * think
    if name in OLTP_WORKLOADS:
        outcome = run_oltp(
            system,
            OLTP_WORKLOADS[name],
            num_transactions=480,
            num_threads=8,
            table_pages=256,
        )
        return outcome.elapsed_ns
    raise ValueError(f"unknown workload {name!r}")


def _dataset_pages(name: str) -> int:
    if name == "GUPS":
        return 384
    if name in ("PageRank", "ConnectedComponent"):
        graph = power_law_graph(2_000, avg_degree=12, seed=55)
        elements = graph.num_edges + 2 * (graph.num_vertices + 1)
        return -(-elements * 8 // 4_096)
    if name.startswith("YCSB"):
        return 384 + 16
    return 256 + 64 + 1  # OLTP: table + log + slack


def run(workloads: Optional[List[str]] = None, dram_pages: int = 48) -> ExperimentResult:
    if workloads is None:
        workloads = list(PAPER)
    model = DollarCostModel()
    gb_per_page = PAPER_DRAM_GB / dram_pages
    result = ExperimentResult("Table 3", "Cost-effectiveness vs DRAM-only")
    for name in workloads:
        dataset_pages = _dataset_pages(name)
        hybrid = build_system(
            "FlatFlash",
            scaled_config(dram_pages=dram_pages, ssd_to_dram=128, ssd_cache_pages=64),
        )
        flat_ns = _run_workload(name, hybrid)
        dram_only = build_system(
            "DRAM-only",
            scaled_config(dram_pages=dataset_pages + 64, ssd_to_dram=4),
        )
        dram_ns = _run_workload(name, dram_only)
        slowdown = flat_ns / dram_ns if dram_ns else 0.0
        dataset_gb = dataset_pages * gb_per_page
        # The hybrid box provisions SSD for the dataset (plus headroom),
        # not for the largest device on the market.
        hybrid_cost = model.hybrid_cost(
            dram_gb=dram_pages * gb_per_page,
            ssd_gb=dataset_gb * 1.25,
        )
        saving = model.dram_only_cost(dataset_gb) / hybrid_cost
        paper_slow, paper_saving, paper_ce = PAPER[name]
        result.add(
            workload=name,
            slowdown=round(slowdown, 2),
            cost_saving=round(saving, 2),
            cost_effectiveness=round(saving / slowdown, 2) if slowdown else 0.0,
            paper_slowdown=paper_slow,
            paper_saving=paper_saving,
            paper_ce=paper_ce,
        )
    return result


def render(result: ExperimentResult) -> Table:
    table = Table(
        "Table 3: FlatFlash vs DRAM-only",
        [
            "Workload",
            "Slowdown",
            "Cost saving",
            "Cost-effectiveness",
            "Paper (slow/save/ce)",
        ],
    )
    for row in result.rows:
        table.add_row(
            row["workload"],
            f"{row['slowdown']}x",
            f"{row['cost_saving']}x",
            f"{row['cost_effectiveness']}x",
            f"{row['paper_slowdown']}/{row['paper_saving']}/{row['paper_ce']}",
        )
    return table


# --------------------------------------------------------------- sweep cell

SECTION = (
    "## Table 3 — cost-effectiveness vs DRAM-only\n",
    "Paper: FlatFlash 1.2-11x slower, 2.4-15x cheaper, 1.3-3.8x better\n"
    "performance per dollar.  The qualitative conclusion — hybrid wins on\n"
    "perf/$ for every workload — reproduces.\n",
)


def cell() -> CellResult:
    result = run()
    return CellResult(
        sections=[*SECTION, markdown_block(render(result).render())],
        rows=result.rows,
        metrics={
            "max_cost_effectiveness": max(
                float(row["cost_effectiveness"]) for row in result.rows
            ),
        },
    )


if __name__ == "__main__":
    render(run()).print()
