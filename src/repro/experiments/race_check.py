"""Schedule-perturbation determinism check over the seed OLTP config.

The dynamic half of the simrace pass (:mod:`repro.sim.race`) replays the
smallest multi-threaded scenario we have — the Fig. 14 OLTP engine on
the default :func:`~repro.experiments.common.scaled_config` — under N
seeded same-timestamp schedules and diffs the final stats snapshots
against the unperturbed FIFO baseline.

**What must be byte-identical** (and is asserted here): every stat that
counts logical work — commits, loads/stores, fault/promotion counts.
These are conservation laws; a diff under a permuted schedule means a
lost or duplicated update (exactly the bug class SR001 flags
statically).

**What legitimately varies** (documented, not failed): stats whose value
depends on *when* an access happens relative to the others.

* ``result.elapsed_ns`` — the makespan depends on which process wins a
  same-timestamp tie and therefore on how lock waits overlap.
* ``result.contention`` / ``*.ratio`` — whether an acquire finds its
  lock held is a property of the interleaving.
* ``*.mean_ns`` — per-access latency depends on the cache state the
  access happens to see.
* ``flash.page_programs`` / ``ftl.host_writes`` / ``mem.pages_out`` /
  ``pcie.*`` on the block systems — DRAM eviction order changes which
  dirty pages are written back, and with them the DMA/flash traffic.

A diff *outside* this allowlist fails the check (exit 1).

The harness also runs one recorded pass and prints the Eraser-style
lockset report.  Under cooperative scheduling a same-slice update is
atomic, so an empty-lockset conflict here is a *watch item* (it becomes
a real race the moment a yield lands between read and write), not an
error.

Run it with ``python -m repro race`` or ``make race``.
"""

from __future__ import annotations

import argparse
from typing import Callable, Dict, List, Optional

from repro.apps.database import LoggingScheme, run_oltp
from repro.experiments.common import build_system, scaled_config
from repro.sim.race import (
    AccessRecorder,
    PerturbationReport,
    SnapshotDiff,
    run_perturbed,
)
from repro.workloads.oltp import TransactionSpec

#: The tiny workload: enough concurrency to contend, small enough that
#: the whole sweep stays in the seconds range.
TINY_SPEC = TransactionSpec(
    name="race-tiny",
    record_reads=2,
    record_writes=1,
    log_bytes_min=128,
    log_bytes_max=256,
    compute_ns=500,
)
TINY_TRANSACTIONS = 32
TINY_THREADS = 4

#: The systems whose DES schedules are worth perturbing (DRAM-only has no
#: storage-path state to race on).
SYSTEMS = ("FlatFlash", "UnifiedMMap", "TraditionalStack")

#: Exact stat keys that legitimately depend on the schedule.
SCHEDULE_DEPENDENT_KEYS = frozenset(
    {
        "result.elapsed_ns",
        "result.contention",
        "flash.page_programs",
        "ftl.host_writes",
        "mem.pages_out",
    }
)

#: Key fragments that mark a stat as legitimately schedule-dependent.
SCHEDULE_DEPENDENT_MARKERS = (".mean_ns", ".ratio", "pcie.")


def is_schedule_dependent(key: str) -> bool:
    """Is ``key`` on the documented schedule-dependent allowlist?"""
    if key in SCHEDULE_DEPENDENT_KEYS:
        return True
    return any(marker in key for marker in SCHEDULE_DEPENDENT_MARKERS)


def oltp_scenario(
    system_name: str, scheme: LoggingScheme
) -> Callable[[Optional[int]], Dict[str, object]]:
    """A :func:`run_perturbed` scenario: fresh system, tiny OLTP run."""

    def scenario(seed: Optional[int]) -> Dict[str, object]:
        system = build_system(system_name, scaled_config())
        result = run_oltp(
            system,
            TINY_SPEC,
            TINY_TRANSACTIONS,
            TINY_THREADS,
            scheme=scheme,
            sim_seed=seed,
        )
        snapshot: Dict[str, object] = dict(system.stats.snapshot())
        snapshot["result.elapsed_ns"] = result.elapsed_ns
        snapshot["result.contention"] = result.log_lock_contention
        return snapshot

    return scenario


def unexpected_diffs(report: PerturbationReport) -> List[SnapshotDiff]:
    """Diffs on stats that should have been schedule-invariant."""
    return [diff for diff in report.diffs if not is_schedule_dependent(diff.key)]


def run_race_check(seeds: int = 5, verbose: bool = True) -> int:
    """Perturb every system/scheme combination; returns a process exit code."""
    failures: List[SnapshotDiff] = []
    for system_name in SYSTEMS:
        for scheme in (LoggingScheme.CENTRALIZED, LoggingScheme.PER_TRANSACTION):
            report = run_perturbed(oltp_scenario(system_name, scheme), seeds=seeds)
            bad = unexpected_diffs(report)
            failures.extend(bad)
            expected = len(report.diffs) - len(bad)
            invariant = sum(
                1 for key in report.baseline if not is_schedule_dependent(key)
            )
            if verbose:
                print(
                    f"{system_name:>16} / {scheme.value:<15} seeds={seeds}: "
                    f"{invariant} invariant stat(s) byte-identical, "
                    f"{expected} allowlisted schedule-dependent diff(s), "
                    f"{len(bad)} UNEXPECTED"
                )
            for diff in bad:
                print(
                    f"    UNEXPECTED seed={diff.seed} {diff.key}: "
                    f"baseline={diff.baseline!r} perturbed={diff.perturbed!r}"
                )

    # One recorded pass: Eraser-style lockset report (informational).
    recorder = AccessRecorder()
    system = build_system("FlatFlash", scaled_config())
    run_oltp(
        system,
        TINY_SPEC,
        TINY_TRANSACTIONS,
        TINY_THREADS,
        scheme=LoggingScheme.PER_TRANSACTION,
        recorder=recorder,
    )
    conflicts = recorder.conflicts()
    if verbose:
        print(
            f"access recorder: {len(recorder.records)} access(es) logged, "
            f"{len(conflicts)} empty-lockset conflict(s) "
            f"(atomic per-slice today; watch items for SR001)"
        )
        for conflict in conflicts:
            print(f"    {conflict.describe()}")

    if failures:
        print(f"race check FAILED: {len(failures)} unexpected diff(s)")
        return 1
    print("race check passed: all invariant stats byte-identical across seeds")
    return 0


def positive_int(text: str) -> int:
    """argparse type for ``--seeds``: a strictly positive integer."""
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro race",
        description="Replay the tiny OLTP config under perturbed DES schedules.",
    )
    parser.add_argument(
        "--seeds",
        type=positive_int,
        default=5,
        help="number of perturbed schedules per system/scheme (default 5)",
    )
    args = parser.parse_args(argv)
    return run_race_check(seeds=args.seeds)


if __name__ == "__main__":
    raise SystemExit(main())
