"""Device-technology study: FlatFlash from flash to NVM-class latencies.

Extends Fig. 14d's device-latency sweep beyond the database: the paper's
related-work section argues the FlatFlash techniques "shed light on the
unified DRAM-NVM hierarchy" as devices get faster (Z-NAND, 3D-XPoint,
PCM).  This experiment runs GUPS and YCSB-B across device profiles and
reports how FlatFlash's advantage over paging evolves: the faster the
device, the more the *paging software path* (not the medium) dominates the
baselines, so FlatFlash's direct access wins by more.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.report import Table
from repro.apps.kvstore import KVStore, run_ycsb
from repro.experiments.common import ExperimentResult, build_system, scaled_config
from repro.sweep.model import CellResult, markdown_block
from repro.workloads.gups import run_gups
from repro.workloads.ycsb import RECORD_SIZE, YCSB_B


@dataclass(frozen=True)
class DeviceProfile:
    """A storage-medium generation."""

    name: str
    read_page_ns: int
    program_page_ns: int


#: Generations the paper cites: commodity flash, ultra-low-latency flash
#: (Z-SSD / Z-NAND), and 3D-XPoint/PCM-class NVM.
PROFILES = [
    DeviceProfile("NAND flash", 60_000, 600_000),
    DeviceProfile("Low-latency flash", 20_000, 16_000),
    DeviceProfile("Z-NAND", 3_000, 10_000),
    DeviceProfile("3D-XPoint class", 350, 1_000),
]


def run(
    profiles: Optional[List[DeviceProfile]] = None,
    dram_pages: int = 32,
    num_ops: int = 5_000,
) -> ExperimentResult:
    if profiles is None:
        profiles = list(PROFILES)
    result = ExperimentResult(
        "Device technology", "FlatFlash vs UnifiedMMap across device generations"
    )
    for profile in profiles:
        for workload in ("GUPS", "YCSB-B"):
            elapsed: Dict[str, int] = {}
            for name in ("UnifiedMMap", "FlatFlash"):
                config = scaled_config(
                    dram_pages=dram_pages,
                    ssd_to_dram=256,
                    flash_read_page_ns=profile.read_page_ns,
                    flash_program_page_ns=profile.program_page_ns,
                )
                system = build_system(name, config)
                start = system.clock.now
                if workload == "GUPS":
                    region = system.mmap(dram_pages * 16, name="gups")
                    run_gups(system, region, num_ops, rng=np.random.default_rng(3))
                else:
                    records = 8 * dram_pages * 4_096 // RECORD_SIZE
                    store = KVStore(system, capacity_records=records + 512)
                    run_ycsb(store, YCSB_B, num_ops=num_ops, num_records=records)
                elapsed[name] = system.clock.now - start
            result.add(
                device=profile.name,
                read_us=profile.read_page_ns / 1_000,
                workload=workload,
                unified_ms=round(elapsed["UnifiedMMap"] / 1e6, 2),
                flatflash_ms=round(elapsed["FlatFlash"] / 1e6, 2),
                speedup=round(elapsed["UnifiedMMap"] / elapsed["FlatFlash"], 2),
            )
    return result


def render(result: ExperimentResult) -> Table:
    table = Table(
        "Device-technology study: FlatFlash speedup over UnifiedMMap",
        ["Device", "Read (us)", "Workload", "UnifiedMMap (ms)", "FlatFlash (ms)", "Speedup"],
    )
    for row in result.rows:
        table.add_row(
            row["device"],
            row["read_us"],
            row["workload"],
            row["unified_ms"],
            row["flatflash_ms"],
            f"{row['speedup']}x",
        )
    return table


# --------------------------------------------------------------- sweep cell

SECTION = (
    "## Extension — device-technology study (§6 outlook)\n",
    "Flash -> Z-NAND -> 3D-XPoint-class profiles: the faster the medium,\n"
    "the more the paging software path dominates the baselines, so\n"
    "FlatFlash's direct byte access wins by more — the paper's argument\n"
    "that these techniques carry over to DRAM-NVM hierarchies.\n",
)


def cell() -> CellResult:
    result = run()
    return CellResult(
        sections=[*SECTION, markdown_block(render(result).render())],
        rows=result.rows,
        metrics={
            "max_speedup": max(float(row["speedup"]) for row in result.rows),
        },
    )


if __name__ == "__main__":
    render(run()).print()
