"""Shared experiment plumbing.

All experiments run at reduced scale but preserve the paper's ratios
(SSD:DRAM, working-set:DRAM, SSD-Cache fraction).  ``scaled_config`` builds
a configuration from those ratios; ``build_system`` instantiates any of the
evaluated systems by name.

Experiments default to ``track_data=False``: performance sweeps do not
need real payloads, and skipping them makes the harness severalfold
faster.  Correctness of data movement is covered by the test suite, which
runs with payloads on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.baselines import DRAMOnly, TraditionalStack, UnifiedMMap
from repro.config import FlatFlashConfig, GeometryConfig
from repro.core.hierarchy import FlatFlash
from repro.core.memory_system import MemorySystem

#: The systems §5 compares, in the paper's order.
SYSTEMS: Dict[str, Callable[[FlatFlashConfig], MemorySystem]] = {
    "TraditionalStack": TraditionalStack,
    "UnifiedMMap": UnifiedMMap,
    "FlatFlash": FlatFlash,
    "DRAM-only": DRAMOnly,
}


def scaled_config(
    dram_pages: int = 64,
    ssd_to_dram: int = 512,
    ssd_cache_ratio: float = 0.00125,
    track_data: bool = False,
    **overrides: object,
) -> FlatFlashConfig:
    """A configuration from the paper's capacity ratios at reduced scale."""
    if dram_pages <= 0:
        raise ValueError(f"dram_pages must be > 0, got {dram_pages}")
    if ssd_to_dram <= 0:
        raise ValueError(f"ssd_to_dram must be > 0, got {ssd_to_dram}")
    geometry = GeometryConfig(
        dram_pages=dram_pages,
        ssd_pages=dram_pages * ssd_to_dram,
        ssd_cache_ratio=ssd_cache_ratio,
        flash_pages_per_block=32,
    )
    config = FlatFlashConfig(geometry=geometry, track_data=track_data)
    for name, value in overrides.items():
        if hasattr(config.geometry, name):
            setattr(config.geometry, name, value)
        elif hasattr(config.latency, name):
            setattr(config.latency, name, value)
        elif hasattr(config, name):
            setattr(config, name, value)
        else:
            raise TypeError(f"unknown config field {name!r}")
    return config.validate()


def build_system(name: str, config: FlatFlashConfig) -> MemorySystem:
    """Instantiate one of the evaluated systems by its paper name."""
    try:
        factory = SYSTEMS[name]
    except KeyError:
        raise ValueError(f"unknown system {name!r}; choose from {sorted(SYSTEMS)}") from None
    return factory(config)


@dataclass
class ExperimentResult:
    """Structured output of one experiment: rows plus free-form series."""

    experiment: str
    description: str
    rows: List[Dict[str, object]] = field(default_factory=list)

    def add(self, **cells: object) -> None:
        self.rows.append(cells)

    def column(self, key: str) -> List[object]:
        return [row[key] for row in self.rows]

    def filtered(self, **match: object) -> List[Dict[str, object]]:
        out = []
        for row in self.rows:
            if all(row.get(k) == v for k, v in match.items()):
                out.append(row)
        return out
