"""Table 1: summary of FlatFlash improvements vs UnifiedMMap.

Re-runs a reduced version of every §5 workload on FlatFlash and
UnifiedMMap and reports the average performance improvement plus the SSD
lifetime improvement (flash pages programmed), the two columns of the
paper's Table 1.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.analysis.lifetime import flash_programs
from repro.analysis.report import Table
from repro.apps.database import run_oltp
from repro.apps.filesystem import FileSystemKind, make_filesystem
from repro.apps.graph_analytics import GraphEngine
from repro.apps.kvstore import KVStore, run_ycsb
from repro.experiments.common import ExperimentResult, build_system, scaled_config
from repro.sweep.model import CellResult, markdown_block
from repro.workloads.filebench import workload_by_name
from repro.workloads.graphs import power_law_graph
from repro.workloads.gups import run_gups
from repro.workloads.oltp import WORKLOADS as OLTP_WORKLOADS
from repro.workloads.ycsb import RECORD_SIZE, WORKLOADS as YCSB_WORKLOADS

PAPER_ROWS = [
    ("HPC Challenge", "GUPS", 1.6, 1.3),
    ("Graph Analytics", "PageRank", 1.3, 1.5),
    ("Graph Analytics", "ConnectedComponent", 1.5, 1.9),
    ("Key-Value Store", "YCSB-B", 2.1, 1.3),
    ("Key-Value Store", "YCSB-D", 2.2, 1.3),
    ("File Systems", "CreateFile", 7.4, 5.3),  # midpoints of the quoted ranges
    ("File Systems", "VarMail", 4.7, 5.0),
    ("Transactional DB", "TPCC", 1.9, 1.0),
    ("Transactional DB", "TPCB", 2.8, 1.0),
    ("Transactional DB", "TATP", 1.3, 1.0),
]


def _pair(config_kwargs: dict) -> tuple:
    """(UnifiedMMap system, FlatFlash system) with identical configs."""
    unified = build_system("UnifiedMMap", scaled_config(**config_kwargs))
    flat = build_system("FlatFlash", scaled_config(**config_kwargs))
    return unified, flat


def _gups_pair() -> tuple:
    elapsed = []
    programs = []
    for system in _pair({"dram_pages": 48, "ssd_to_dram": 128}):
        region = system.mmap(48 * 16, name="gups")
        outcome = run_gups(system, region, 6_000, rng=np.random.default_rng(12))
        elapsed.append(outcome.elapsed_ns)
        programs.append(flash_programs(system))
    return elapsed, programs


def _graph_pair(algorithm: str) -> tuple:
    graph = power_law_graph(2_500, avg_degree=12, seed=77)
    elapsed = []
    programs = []
    for system in _pair({"dram_pages": 24, "ssd_to_dram": 128}):
        engine = GraphEngine(system, graph)
        start = system.clock.now
        if algorithm == "PageRank":
            engine.pagerank(iterations=2)
        else:
            engine.connected_components(max_iterations=2)
        elapsed.append(system.clock.now - start)
        programs.append(flash_programs(system))
    return elapsed, programs


def _ycsb_pair(workload_name: str) -> tuple:
    workload = YCSB_WORKLOADS[workload_name]
    elapsed = []
    programs = []
    for system in _pair({"dram_pages": 24, "ssd_to_dram": 128}):
        records = 8 * 24 * 4_096 // RECORD_SIZE
        store = KVStore(system, capacity_records=records + 1_024)
        start = system.clock.now
        run_ycsb(store, workload, num_ops=5_000, num_records=records)
        elapsed.append(system.clock.now - start)
        programs.append(flash_programs(system))
    return elapsed, programs


def _fs_pair(workload_name: str) -> tuple:
    elapsed = []
    programs = []
    for system in _pair(
        {"dram_pages": 48, "ssd_to_dram": 64, "ssd_cache_pages": 64}
    ):
        filesystem = make_filesystem(FileSystemKind.EXT4, system)
        stream = workload_by_name(workload_name, 100)
        outcome = filesystem.run(stream)
        elapsed.append(outcome.elapsed_ns)
        programs.append(flash_programs(system))
    return elapsed, programs


def _oltp_pair(workload_name: str) -> tuple:
    spec = OLTP_WORKLOADS[workload_name]
    elapsed = []
    programs = []
    for system in _pair({"dram_pages": 48, "ssd_to_dram": 64, "ssd_cache_pages": 64}):
        outcome = run_oltp(
            system, spec, num_transactions=480, num_threads=8, table_pages=128
        )
        elapsed.append(outcome.elapsed_ns)
        programs.append(flash_programs(system))
    return elapsed, programs


RUNNERS = {
    "GUPS": _gups_pair,
    "PageRank": lambda: _graph_pair("PageRank"),
    "ConnectedComponent": lambda: _graph_pair("ConnectedComponent"),
    "YCSB-B": lambda: _ycsb_pair("YCSB-B"),
    "YCSB-D": lambda: _ycsb_pair("YCSB-D"),
    "CreateFile": lambda: _fs_pair("CreateFile"),
    "VarMail": lambda: _fs_pair("VarMail"),
    "TPCC": lambda: _oltp_pair("TPCC"),
    "TPCB": lambda: _oltp_pair("TPCB"),
    "TATP": lambda: _oltp_pair("TATP"),
}

#: Benchmarks in the paper's row order (the sweep registers one
#: measurement cell per entry, feeding the aggregate ``cell``).
BENCHMARKS = [benchmark for _, benchmark, _, _ in PAPER_ROWS]


def run(
    include: Optional[List[str]] = None,
    pairs: Optional[dict] = None,
) -> ExperimentResult:
    """Build the summary table.

    ``pairs`` optionally supplies pre-measured ``(elapsed, programs)``
    tuples by benchmark name (the sweep engine measures the ten pairs in
    parallel cells and feeds them here); missing benchmarks are measured
    inline.
    """
    result = ExperimentResult("Table 1", "FlatFlash improvements vs UnifiedMMap")
    for app, benchmark, paper_perf, paper_life in PAPER_ROWS:
        if include is not None and benchmark not in include:
            continue
        if pairs is not None and benchmark in pairs:
            pair = pairs[benchmark]
        else:
            pair = RUNNERS[benchmark]()
        (unified_ns, flat_ns), (unified_programs, flat_programs) = pair
        perf = unified_ns / flat_ns if flat_ns else 0.0
        life = (
            unified_programs / flat_programs
            if flat_programs
            else (1.0 if unified_programs == 0 else float(unified_programs))
        )
        result.add(
            application=app,
            benchmark=benchmark,
            paper_perf=paper_perf,
            measured_perf=round(perf, 2),
            paper_lifetime=paper_life,
            measured_lifetime=round(life, 2),
        )
    return result


def render(result: ExperimentResult) -> Table:
    table = Table(
        "Table 1: FlatFlash average improvement over UnifiedMMap",
        ["Application", "Benchmark", "Perf (paper)", "Perf (measured)", "Lifetime (paper)", "Lifetime (measured)"],
    )
    for row in result.rows:
        table.add_row(
            row["application"],
            row["benchmark"],
            f"{row['paper_perf']}x",
            f"{row['measured_perf']}x",
            f"{row['paper_lifetime']}x",
            f"{row['measured_lifetime']}x",
        )
    return table


# --------------------------------------------------------------- sweep cells

SECTION = (
    "## Table 1 — summary vs UnifiedMMap\n",
    "Paper columns reproduced side by side.  Notes: GUPS lifetime\n"
    "overshoots because our per-tx block baseline does not group-commit\n"
    "(the paper's centralized buffer batches log pages), and the graph\n"
    "lifetime is ~1.0 at this scale since both systems barely write.\n",
)


def pair_cell(benchmark: str) -> CellResult:
    """Measure one UnifiedMMap/FlatFlash pair (feeds the aggregate cell)."""
    (unified_ns, flat_ns), (unified_programs, flat_programs) = RUNNERS[benchmark]()
    return CellResult(
        rows=[
            {
                "benchmark": benchmark,
                "unified_ns": unified_ns,
                "flat_ns": flat_ns,
                "unified_programs": unified_programs,
                "flat_programs": flat_programs,
            }
        ],
        metrics={
            "benchmark": benchmark,
            "perf_ratio": float(unified_ns / flat_ns) if flat_ns else 0.0,
        },
    )


def cell(deps) -> CellResult:
    """Assemble the paper's Table 1 from the ten pair cells."""
    pairs = {}
    for dep in deps.values():
        row = dep.rows[0]
        pairs[row["benchmark"]] = (
            (row["unified_ns"], row["flat_ns"]),
            (row["unified_programs"], row["flat_programs"]),
        )
    result = run(pairs=pairs)
    return CellResult(
        sections=[*SECTION, markdown_block(render(result).render())],
        rows=result.rows,
        metrics={
            "perf": {row["benchmark"]: float(row["measured_perf"]) for row in result.rows},
            "lifetime": {
                row["benchmark"]: float(row["measured_lifetime"]) for row in result.rows
            },
        },
    )


if __name__ == "__main__":
    render(run()).print()
