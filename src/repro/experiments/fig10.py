"""Figure 10: graph analytics on power-law graphs vs DRAM size (§5.3).

PageRank and Connected-Component Labeling over two power-law graphs (our
stand-ins for Twitter and Friendster — see DESIGN.md's substitution table)
with the graph several times larger than DRAM.  Expected shape (paper):
FlatFlash 1.1-1.6x (PageRank) and 1.1-2.3x (ConnComp) over UnifiedMMap,
more at higher SSD:DRAM ratios, with fewer page movements.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.report import Table
from repro.apps.graph_analytics import GraphEngine
from repro.experiments.common import ExperimentResult, build_system, scaled_config
from repro.sweep.model import CellResult, markdown_block
from repro.workloads.graphs import CSRGraph, power_law_graph

EVALUATED = ("TraditionalStack", "UnifiedMMap", "FlatFlash")

#: Scaled stand-ins: (name, vertices, avg degree, seed).  Friendster is the
#: larger, slightly denser graph, as in the paper.
#: Ratios keep the per-iteration *vertex state* DRAM-resident (GraphChi's
#: sharding guarantees that in the paper's setup) while the edge data is
#: several times larger than DRAM.
GRAPHS: Dict[str, Tuple[int, float, int]] = {
    "twitter-like": (4_000, 16.0, 101),
    "friendster-like": (5_000, 18.0, 202),
}


def _graph(name: str) -> CSRGraph:
    vertices, degree, seed = GRAPHS[name]
    return power_law_graph(vertices, avg_degree=degree, seed=seed)


def run(
    algorithms: Optional[List[str]] = None,
    graph_names: Optional[List[str]] = None,
    dram_ratios: Optional[List[int]] = None,
    pagerank_iterations: int = 2,
    cc_iterations: int = 2,
) -> ExperimentResult:
    """``dram_ratios`` are graph-footprint : DRAM multiples (bigger = less DRAM)."""
    if algorithms is None:
        algorithms = ["pagerank", "connected-components"]
    if graph_names is None:
        graph_names = list(GRAPHS)
    if dram_ratios is None:
        dram_ratios = [3, 6]
    result = ExperimentResult(
        "Figure 10", "Graph analytics runtime and page movements vs DRAM size"
    )
    for graph_name in graph_names:
        graph = _graph(graph_name)
        footprint_pages = -(-(graph.num_edges + 2 * graph.num_vertices) * 8 // 4_096)
        for algorithm in algorithms:
            for ratio in dram_ratios:
                dram_pages = max(8, footprint_pages // ratio)
                for name in EVALUATED:
                    config = scaled_config(dram_pages=dram_pages, ssd_to_dram=256)
                    system = build_system(name, config)
                    engine = GraphEngine(system, graph, name=graph_name)
                    start = system.clock.now
                    if algorithm == "pagerank":
                        engine.pagerank(iterations=pagerank_iterations)
                    else:
                        engine.connected_components(max_iterations=cc_iterations)
                    result.add(
                        graph=graph_name,
                        algorithm=algorithm,
                        dram_ratio=ratio,
                        system=name,
                        elapsed_ms=round((system.clock.now - start) / 1e6, 2),
                        page_movements=system.page_movements,
                    )
    return result


def render(result: ExperimentResult) -> Table:
    table = Table(
        "Figure 10: graph analytics (simulated ms, page movements)",
        ["Graph", "Algorithm", "Graph:DRAM", "System", "Elapsed (ms)", "Movements"],
    )
    for row in result.rows:
        table.add_row(
            row["graph"],
            row["algorithm"],
            f"{row['dram_ratio']}x",
            row["system"],
            row["elapsed_ms"],
            row["page_movements"],
        )
    return table


def speedup_over(result: ExperimentResult, baseline: str) -> Dict[str, float]:
    """Max FlatFlash speedup over ``baseline`` per algorithm.

    First-appearance iteration order keeps the rendered dict byte-stable
    across processes and hash seeds (the parallel sweep relies on this).
    """
    out: Dict[str, float] = {}
    for algorithm in dict.fromkeys(row["algorithm"] for row in result.rows):
        best = 0.0
        rows = result.filtered(algorithm=algorithm)
        keys = dict.fromkeys((r["graph"], r["dram_ratio"]) for r in rows)
        for graph, ratio in keys:
            flat = result.filtered(
                algorithm=algorithm, graph=graph, dram_ratio=ratio, system="FlatFlash"
            )[0]["elapsed_ms"]
            base = result.filtered(
                algorithm=algorithm, graph=graph, dram_ratio=ratio, system=baseline
            )[0]["elapsed_ms"]
            if flat:
                best = max(best, base / flat)
        out[algorithm] = round(best, 2)
    return out


# --------------------------------------------------------------- sweep cell

SECTION = (
    "## Figure 10 — graph analytics (PageRank, ConnComp)\n",
    "Paper: FlatFlash 1.1-1.6x (PageRank) and 1.1-2.3x (ConnComp) over\n"
    "UnifiedMMap; 1.2-3.3x / 1.3-4.8x over TraditionalStack; benefit\n"
    "grows with the graph:DRAM ratio.  Graphs here are synthetic\n"
    "power-law stand-ins for Twitter/Friendster (DESIGN.md §2).\n",
)


def cell() -> CellResult:
    result = run()
    vs_unified = speedup_over(result, "UnifiedMMap")
    vs_traditional = speedup_over(result, "TraditionalStack")
    return CellResult(
        sections=[
            *SECTION,
            markdown_block(render(result).render()),
            f"Max speedups vs UnifiedMMap: {vs_unified}; "
            f"vs TraditionalStack: {vs_traditional}\n",
        ],
        rows=result.rows,
        metrics={
            "max_speedup_vs_unifiedmmap": {k: float(v) for k, v in vs_unified.items()},
            "max_speedup_vs_traditional": {
                k: float(v) for k, v in vs_traditional.items()
            },
        },
    )


if __name__ == "__main__":
    outcome = run()
    render(outcome).print()
    print("\nmax speedup vs UnifiedMMap:", speedup_over(outcome, "UnifiedMMap"))
    print("max speedup vs TraditionalStack:", speedup_over(outcome, "TraditionalStack"))
