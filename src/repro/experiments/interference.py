"""Workload-interference study (§5.4's tail-latency discussion).

The paper attributes FlatFlash's tail-latency win partly to avoided DRAM
pollution: "Such a policy can avoid pollution in the host DRAM and reduce
the I/O traffic to the SSD, therefore, the performance interference is
reduced."  This experiment makes the interference explicit: a
latency-critical KV workload shares one machine with a GUPS-style
antagonist sweeping random pages.  Under paging, the antagonist's
low-reuse pages keep displacing the KV store's hot set; FlatFlash's
adaptive promotion refuses to promote them, so the victim's tail barely
moves.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.analysis.report import Table
from repro.apps.kvstore import KVStore
from repro.experiments.common import ExperimentResult, build_system, scaled_config
from repro.sweep.model import CellResult, markdown_block
from repro.sim.stats import LatencyStats
from repro.workloads.ycsb import OpType, RECORD_SIZE, YCSB_B, generate_ops

EVALUATED = ("TraditionalStack", "UnifiedMMap", "FlatFlash")


def _run_victim(
    system,
    store: KVStore,
    antagonist_region,
    num_ops: int,
    records: int,
    antagonist_ratio: int,
    rng: np.random.Generator,
) -> LatencyStats:
    """Interleave victim KV ops with antagonist random-page sweeps."""
    stats = LatencyStats("victim")
    antagonist_pages = antagonist_region.num_pages if antagonist_region else 0
    ops = generate_ops(YCSB_B, num_ops, records, seed=31)
    for index, (op, key) in enumerate(ops):
        if antagonist_region is not None and antagonist_ratio:
            for _ in range(antagonist_ratio):
                # Each visit touches a few lines of one page: enough reuse
                # to look referenced to the kernel's reclaim scan, far below
                # Algorithm 1's promotion threshold.
                page = int(rng.integers(0, antagonist_pages))
                for line in range(3):
                    system.load(antagonist_region.page_addr(page, line * 64), 64)
        key = key % store.capacity_records
        if op is OpType.READ:
            _value, latency = store.get(key)
        else:
            latency = store.put(key)
        stats.record(latency)
    return stats


def run(
    dram_pages: int = 32,
    num_ops: int = 4_000,
    antagonist_ratio: int = 2,
) -> ExperimentResult:
    """``antagonist_ratio``: antagonist accesses interleaved per victim op."""
    result = ExperimentResult(
        "Interference", "KV tail latency with a thrashing co-runner"
    )
    records = 4 * dram_pages * 4_096 // RECORD_SIZE
    for name in EVALUATED:
        latencies: Dict[str, LatencyStats] = {}
        for scenario in ("alone", "with antagonist"):
            config = scaled_config(dram_pages=dram_pages, ssd_to_dram=256)
            system = build_system(name, config)
            store = KVStore(system, capacity_records=records + 256)
            antagonist = None
            if scenario == "with antagonist":
                antagonist = system.mmap(dram_pages * 24, name="antagonist")
            latencies[scenario] = _run_victim(
                system,
                store,
                antagonist,
                num_ops,
                records,
                antagonist_ratio,
                np.random.default_rng(5),
            )
        alone = latencies["alone"]
        loaded = latencies["with antagonist"]
        result.add(
            system=name,
            alone_p99_ns=alone.p99,
            loaded_p99_ns=loaded.p99,
            p99_blowup=round(loaded.p99 / alone.p99, 2) if alone.p99 else 0.0,
            alone_mean_ns=round(alone.mean, 1),
            loaded_mean_ns=round(loaded.mean, 1),
        )
    return result


def render(result: ExperimentResult) -> Table:
    table = Table(
        "Interference: YCSB-B victim p99 with a random-sweep antagonist",
        ["System", "p99 alone (ns)", "p99 loaded (ns)", "p99 blow-up", "Mean loaded (ns)"],
    )
    for row in result.rows:
        table.add_row(
            row["system"],
            row["alone_p99_ns"],
            row["loaded_p99_ns"],
            f"{row['p99_blowup']}x",
            row["loaded_mean_ns"],
        )
    return table


# --------------------------------------------------------------- sweep cell

SECTION = (
    "## Extension — workload interference (§5.4's pollution claim)\n",
    "A YCSB-B victim shares the machine with a random-sweep antagonist.\n"
    "FlatFlash keeps both the best absolute victim latency and the\n"
    "smallest degradation: adaptive promotion refuses to admit the\n"
    "antagonist's low-reuse pages into DRAM.\n",
)


def cell() -> CellResult:
    result = run()
    return CellResult(
        sections=[*SECTION, markdown_block(render(result).render())],
        rows=result.rows,
        metrics={
            "p99_blowup": {
                row["system"]: float(row["p99_blowup"]) for row in result.rows
            },
        },
    )


if __name__ == "__main__":
    render(run()).print()
