"""Access-source breakdown: where do memory accesses get served? (Fig. 1)

The paper's motivating figure contrasts the paging world (everything must
reach DRAM first) with FlatFlash's flat space (accesses served wherever
the data lives).  This experiment runs one mixed workload and breaks every
access down by serving location — DRAM, SSD via MMIO, processor cache,
PLB window — with each location's mean latency, per system.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.apps.kvstore import KVStore, run_ycsb
from repro.experiments.common import ExperimentResult, build_system, scaled_config
from repro.sweep.model import CellResult, markdown_block
from repro.workloads.ycsb import RECORD_SIZE, YCSB_B

EVALUATED = ("TraditionalStack", "UnifiedMMap", "FlatFlash")
SOURCES = ("dram", "ssd", "cpu_cache", "plb")


def run(
    dram_pages: int = 32, num_ops: int = 5_000, ws_ratio: int = 8
) -> ExperimentResult:
    result = ExperimentResult(
        "Access breakdown", "Accesses by serving location and mean latency"
    )
    records = ws_ratio * dram_pages * 4_096 // RECORD_SIZE
    for name in EVALUATED:
        config = scaled_config(dram_pages=dram_pages, ssd_to_dram=256)
        system = build_system(name, config)
        store = KVStore(system, capacity_records=records + 256)
        run_ycsb(store, YCSB_B, num_ops=num_ops, num_records=records)
        total = sum(
            system.stats.latency(f"mem.by_source.{source}", keep_samples=False).count
            for source in SOURCES
        )
        for source in SOURCES:
            stats = system.stats.latency(
                f"mem.by_source.{source}", keep_samples=False
            )
            if stats.count == 0:
                continue
            result.add(
                system=name,
                source=source,
                share=round(stats.count / total, 3),
                mean_ns=round(stats.mean, 1),
            )
    return result


def render(result: ExperimentResult) -> Table:
    table = Table(
        "Access breakdown (YCSB-B, working set 8x DRAM)",
        ["System", "Served from", "Share of accesses", "Mean latency (ns)"],
    )
    for row in result.rows:
        table.add_row(
            row["system"], row["source"], f"{row['share']:.1%}", row["mean_ns"]
        )
    return table


# --------------------------------------------------------------- sweep cell

SECTION = (
    "## Extension — access-source breakdown (Fig. 1's story)\n",
    "Where accesses are served under YCSB-B with the working set 8x\n"
    "DRAM: the paging systems funnel everything through DRAM behind the\n"
    "fault path, while FlatFlash serves accesses wherever the data lives\n"
    "— coherent processor cache, DRAM, or the SSD over byte-granular\n"
    "MMIO.\n",
)


def cell() -> CellResult:
    result = run()
    return CellResult(
        sections=[*SECTION, markdown_block(render(result).render())],
        rows=result.rows,
    )


if __name__ == "__main__":
    render(run()).print()
