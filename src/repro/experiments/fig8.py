"""Figure 8: average 64-byte access latency, sequential vs random (§5.1).

The paper maps 2 M pages uniformly over the whole SSD (32 GB - 1 TB, host
DRAM fixed at 2 GB), warms up with random touches, then measures the mean
latency of sequential and random cache-line accesses for the three
systems.  We keep the SSD:DRAM ratios (16x - 512x) at reduced scale.

Expected shape (paper): sequential — FlatFlash ~ UnifiedMMap, both well
ahead of TraditionalStack; random — FlatFlash beats UnifiedMMap by
1.2-1.4x and TraditionalStack by 1.8-2.1x, because byte-granular MMIO
beats migrating whole low-reuse pages.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.analysis.report import Table
from repro.experiments.common import ExperimentResult, build_system, scaled_config
from repro.sweep.model import CellResult, markdown_block
from repro.workloads.synthetic import random_access, sequential_access, warm_up

EVALUATED = ("TraditionalStack", "UnifiedMMap", "FlatFlash")


def run(
    ratios: Optional[List[int]] = None,
    dram_pages: int = 64,
    num_ops: int = 3_000,
    warmup_ops: int = 1_500,
) -> ExperimentResult:
    if ratios is None:
        ratios = [16, 128, 512]  # the paper's 32GB..1TB against 2GB DRAM
    result = ExperimentResult(
        "Figure 8", "Average latency of 64B accesses, sequential and random"
    )
    for ratio in ratios:
        for name in EVALUATED:
            config = scaled_config(dram_pages=dram_pages, ssd_to_dram=ratio)
            system = build_system(name, config)
            # The accessed file spans the SSD (pages uniformly distributed).
            span_pages = min(config.geometry.ssd_pages, dram_pages * ratio) // 2
            region = system.mmap(span_pages, name="span")
            warm_up(system, region, warmup_ops, rng=np.random.default_rng(42))
            seq = sequential_access(system, region, num_ops, rng=np.random.default_rng(7))
            rand = random_access(system, region, num_ops, rng=np.random.default_rng(11))
            result.add(
                ratio=ratio,
                system=name,
                sequential_ns=round(seq.mean, 1),
                random_ns=round(rand.mean, 1),
            )
    return result


def render(result: ExperimentResult) -> Table:
    table = Table(
        "Figure 8: mean 64B access latency (ns) by SSD:DRAM ratio",
        ["SSD:DRAM", "System", "Sequential (ns)", "Random (ns)"],
    )
    for row in result.rows:
        table.add_row(
            f"{row['ratio']}x", row["system"], row["sequential_ns"], row["random_ns"]
        )
    return table


def summarize_speedups(result: ExperimentResult) -> Dict[str, float]:
    """FlatFlash's random-access speedup over each baseline (max over ratios)."""
    speedups: Dict[str, float] = {}
    ratios = sorted({row["ratio"] for row in result.rows})
    for baseline in ("UnifiedMMap", "TraditionalStack"):
        best = 0.0
        for ratio in ratios:
            flat = result.filtered(ratio=ratio, system="FlatFlash")[0]["random_ns"]
            base = result.filtered(ratio=ratio, system=baseline)[0]["random_ns"]
            if flat:
                best = max(best, base / flat)
        speedups[baseline] = best
    return speedups


# --------------------------------------------------------------- sweep cell

SECTION = (
    "## Figure 8 — sequential vs random 64 B access latency\n",
    "Paper: random — FlatFlash 1.2-1.4x under UnifiedMMap's latency and\n"
    "1.8-2.1x under TraditionalStack's; sequential — FlatFlash close to\n"
    "UnifiedMMap with a slight off-critical-path promotion overhead.\n",
)


def cell() -> CellResult:
    result = run()
    speedups = summarize_speedups(result)
    return CellResult(
        sections=[
            *SECTION,
            markdown_block(render(result).render()),
            f"Measured random-access speedups: {speedups}\n",
        ],
        rows=result.rows,
        metrics={"random_speedups": {k: float(v) for k, v in speedups.items()}},
    )


if __name__ == "__main__":
    outcome = run()
    render(outcome).print()
    print("\nFlatFlash random-access speedup:", summarize_speedups(outcome))
