"""Experiment drivers: one module per table/figure of the paper's §5,
plus the extension studies.

Paper results: :mod:`table1`, :mod:`table2`, :mod:`table3`, :mod:`fig8`,
:mod:`fig9`, :mod:`fig10`, :mod:`fig11_12`, :mod:`fig13`, :mod:`fig14`.
Extensions: :mod:`ablations`, :mod:`device_tech`, :mod:`interference`,
:mod:`breakdown`, :mod:`scorecard`.  Each exposes ``run(...)`` returning
an :class:`~repro.experiments.common.ExperimentResult` and a ``render``
helper that prints the paper-shaped table; ``python -m
repro.experiments.<module>`` runs it standalone, and ``python -m repro``
is the umbrella CLI.
"""

from repro.experiments.common import ExperimentResult, SYSTEMS, build_system, scaled_config

__all__ = ["build_system", "scaled_config", "SYSTEMS", "ExperimentResult"]
