"""Reproduction scorecard: every headline claim, checked programmatically.

The abstract of the paper makes five quantitative claims.  This module
re-measures each one and renders a verdict table — the one-page answer to
"did the reproduction work?".

A claim REPRODUCES when the measured factor moves in the paper's direction
and reaches at least the stated fraction of the paper's magnitude
(default: half, since our substrate is a simulator at reduced scale —
shapes must hold, absolute factors only roughly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Mapping, Optional

from repro.analysis.report import Table
from repro.experiments import fig9, fig11_12, fig13, fig14, table3
from repro.experiments.common import ExperimentResult
from repro.sweep.model import CellResult, markdown_block


@dataclass
class Claim:
    """One abstract claim and how to measure it.

    ``key`` is the short stable identifier sweep cells are named by;
    ``paper_low`` is the weakest instance the paper reports for this claim
    (its evaluation quotes ranges, the abstract quotes the best case);
    ``paper_high`` is the headline "up to" factor.
    """

    key: str
    text: str
    paper_low: float
    paper_high: float
    measure: Callable[[], float]


def _memory_intensive() -> float:
    """'improves ... memory-intensive applications by up to 2.3x'."""
    result = fig9.run_fig9a(ratios=[512], dram_pages=32, num_updates=6_000)
    unified = result.filtered(system="UnifiedMMap")[0]["mean_update_ns"]
    flat = result.filtered(system="FlatFlash")[0]["mean_update_ns"]
    return unified / flat


def _tail_latency() -> float:
    """'reduces the tail latency ... by up to 2.8x'."""
    result = fig11_12.run(
        workload_names=["YCSB-B"], ws_ratios=[8, 16], dram_pages=24, num_ops=5_000
    )
    return fig11_12.tail_latency_reduction(result, "UnifiedMMap")


def _database_throughput() -> float:
    """'scales the throughput for transactional database by up to 3.0x'."""
    result = fig14.run_threads(
        workload_names=["TPCB"], thread_counts=[16], transactions_per_thread=50
    )
    flat = result.filtered(system="FlatFlash")[0]["throughput_tps"]
    unified = result.filtered(system="UnifiedMMap")[0]["throughput_tps"]
    return flat / unified


def _metadata_persistence() -> float:
    """'decreases the meta-data persistence overhead ... by up to 18.9x'."""
    result = fig13.run(ops_per_workload=80)
    return max(row["speedup"] for row in result.rows)


def _cost_effectiveness() -> float:
    """'improves the cost-effectiveness by up to 3.8x vs DRAM-only'."""
    result = table3.run()
    return max(row["cost_effectiveness"] for row in result.rows)


CLAIMS: List[Claim] = [
    Claim("gups", "memory-intensive apps up to 2.3x (GUPS)", 1.1, 2.3, _memory_intensive),
    Claim("tail", "tail latency down up to 2.8x (YCSB p99)", 2.0, 2.8, _tail_latency),
    Claim("oltp", "database throughput up to 3.0x (TPCB, 16 threads)", 1.1, 3.0, _database_throughput),
    Claim("metadata", "metadata persistence up to 18.9x (file systems)", 2.6, 18.9, _metadata_persistence),
    Claim("cost", "cost-effectiveness up to 3.8x (vs DRAM-only)", 1.3, 3.8, _cost_effectiveness),
]


def claim_by_key(key: str) -> Claim:
    for claim in CLAIMS:
        if claim.key == key:
            return claim
    raise KeyError(f"unknown claim {key!r}; choose from {[c.key for c in CLAIMS]}")


def run(measured: Optional[Mapping[str, float]] = None) -> ExperimentResult:
    """Measure every claim.  Verdicts:

    * ``STRONG``     — measured reaches half the paper's best case,
    * ``REPRODUCES`` — measured lands inside the paper's reported range,
    * ``PARTIAL``    — the direction holds (>1x) but under the range,
    * ``FAILS``      — no improvement measured.

    ``measured`` optionally supplies pre-computed factors by claim key
    (the sweep engine measures the claims in parallel cells and feeds
    them here); missing claims are measured inline.
    """
    result = ExperimentResult("Scorecard", "headline claims, measured")
    for claim in CLAIMS:
        factor = None if measured is None else measured.get(claim.key)
        if factor is None:
            factor = claim.measure()
        if factor >= claim.paper_high / 2 and factor >= claim.paper_low:
            verdict = "STRONG"
        elif factor >= claim.paper_low:
            verdict = "REPRODUCES"
        elif factor > 1.0:
            verdict = "PARTIAL"
        else:
            verdict = "FAILS"
        result.add(
            claim=claim.text,
            paper_range=f"{claim.paper_low}-{claim.paper_high}x",
            measured=round(factor, 2),
            verdict=verdict,
        )
    return result


def render(result: ExperimentResult) -> Table:
    table = Table(
        "Reproduction scorecard (abstract claims vs the paper's reported ranges)",
        ["Claim", "Paper range", "Measured", "Verdict"],
    )
    for row in result.rows:
        table.add_row(
            row["claim"], row["paper_range"], f"{row['measured']}x", row["verdict"]
        )
    return table


# --------------------------------------------------------------- sweep cells

SECTION = (
    "## Scorecard — the abstract's claims at a glance\n",
    "Verdicts against the paper's *reported ranges* (its evaluation\n"
    "quotes ranges; the abstract quotes the best case): STRONG = at\n"
    "least half the best case, REPRODUCES = inside the range.\n",
)


def claim_cell(claim: str) -> CellResult:
    """Measure one abstract claim (a data-only cell feeding ``cell``)."""
    spec = claim_by_key(claim)
    factor = spec.measure()
    return CellResult(
        rows=[{"claim": claim, "measured": factor}],
        metrics={"claim": claim, "measured": float(factor)},
    )


def cell(deps) -> CellResult:
    """Assign verdicts from the five claim cells and render the table."""
    measured = {}
    for dep in deps.values():
        row = dep.rows[0]
        measured[row["claim"]] = row["measured"]
    result = run(measured)
    return CellResult(
        sections=[*SECTION, markdown_block(render(result).render())],
        rows=result.rows,
        metrics={
            "verdicts": {row["claim"]: row["verdict"] for row in result.rows},
            "measured": {row["claim"]: float(row["measured"]) for row in result.rows},
        },
    )


if __name__ == "__main__":
    render(run()).print()
