"""Figure 9: HPCC-GUPS performance and SSD-Cache sensitivity (§5.2).

* **9a** — GUPS throughput (normalized) and page movements for the three
  systems as the SSD:DRAM ratio grows (paper: FlatFlash 1.5-1.6x over
  UnifiedMMap, 2.5-2.7x over TraditionalStack; 1.3-1.5x fewer page
  movements).
* **9b** — FlatFlash speedup vs the baselines as the SSD-Cache grows
  (SSD:DRAM fixed at 512): the baselines must migrate pages regardless of
  the SSD-Cache, so only FlatFlash benefits.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.analysis.report import Table
from repro.experiments.common import ExperimentResult, build_system, scaled_config
from repro.sweep.model import CellResult, markdown_block
from repro.workloads.gups import run_gups

EVALUATED = ("TraditionalStack", "UnifiedMMap", "FlatFlash")


def run_fig9a(
    ratios: Optional[List[int]] = None,
    dram_pages: int = 64,
    table_multiple: int = 16,
    num_updates: int = 12_000,
) -> ExperimentResult:
    """GUPS with a table ``table_multiple`` x the DRAM (paper: 32 GB vs 2 GB)."""
    if ratios is None:
        ratios = [16, 128, 512]
    result = ExperimentResult("Figure 9a", "GUPS throughput and page movements")
    for ratio in ratios:
        for name in EVALUATED:
            config = scaled_config(dram_pages=dram_pages, ssd_to_dram=ratio)
            system = build_system(name, config)
            table_pages = min(dram_pages * table_multiple, config.geometry.ssd_pages // 2)
            region = system.mmap(table_pages, name="gups-table")
            outcome = run_gups(
                system, region, num_updates, rng=np.random.default_rng(1234)
            )
            result.add(
                ratio=ratio,
                system=name,
                gups=outcome.gups,
                mean_update_ns=round(outcome.mean_update_ns, 1),
                page_movements=outcome.page_movements,
            )
    return result


def run_fig9b(
    cache_ratios: Optional[List[float]] = None,
    dram_pages: int = 32,
    ssd_to_dram: int = 512,
    num_updates: int = 10_000,
) -> ExperimentResult:
    """FlatFlash speedup over the baselines vs SSD-Cache size."""
    if cache_ratios is None:
        cache_ratios = [0.0005, 0.00125, 0.005, 0.02]
    result = ExperimentResult("Figure 9b", "Sensitivity to SSD-Cache size")
    table_pages = dram_pages * 16
    baselines = {}
    for name in ("TraditionalStack", "UnifiedMMap"):
        config = scaled_config(dram_pages=dram_pages, ssd_to_dram=ssd_to_dram)
        system = build_system(name, config)
        region = system.mmap(table_pages, name="gups-table")
        outcome = run_gups(system, region, num_updates, rng=np.random.default_rng(5))
        baselines[name] = outcome.mean_update_ns
    for cache_ratio in cache_ratios:
        config = scaled_config(
            dram_pages=dram_pages,
            ssd_to_dram=ssd_to_dram,
            ssd_cache_ratio=cache_ratio,
        )
        system = build_system("FlatFlash", config)
        region = system.mmap(table_pages, name="gups-table")
        outcome = run_gups(system, region, num_updates, rng=np.random.default_rng(5))
        result.add(
            ssd_cache_pct=cache_ratio * 100,
            flatflash_ns=round(outcome.mean_update_ns, 1),
            speedup_vs_unified=round(baselines["UnifiedMMap"] / outcome.mean_update_ns, 2),
            speedup_vs_traditional=round(
                baselines["TraditionalStack"] / outcome.mean_update_ns, 2
            ),
        )
    return result


def render_fig9a(result: ExperimentResult) -> Table:
    table = Table(
        "Figure 9a: GUPS (updates/sim-second) and page movements",
        ["SSD:DRAM", "System", "Mean update (ns)", "Page movements"],
    )
    for row in result.rows:
        table.add_row(
            f"{row['ratio']}x",
            row["system"],
            row["mean_update_ns"],
            row["page_movements"],
        )
    return table


def render_fig9b(result: ExperimentResult) -> Table:
    table = Table(
        "Figure 9b: FlatFlash speedup vs SSD-Cache size (SSD:DRAM=512)",
        ["SSD-Cache (% of SSD)", "FlatFlash ns/update", "vs UnifiedMMap", "vs TraditionalStack"],
    )
    for row in result.rows:
        table.add_row(
            f"{row['ssd_cache_pct']:.3f}%",
            row["flatflash_ns"],
            f"{row['speedup_vs_unified']}x",
            f"{row['speedup_vs_traditional']}x",
        )
    return table


# --------------------------------------------------------------- sweep cells

SECTION_A = (
    "## Figure 9a — HPCC-GUPS\n",
    "Paper: FlatFlash 1.5-1.6x over UnifiedMMap, 2.5-2.7x over\n"
    "TraditionalStack, and 1.3-1.5x fewer page movements.  At our scale\n"
    "the adaptive threshold rises to its maximum and suppresses nearly\n"
    "all promotions under uniform-random access — page movements drop to\n"
    "~zero rather than by 1.3-1.5x, which is the same mechanism, shown\n"
    "more starkly because the scaled SSD-Cache is small relative to the\n"
    "table.\n",
)

SECTION_B = (
    "## Figure 9b — sensitivity to SSD-Cache size\n",
    "Paper: FlatFlash's speedup grows with the SSD-Cache; the paging\n"
    "baselines cannot exploit it at all.\n",
)


def cell_a() -> CellResult:
    result = run_fig9a()
    top = result.rows[-1]["ratio"]
    flat = result.filtered(ratio=top, system="FlatFlash")[0]["mean_update_ns"]
    metrics = {}
    if flat:
        for baseline, key in (
            ("UnifiedMMap", "speedup_vs_unifiedmmap"),
            ("TraditionalStack", "speedup_vs_traditional"),
        ):
            base = result.filtered(ratio=top, system=baseline)[0]["mean_update_ns"]
            metrics[key] = float(base / flat)
    return CellResult(
        sections=[*SECTION_A, markdown_block(render_fig9a(result).render())],
        rows=result.rows,
        metrics=metrics,
    )


def cell_b() -> CellResult:
    result = run_fig9b()
    return CellResult(
        sections=[*SECTION_B, markdown_block(render_fig9b(result).render())],
        rows=result.rows,
        metrics={
            "max_speedup_vs_unifiedmmap": max(
                float(row["speedup_vs_unified"]) for row in result.rows
            ),
            "max_speedup_vs_traditional": max(
                float(row["speedup_vs_traditional"]) for row in result.rows
            ),
        },
    )


if __name__ == "__main__":
    render_fig9a(run_fig9a()).print()
    render_fig9b(run_fig9b()).print()
