"""Figure 14: OLTP throughput with per-transaction logging (§5.6).

* 14a-c — TPCC/TPCB/TATP throughput at 4/8/16 client threads for the
  three systems, all running the decentralized per-transaction logging of
  Fig. 7.  The paper: FlatFlash scales 1.1-3.0x over UnifiedMMap and
  1.6-4.2x over TraditionalStack, because block systems pay page-granular
  log I/O per commit while FlatFlash issues small atomic durable writes.
  The block model includes group commit (small records share a log page)
  and the sequential log's single-channel conflict, so TATP (tiny logs)
  improves least and the write-heavy workloads most.
* 14d — TPCB at 16 threads as the flash device latency shrinks (Z-SSD ->
  PCM-class): FlatFlash's advantage grows (up to 5.3x in the paper) since
  its commit path never touches flash.

The centralized-logging scheme is also exposed for the ablation bench.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.report import Table
from repro.apps.database import LoggingScheme, run_oltp
from repro.experiments.common import ExperimentResult, build_system, scaled_config
from repro.sweep.model import CellResult, markdown_block
from repro.workloads.oltp import WORKLOADS

EVALUATED = ("TraditionalStack", "UnifiedMMap", "FlatFlash")


def run_threads(
    workload_names: Optional[List[str]] = None,
    thread_counts: Optional[List[int]] = None,
    transactions_per_thread: int = 60,
    dram_pages: int = 48,
    table_pages: int = 192,
    scheme: LoggingScheme = LoggingScheme.PER_TRANSACTION,
) -> ExperimentResult:
    if workload_names is None:
        workload_names = ["TPCC", "TPCB", "TATP"]
    if thread_counts is None:
        thread_counts = [4, 8, 16]
    result = ExperimentResult(
        "Figure 14a-c", "OLTP throughput vs threads, per-transaction logging"
    )
    for workload_name in workload_names:
        spec = WORKLOADS[workload_name]
        for threads in thread_counts:
            for name in EVALUATED:
                config = scaled_config(dram_pages=dram_pages, ssd_to_dram=64)
                system = build_system(name, config)
                outcome = run_oltp(
                    system,
                    spec,
                    num_transactions=transactions_per_thread * threads,
                    num_threads=threads,
                    scheme=scheme,
                    table_pages=table_pages,
                )
                result.add(
                    workload=workload_name,
                    threads=threads,
                    system=name,
                    throughput_tps=round(outcome.throughput_tps),
                    lock_contention=round(outcome.log_lock_contention, 3),
                )
    return result


def run_device_latency_sweep(
    latencies_us: Optional[List[int]] = None,
    threads: int = 16,
    transactions_per_thread: int = 60,
    dram_pages: int = 48,
    table_pages: int = 192,
) -> ExperimentResult:
    """Figure 14d: TPCB throughput as the flash latency shrinks."""
    if latencies_us is None:
        latencies_us = [20, 10, 5, 1]
    result = ExperimentResult("Figure 14d", "TPCB throughput vs device latency")
    for latency_us in latencies_us:
        for name in EVALUATED:
            config = scaled_config(
                dram_pages=dram_pages,
                ssd_to_dram=64,
                flash_read_page_ns=latency_us * 1_000,
                flash_program_page_ns=latency_us * 1_000,
            )
            system = build_system(name, config)
            outcome = run_oltp(
                system,
                WORKLOADS["TPCB"],
                num_transactions=transactions_per_thread * threads,
                num_threads=threads,
                table_pages=table_pages,
            )
            result.add(
                device_latency_us=latency_us,
                system=name,
                throughput_tps=round(outcome.throughput_tps),
            )
    return result


def render_threads(result: ExperimentResult) -> Table:
    table = Table(
        "Figure 14a-c: OLTP throughput (tx/sim-second), per-transaction logging",
        ["Workload", "Threads", "System", "Throughput (tps)"],
    )
    for row in result.rows:
        table.add_row(
            row["workload"], row["threads"], row["system"], row["throughput_tps"]
        )
    return table


def render_sweep(result: ExperimentResult) -> Table:
    table = Table(
        "Figure 14d: TPCB at 16 threads vs device latency",
        ["Device latency (us)", "System", "Throughput (tps)"],
    )
    for row in result.rows:
        table.add_row(row["device_latency_us"], row["system"], row["throughput_tps"])
    return table


def max_scaling(result: ExperimentResult, baseline: str) -> Dict[str, float]:
    """Max FlatFlash throughput ratio over a baseline, per workload.

    First-appearance iteration order keeps the rendered dict byte-stable
    across processes and hash seeds (the parallel sweep relies on this).
    """
    out: Dict[str, float] = {}
    for workload in dict.fromkeys(row["workload"] for row in result.rows):
        best = 0.0
        for threads in dict.fromkeys(
            row["threads"] for row in result.filtered(workload=workload)
        ):
            flat = result.filtered(
                workload=workload, threads=threads, system="FlatFlash"
            )[0]["throughput_tps"]
            base = result.filtered(workload=workload, threads=threads, system=baseline)[
                0
            ]["throughput_tps"]
            if base:
                best = max(best, flat / base)
        out[workload] = round(best, 2)
    return out


# --------------------------------------------------------------- sweep cell

SECTION = (
    "## Figure 14 — OLTP throughput, per-transaction logging\n",
    "Paper: FlatFlash scales TPCC/TPCB/TATP 1.1-3.0x over UnifiedMMap\n"
    "and 1.6-4.2x over TraditionalStack (4-16 threads); with faster\n"
    "devices (Fig. 14d) the gap grows to 5.3x.\n",
)


def cell() -> CellResult:
    result = run_threads()
    vs_unified = max_scaling(result, "UnifiedMMap")
    vs_traditional = max_scaling(result, "TraditionalStack")
    return CellResult(
        sections=[
            *SECTION,
            markdown_block(render_threads(result).render()),
            f"Max ratios: vs UnifiedMMap {vs_unified}, "
            f"vs TraditionalStack {vs_traditional}\n",
            markdown_block(render_sweep(run_device_latency_sweep()).render()),
        ],
        rows=result.rows,
        metrics={
            "max_ratio_vs_unifiedmmap": {k: float(v) for k, v in vs_unified.items()},
            "max_ratio_vs_traditional": {
                k: float(v) for k, v in vs_traditional.items()
            },
        },
    )


if __name__ == "__main__":
    outcome = run_threads()
    render_threads(outcome).print()
    print("\nmax ratio vs UnifiedMMap:", max_scaling(outcome, "UnifiedMMap"))
    print("max ratio vs TraditionalStack:", max_scaling(outcome, "TraditionalStack"))
    sweep = run_device_latency_sweep()
    render_sweep(sweep).print()
