"""Fleet sweep cells: device-count scaling and failover under load.

Two fig9-style cells over :mod:`repro.fleet`:

* ``fleet:scaling`` — a fixed random-update workload on fleets of 1, 2
  and 4 devices (hashed striping, no replication): per-N elapsed time
  and the cross-device load balance.
* ``fleet:failover`` — a WAL append stream on a 3-device fleet with a
  scheduled mid-run device kill, across replication factors 1..3: the
  failover scorecard (durable/volatile pages lost, pages promoted and
  re-replicated, detection and recovery time, replica write lag), plus
  a byte-replay check of the R=2 arm.

Both cells are *data-only* (no markdown sections), so the committed
EXPERIMENTS.md stays byte-identical with or without them; their metrics
land in ``BENCH_sweep.json``, where the failover scorecard is also
surfaced as a headline entry.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Dict, List, Sequence, Tuple

from repro.apps.wal import WriteAheadLog
from repro.config import small_config
from repro.fleet import FlatFlashFleet, FleetConfig
from repro.sweep.model import CellResult

#: Deterministic LCG so the workload is replayable without ``random``.
_LCG_MULT, _LCG_ADD, _LCG_MASK = 1103515245, 12345, 0x7FFFFFFF


def _lcg_indices(seed: int, count: int, modulo: int) -> List[int]:
    state = seed & _LCG_MASK
    out = []
    for _ in range(count):
        state = (_LCG_MULT * state + _LCG_ADD) & _LCG_MASK
        out.append(state % modulo)
    return out


def run_fleet_scaling(
    device_counts: Sequence[int] = (1, 2, 4),
    pages: int = 48,
    updates: int = 600,
    seed: int = 11,
) -> List[Dict[str, object]]:
    """Random-update scaling across fleet sizes (R=1, hashed striping)."""
    rows: List[Dict[str, object]] = []
    baseline_ns = None
    indices = _lcg_indices(seed, updates, pages)
    for num_devices in device_counts:
        fleet = FlatFlashFleet(
            small_config(track_data=True),
            FleetConfig(num_devices=num_devices, striping="hashed"),
        )
        region = fleet.mmap(pages, name="scale")
        for op, page in enumerate(indices):
            fleet.store_u64(region.page_addr(page), op)
            value, _ = fleet.load_u64(region.page_addr(page))
            assert value == op
        elapsed_ns = fleet.clock.now
        if baseline_ns is None:
            baseline_ns = elapsed_ns
        shares = []
        for device in fleet.devices:
            counters = device.stats.counters()
            shares.append(
                int(counters["mem.loads"]) + int(counters["mem.stores"])
            )
        rows.append(
            {
                "devices": num_devices,
                "elapsed_ns": elapsed_ns,
                "speedup_vs_one": round(baseline_ns / elapsed_ns, 4),
                "balance_min_max": round(min(shares) / max(shares), 4),
            }
        )
    return rows


def _failover_trial(
    replication: int, payload_count: int, kill_at_ns: int
) -> Tuple[FlatFlashFleet, List[bytes], List[bytes]]:
    fleet = FlatFlashFleet(
        small_config(track_data=True),
        FleetConfig(
            num_devices=3,
            replication_factor=replication,
            scheduled_losses=((kill_at_ns, 1),),
        ),
    )
    wal = WriteAheadLog.create(fleet, num_pages=4, name="fleet.wal")
    payloads = [
        struct.pack("<Q", index) + b"\xee" * 24 for index in range(payload_count)
    ]
    for payload in payloads:
        wal.append(payload)
    return fleet, payloads, wal.records()


def _trial_fingerprint(fleet: FlatFlashFleet, records: List[bytes]) -> int:
    blob = json.dumps(
        {
            "events": [event.as_dict() for event in fleet.failover_events],
            "summary": fleet.fleet_summary(),
            "elapsed_ns": fleet.clock.now,
            "records_crc": zlib.crc32(b"".join(records)),
        },
        sort_keys=True,
    )
    return zlib.crc32(blob.encode("ascii"))


def run_fleet_failover(
    replication_factors: Sequence[int] = (1, 2, 3),
    payload_count: int = 30,
    kill_at_ns: int = 150_000,
) -> List[Dict[str, object]]:
    """Failover under WAL load: the per-R recovery scorecard."""
    rows: List[Dict[str, object]] = []
    for replication in replication_factors:
        fleet, payloads, records = _failover_trial(
            replication, payload_count, kill_at_ns
        )
        summary = fleet.fleet_summary()
        event = fleet.failover_events[0]
        replay = None
        if replication == 2:
            refleet, _payloads, rerecords = _failover_trial(
                replication, payload_count, kill_at_ns
            )
            replay = int(
                _trial_fingerprint(fleet, records)
                == _trial_fingerprint(refleet, rerecords)
            )
        rows.append(
            {
                "replication": replication,
                "acked_appends": len(payloads),
                "surviving_records": len(records),
                "durable_pages_lost": summary["durable_pages_lost"],
                "volatile_pages_lost": summary["volatile_pages_lost"],
                "pages_promoted": summary["pages_promoted"],
                "pages_re_replicated": summary["pages_re_replicated"],
                "detection_ns": event.detection_ns,
                "recovery_ns": event.recovery_ns,
                "replica_lag_ns": summary["replica_lag_ns"],
                "replay_identical": replay,
            }
        )
    return rows


def cell_scaling() -> CellResult:
    """Data-only sweep cell for the device-count scaling rows."""
    rows = run_fleet_scaling()
    metrics: Dict[str, object] = {}
    for row in rows:
        prefix = f"fleet.scaling.n{row['devices']}"
        metrics[f"{prefix}.elapsed_ns"] = row["elapsed_ns"]
        metrics[f"{prefix}.speedup_vs_one"] = row["speedup_vs_one"]
        metrics[f"{prefix}.balance_min_max"] = row["balance_min_max"]
    return CellResult(sections=[], rows=rows, metrics=metrics)


def cell_failover() -> CellResult:
    """Data-only sweep cell for the failover scorecard (hard-gated)."""
    rows = run_fleet_failover()
    scorecard: Dict[str, object] = {}
    metrics: Dict[str, object] = {}
    for row in rows:
        replication = row["replication"]
        if replication >= 2:
            if row["durable_pages_lost"]:
                raise AssertionError(
                    f"R={replication} failover lost "
                    f"{row['durable_pages_lost']} durable page(s)"
                )
            if row["surviving_records"] != row["acked_appends"]:
                raise AssertionError(
                    f"R={replication} failover lost acknowledged WAL "
                    f"records ({row['surviving_records']}"
                    f"/{row['acked_appends']})"
                )
        if row["replay_identical"] == 0:
            raise AssertionError("R=2 failover did not replay byte-for-byte")
        prefix = f"fleet.failover.r{replication}"
        for key in (
            "durable_pages_lost",
            "volatile_pages_lost",
            "pages_promoted",
            "pages_re_replicated",
            "detection_ns",
            "recovery_ns",
            "replica_lag_ns",
        ):
            metrics[f"{prefix}.{key}"] = row[key]
    scorecard = {
        "zero_durable_loss_r2": int(
            all(
                row["durable_pages_lost"] == 0
                for row in rows
                if row["replication"] >= 2
            )
        ),
        "replay_identical": next(
            row["replay_identical"] for row in rows if row["replication"] == 2
        ),
        "recovery_ns_r2": next(
            row["recovery_ns"] for row in rows if row["replication"] == 2
        ),
        "detection_ns_r2": next(
            row["detection_ns"] for row in rows if row["replication"] == 2
        ),
    }
    metrics["scorecard"] = scorecard
    return CellResult(sections=[], rows=rows, metrics=metrics)


__all__ = [
    "run_fleet_scaling",
    "run_fleet_failover",
    "cell_scaling",
    "cell_failover",
]
