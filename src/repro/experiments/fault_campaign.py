"""Sweep cells for the simfault campaign (:mod:`repro.faults.campaign`).

Each scenario of the fault matrix registers as one *data-only* cell —
no markdown sections, so EXPERIMENTS.md is untouched — whose metrics
surface the scenario's fault counters and problem count in
``BENCH_sweep.json``.  A scenario with problems raises, failing the
sweep loudly rather than burying a broken crash invariant in a metric.
"""

from __future__ import annotations

from typing import List, Optional

from repro.faults.campaign import SCENARIO_NAMES, run_campaign
from repro.sweep.model import CellResult


def run_fault_campaign(
    seed: int = 0, smoke: bool = True, scenarios: Optional[List[str]] = None
) -> dict:
    """Public runner: the campaign report dict (see the campaign module)."""
    return run_campaign(seed=seed, smoke=smoke, scenarios=scenarios)


def scenario_cell(scenario: str, seed: int = 0) -> CellResult:
    """One campaign scenario as a sweep cell (smoke scale, data-only)."""
    report = run_fault_campaign(seed=seed, smoke=True, scenarios=[scenario])
    entry = report["scenarios"][0]
    if entry["problems"]:
        raise AssertionError(
            f"fault scenario {scenario!r} found problems: {entry['problems']}"
        )
    metrics = {f"faults.{scenario}.{key}": value for key, value in entry["metrics"].items()}
    metrics[f"faults.{scenario}.problems"] = len(entry["problems"])
    for key, value in entry["details"].items():
        metrics[f"faults.{scenario}.{key}"] = value
    return CellResult(sections=[], rows=[dict(entry["details"])], metrics=metrics)


__all__ = ["SCENARIO_NAMES", "run_fault_campaign", "scenario_cell"]
