"""Ablation studies for FlatFlash's design choices (DESIGN.md §6).

Each ablation isolates one mechanism §3 argues for:

* **promotion policy** — Algorithm 1's adaptive threshold vs fixed
  thresholds vs no promotion at all (§3.4's motivation);
* **PLB** — off-critical-path promotion vs stalling for the page copy
  (§3.3's motivation);
* **SSD-Cache replacement** — RRIP vs LRU under a scan-heavy mix (§3.4
  cites RRIP's scan resistance);
* **cacheable MMIO** — CAPI-style coherent caching vs uncacheable MMIO
  (§3.1);
* **logging scheme** — centralized vs per-transaction durable logs
  (§3.5 / Fig. 7).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.analysis.report import Table
from repro.apps.database import LoggingScheme, run_oltp
from repro.apps.kvstore import KVStore, run_ycsb
from repro.core.hierarchy import FlatFlash
from repro.core.promotion import FixedPromotionPolicy, PromotionManager
from repro.experiments.common import ExperimentResult, scaled_config
from repro.sweep.model import CellResult, markdown_block
from repro.workloads.oltp import TPCB
from repro.workloads.synthetic import random_access, sequential_access
from repro.workloads.ycsb import RECORD_SIZE, YCSB_B
from repro.workloads.zipfian import ZipfianGenerator


def _ycsb_system(system: FlatFlash, num_ops: int, dram_pages: int):
    records = 8 * dram_pages * 4_096 // RECORD_SIZE
    store = KVStore(system, capacity_records=records + 512)
    return run_ycsb(store, YCSB_B, num_ops=num_ops, num_records=records)


# --------------------------------------------------------------------- #
# 1. Promotion policy
# --------------------------------------------------------------------- #

def run_promotion_policy(
    num_ops: int = 6_000, dram_pages: int = 32
) -> ExperimentResult:
    """Adaptive vs fixed promotion thresholds on a Zipfian KV workload."""
    result = ExperimentResult(
        "Ablation: promotion policy", "Algorithm 1 vs fixed thresholds"
    )
    variants = [("adaptive (Alg. 1)", None)] + [
        (f"fixed({threshold})", threshold) for threshold in (1, 4, 7)
    ] + [("no promotion", 0)]
    for name, threshold in variants:
        config = scaled_config(dram_pages=dram_pages, ssd_to_dram=256)
        # Uncacheable MMIO so the promotion manager sees the full access
        # stream (a CPU cache in front hides re-references from the SSD).
        config.cacheable_mmio = False
        if threshold == 0:
            config.promotion.enabled = False
            system = FlatFlash(config)
        elif threshold is None:
            system = FlatFlash(config)
        else:
            manager = PromotionManager(policy=FixedPromotionPolicy(threshold))
            system = FlatFlash(config, promotion_manager=manager)
        stats = _ycsb_system(system, num_ops, dram_pages)
        result.add(
            policy=name,
            mean_ns=round(stats.mean, 1),
            p99_ns=stats.p99,
            page_movements=system.page_movements,
        )
    return result


def render_promotion_policy(result: ExperimentResult) -> Table:
    table = Table(
        "Promotion policy ablation (YCSB-B, working set 8x DRAM)",
        ["Policy", "Mean (ns)", "p99 (ns)", "Page movements"],
    )
    for row in result.rows:
        table.add_row(row["policy"], row["mean_ns"], row["p99_ns"], row["page_movements"])
    return table


# --------------------------------------------------------------------- #
# 2. PLB (off-critical-path promotion)
# --------------------------------------------------------------------- #

def run_plb(num_ops: int = 6_000, dram_pages: int = 32) -> ExperimentResult:
    """PLB vs stall-on-promotion, on a promotion-heavy sequential sweep.

    Sequential sweeps promote every page (64 touches each), so the stall
    variant pays the 12.1 us copy on the critical path over and over while
    the PLB variant hides it.
    """
    result = ExperimentResult("Ablation: PLB", "off-critical-path vs stalling")
    for name, enabled in (("PLB (off critical path)", True), ("stall on promotion", False)):
        config = scaled_config(dram_pages=dram_pages, ssd_to_dram=256)
        config.cacheable_mmio = False  # let re-references reach the device
        config.plb_enabled = enabled
        system = FlatFlash(config)
        region = system.mmap(dram_pages * 2, name="sweep")
        stats = sequential_access(
            system, region, num_ops, rng=np.random.default_rng(6)
        )
        result.add(
            mode=name,
            mean_ns=round(stats.mean, 1),
            p99_ns=stats.p99,
            promotions=system.promotions,
        )
    return result


def render_plb(result: ExperimentResult) -> Table:
    table = Table(
        "PLB ablation (sequential sweep, 2x DRAM)",
        ["Mode", "Mean (ns)", "p99 (ns)", "Promotions"],
    )
    for row in result.rows:
        table.add_row(row["mode"], row["mean_ns"], row["p99_ns"], row["promotions"])
    return table


# --------------------------------------------------------------------- #
# 3. SSD-Cache replacement policy
# --------------------------------------------------------------------- #

def run_cache_policy(
    num_ops: int = 4_000, dram_pages: int = 16
) -> ExperimentResult:
    """RRIP vs LRU in the SSD-Cache under a scan + point-lookup mix."""
    result = ExperimentResult(
        "Ablation: SSD-Cache replacement", "RRIP vs LRU under scans"
    )
    for policy in ("rrip", "lru"):
        config = scaled_config(
            dram_pages=dram_pages, ssd_to_dram=256, ssd_cache_pages=32
        )
        config.promotion.enabled = False  # isolate the SSD-Cache
        config.cacheable_mmio = False
        system = FlatFlash(config, cache_policy=policy)
        region = system.mmap(512, name="mix")
        zipf = ZipfianGenerator(64, theta=0.9, seed=3)
        rng = np.random.default_rng(4)
        hot_pages = rng.permutation(512)[:64]
        for index in range(num_ops):
            if index % 8 == 0:
                # Periodic scan burst: 16 sequential cold pages.
                base = int(rng.integers(0, 512 - 16))
                for page in range(base, base + 16):
                    system.load(region.page_addr(page, 0), 64)
            hot = int(hot_pages[int(zipf.sample(1)[0])])
            system.load(region.page_addr(hot, 0), 64)
        result.add(
            policy=policy.upper(),
            cache_hit_ratio=round(system.ssd.cache.hit_ratio, 3),
            mean_access_ns=round(
                system.stats.latency("mem.access", keep_samples=False).mean, 1
            ),
        )
    return result


def render_cache_policy(result: ExperimentResult) -> Table:
    table = Table(
        "SSD-Cache replacement ablation (scan + Zipfian point lookups)",
        ["Policy", "SSD-Cache hit ratio", "Mean access (ns)"],
    )
    for row in result.rows:
        table.add_row(row["policy"], row["cache_hit_ratio"], row["mean_access_ns"])
    return table


# --------------------------------------------------------------------- #
# 4. Cacheable MMIO
# --------------------------------------------------------------------- #

def run_cacheable_mmio(num_ops: int = 3_000) -> ExperimentResult:
    """Coherent (CAPI) caching of MMIO lines vs uncacheable MMIO."""
    result = ExperimentResult("Ablation: cacheable MMIO", "CAPI vs plain PCIe")
    for name, cacheable in (("cacheable (CAPI)", True), ("uncacheable", False)):
        config = scaled_config(dram_pages=16, ssd_to_dram=256)
        config.cacheable_mmio = cacheable
        config.promotion.enabled = False  # isolate the interconnect effect
        system = FlatFlash(config)
        region = system.mmap(64, name="hot-lines")
        seq = sequential_access(system, region, num_ops // 2, rng=np.random.default_rng(1))
        hot = np.random.default_rng(2).integers(0, 32, size=num_ops // 2)
        from repro.sim.stats import LatencyStats

        repeat = LatencyStats("repeat")
        for line in hot:  # re-referenced hot lines
            repeat.record(system.load(region.addr(int(line) * 64), 64).latency_ns)
        result.add(
            mode=name,
            sequential_ns=round(seq.mean, 1),
            hot_line_ns=round(repeat.mean, 1),
        )
    return result


def render_cacheable_mmio(result: ExperimentResult) -> Table:
    table = Table(
        "Cacheable-MMIO ablation",
        ["Mode", "Sequential mean (ns)", "Hot-line mean (ns)"],
    )
    for row in result.rows:
        table.add_row(row["mode"], row["sequential_ns"], row["hot_line_ns"])
    return table


# --------------------------------------------------------------------- #
# 5. Sequential prefetch (extension)
# --------------------------------------------------------------------- #

def run_prefetch(num_ops: int = 4_000, dram_pages: int = 24) -> ExperimentResult:
    """Sequential-prefetch extension: promote ahead of detected streams."""
    result = ExperimentResult(
        "Ablation: sequential prefetch", "stream-ahead promotion"
    )
    for name, depth in (("off (paper)", 0), ("prefetch after 2", 2), ("prefetch after 4", 4)):
        config = scaled_config(dram_pages=dram_pages, ssd_to_dram=256)
        config.cacheable_mmio = False
        config.promotion.sequential_prefetch = depth
        system = FlatFlash(config)
        region = system.mmap(dram_pages * 2, name="sweep")
        seq = sequential_access(system, region, num_ops, rng=np.random.default_rng(8))
        rand_system = FlatFlash(config)
        rand_region = rand_system.mmap(dram_pages * 8, name="rand")
        rand = random_access(
            rand_system, rand_region, num_ops // 2, rng=np.random.default_rng(9)
        )
        result.add(
            mode=name,
            sequential_ns=round(seq.mean, 1),
            random_ns=round(rand.mean, 1),
            prefetches=system.stats.counters()["mem.prefetch_promotions"],
        )
    return result


def render_prefetch(result: ExperimentResult) -> Table:
    table = Table(
        "Sequential-prefetch extension",
        ["Mode", "Sequential mean (ns)", "Random mean (ns)", "Prefetches"],
    )
    for row in result.rows:
        table.add_row(
            row["mode"], row["sequential_ns"], row["random_ns"], row["prefetches"]
        )
    return table


# --------------------------------------------------------------------- #
# 6. Sequential fairness: kernel readahead vs FlatFlash prefetch
# --------------------------------------------------------------------- #

def run_sequential_fairness(
    num_ops: int = 4_000, dram_pages: int = 24
) -> ExperimentResult:
    """Sequential sweeps with each side's streaming optimization enabled.

    The paging baselines get kernel swap readahead; FlatFlash gets the
    sequential-prefetch extension — a fair fight on the baselines' best
    access pattern.
    """
    from repro.experiments.common import build_system

    result = ExperimentResult(
        "Ablation: sequential fairness", "readahead vs prefetch"
    )
    variants = [
        ("UnifiedMMap", 0, 0, "no readahead"),
        ("UnifiedMMap", 8, 0, "readahead 8"),
        ("FlatFlash", 0, 0, "no prefetch"),
        ("FlatFlash", 0, 2, "prefetch after 2"),
    ]
    for system_name, readahead, prefetch, label in variants:
        config = scaled_config(dram_pages=dram_pages, ssd_to_dram=256)
        config.readahead_pages = readahead
        config.promotion.sequential_prefetch = prefetch
        config.cacheable_mmio = False
        system = build_system(system_name, config.validate())
        region = system.mmap(dram_pages * 2, name="sweep")
        stats = sequential_access(system, region, num_ops, rng=np.random.default_rng(10))
        result.add(
            system=system_name,
            mode=label,
            sequential_ns=round(stats.mean, 1),
            page_movements=system.page_movements,
        )
    return result


def render_sequential_fairness(result: ExperimentResult) -> Table:
    table = Table(
        "Sequential fairness: kernel readahead vs FlatFlash prefetch",
        ["System", "Mode", "Sequential mean (ns)", "Page movements"],
    )
    for row in result.rows:
        table.add_row(
            row["system"], row["mode"], row["sequential_ns"], row["page_movements"]
        )
    return table


# --------------------------------------------------------------------- #
# 7. Logging scheme
# --------------------------------------------------------------------- #

def run_logging_scheme(
    thread_counts: Optional[List[int]] = None, tx_per_thread: int = 50
) -> ExperimentResult:
    """Centralized vs per-transaction logging on FlatFlash (Fig. 7)."""
    if thread_counts is None:
        thread_counts = [2, 4, 8, 16]
    result = ExperimentResult("Ablation: logging scheme", "central vs per-tx")
    for threads in thread_counts:
        row = {"threads": threads}
        for scheme in LoggingScheme:
            config = scaled_config(dram_pages=48, ssd_to_dram=64, ssd_cache_pages=64)
            system = FlatFlash(config)
            outcome = run_oltp(
                system,
                TPCB,
                num_transactions=tx_per_thread * threads,
                num_threads=threads,
                scheme=scheme,
                table_pages=128,
            )
            key = "central_tps" if scheme is LoggingScheme.CENTRALIZED else "per_tx_tps"
            row[key] = round(outcome.throughput_tps)
            if scheme is LoggingScheme.CENTRALIZED:
                row["lock_contention"] = round(outcome.log_lock_contention, 2)
        result.add(**row)
    return result


def render_logging_scheme(result: ExperimentResult) -> Table:
    table = Table(
        "Logging ablation (TPCB on FlatFlash)",
        ["Threads", "Centralized (tps)", "Per-transaction (tps)", "Lock contention"],
    )
    for row in result.rows:
        table.add_row(
            row["threads"], row["central_tps"], row["per_tx_tps"], row["lock_contention"]
        )
    return table


# --------------------------------------------------------------- sweep cells
#
# Each toggles one mechanism; the shared section header and prose live in
# ``repro.sweep.document`` since they introduce the family, not one cell.


def _ablation_cell(runner, renderer) -> CellResult:
    result = runner()
    return CellResult(
        sections=[markdown_block(renderer(result).render())], rows=result.rows
    )


def cell_promotion_policy() -> CellResult:
    return _ablation_cell(run_promotion_policy, render_promotion_policy)


def cell_plb() -> CellResult:
    return _ablation_cell(run_plb, render_plb)


def cell_cache_policy() -> CellResult:
    return _ablation_cell(run_cache_policy, render_cache_policy)


def cell_cacheable_mmio() -> CellResult:
    return _ablation_cell(run_cacheable_mmio, render_cacheable_mmio)


def cell_prefetch() -> CellResult:
    return _ablation_cell(run_prefetch, render_prefetch)


def cell_sequential_fairness() -> CellResult:
    return _ablation_cell(run_sequential_fairness, render_sequential_fairness)


def cell_logging_scheme() -> CellResult:
    return _ablation_cell(run_logging_scheme, render_logging_scheme)


if __name__ == "__main__":
    render_promotion_policy(run_promotion_policy()).print()
    render_plb(run_plb()).print()
    render_cache_policy(run_cache_policy()).print()
    render_cacheable_mmio(run_cacheable_mmio()).print()
    render_prefetch(run_prefetch()).print()
    render_sequential_fairness(run_sequential_fairness()).print()
    render_logging_scheme(run_logging_scheme()).print()
