"""Figure 13: file-system metadata persistence speedups (§5.5).

Five FileBench-style workloads against EXT4/XFS/BtrFS persistence models,
block-backed (on UnifiedMMap) vs byte-granular (on FlatFlash).  The paper
reports 2.6-18.9x improvements, the spread coming from each file system's
own write-amplification discipline (journal vs COW), plus SSD-lifetime
wins from the removed journal/COW page writes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.report import Table
from repro.apps.filesystem import FileSystemKind, make_filesystem
from repro.experiments.common import ExperimentResult, build_system, scaled_config
from repro.sweep.model import CellResult, markdown_block
from repro.workloads.filebench import workload_by_name

WORKLOADS = ["CreateFile", "RenameFile", "CreateDirectory", "VarMail", "WebServer"]
BASELINE_SYSTEM = "UnifiedMMap"


def run(
    workloads: Optional[List[str]] = None,
    kinds: Optional[List[FileSystemKind]] = None,
    ops_per_workload: int = 120,
    dram_pages: int = 48,
    baseline_system: str = BASELINE_SYSTEM,
) -> ExperimentResult:
    if workloads is None:
        workloads = list(WORKLOADS)
    if kinds is None:
        kinds = [FileSystemKind.EXT4, FileSystemKind.XFS, FileSystemKind.BTRFS]
    result = ExperimentResult(
        "Figure 13", "File-system metadata op performance: block vs byte persistence"
    )
    for kind in kinds:
        for workload in workloads:
            timings: Dict[str, float] = {}
            writes: Dict[str, int] = {}
            for system_name in (baseline_system, "FlatFlash"):
                # The paper's SSD-Cache is 2 GB (0.125 % of 1.6 TB) — far
                # larger than the FS metadata footprint, so the persistence
                # working set is cache-resident.  Keep that property at scale.
                config = scaled_config(
                    dram_pages=dram_pages, ssd_to_dram=64, ssd_cache_pages=64
                )
                system = build_system(system_name, config)
                filesystem = make_filesystem(kind, system)
                stream = workload_by_name(workload, ops_per_workload)
                outcome = filesystem.run(stream)
                timings[system_name] = outcome.mean_op_ns
                writes[system_name] = outcome.flash_page_writes
            flat, base = timings["FlatFlash"], timings[baseline_system]
            flat_writes = max(1, writes["FlatFlash"])
            result.add(
                filesystem=kind.value,
                workload=workload,
                block_op_us=round(base / 1_000, 1),
                flatflash_op_us=round(flat / 1_000, 1),
                speedup=round(base / flat, 1) if flat else 0.0,
                lifetime_gain=round(writes[baseline_system] / flat_writes, 1),
            )
    return result


def render(result: ExperimentResult) -> Table:
    table = Table(
        "Figure 13: metadata persistence, block (UnifiedMMap) vs byte (FlatFlash)",
        ["FS", "Workload", "Block us/op", "FlatFlash us/op", "Speedup", "Lifetime gain"],
    )
    for row in result.rows:
        table.add_row(
            row["filesystem"],
            row["workload"],
            row["block_op_us"],
            row["flatflash_op_us"],
            f"{row['speedup']}x",
            f"{row['lifetime_gain']}x",
        )
    return table


def speedup_range(result: ExperimentResult) -> Dict[str, tuple]:
    """(min, max) speedup per file system, the way §5.5 quotes them.

    Iterates file systems in first-appearance order (not set order) so the
    rendered summary is byte-stable across processes and hash seeds.
    """
    ranges: Dict[str, tuple] = {}
    for kind in dict.fromkeys(row["filesystem"] for row in result.rows):
        speedups = [row["speedup"] for row in result.filtered(filesystem=kind)]
        ranges[kind] = (min(speedups), max(speedups))
    return ranges


# --------------------------------------------------------------- sweep cell

SECTION = (
    "## Figure 13 — file-system metadata persistence\n",
    "Paper: 2.6-18.9x across EXT4/XFS/BtrFS and five workloads, plus\n"
    "large SSD-lifetime gains from removing journal/COW amplification.\n"
    "Measured speedups land lower (≈2-6x) because our block engines model\n"
    "only the journal/COW I/O itself, not the full kernel-path costs of\n"
    "real file systems — but the ordering (BtrFS > EXT4 > XFS) and the\n"
    "lifetime direction match.\n",
)


def cell() -> CellResult:
    result = run()
    ranges = speedup_range(result)
    return CellResult(
        sections=[
            *SECTION,
            markdown_block(render(result).render()),
            f"Speedup ranges per FS: {ranges}\n",
        ],
        rows=result.rows,
        metrics={
            "speedup_ranges": {
                kind: [float(low), float(high)] for kind, (low, high) in ranges.items()
            },
        },
    )


if __name__ == "__main__":
    outcome = run()
    render(outcome).print()
    print("\nspeedup ranges:", speedup_range(outcome))
