"""Table 2: latency of the major FlatFlash components.

The paper measured these on a Xilinx FPGA reference design and used them
to drive the emulator; our simulator takes them as configuration, so this
experiment *measures them back* through the public interfaces — verifying
the machinery charges what Table 2 says it should.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.core.hierarchy import FlatFlash
from repro.experiments.common import ExperimentResult, scaled_config
from repro.sweep.model import CellResult, markdown_block

PAPER_US = {
    "Read a cache line in SSD-Cache via PCIe MMIO": 4.8,
    "Write a cache line in SSD-Cache via PCIe MMIO": 0.6,
    "Promote a page from SSD-Cache to host DRAM": 12.1,
    "Update PTE and TLB entry in host machine": 1.4,
    "Page table walking to get the page location": 0.7,
}


def run() -> ExperimentResult:
    config = scaled_config(dram_pages=32, ssd_to_dram=64, track_data=False)
    system = FlatFlash(config)
    region = system.mmap(32, name="probe")
    line = config.geometry.cacheline_size

    # Warm the page into the SSD-Cache so the MMIO probes measure pure
    # interconnect latency (Table 2 measures SSD-Cache hits).
    system.load(region.addr(0), line)
    read = system.load(region.addr(line), line)
    write = system.store(region.addr(2 * line), line)

    measured = {
        "Read a cache line in SSD-Cache via PCIe MMIO": read.latency_ns / 1_000,
        "Write a cache line in SSD-Cache via PCIe MMIO": write.latency_ns / 1_000,
        "Promote a page from SSD-Cache to host DRAM": (
            config.latency.page_promotion_ns / 1_000
        ),
        "Update PTE and TLB entry in host machine": (
            config.latency.pte_tlb_update_ns / 1_000
        ),
        "Page table walking to get the page location": (
            config.latency.page_table_walk_ns / 1_000
        ),
    }

    result = ExperimentResult(
        "Table 2", "Latency of the major components in FlatFlash"
    )
    for source, paper_us in PAPER_US.items():
        result.add(
            component=source, paper_us=paper_us, measured_us=round(measured[source], 2)
        )
    return result


def render(result: ExperimentResult) -> Table:
    table = Table(
        "Table 2: Latency of the major components in FlatFlash",
        ["Overhead Source", "Paper (us)", "Measured (us)"],
    )
    for row in result.rows:
        table.add_row(row["component"], row["paper_us"], row["measured_us"])
    return table


# --------------------------------------------------------------- sweep cell

SECTION = (
    "## Table 2 — component latencies\n",
    "Paper: MMIO cache-line read 4.8 us, posted write 0.6 us, page\n"
    "promotion 12.1 us, PTE+TLB update 1.4 us, page-table walk 0.7 us.\n"
    "These are configuration inputs; the benchmark verifies the machinery\n"
    "charges them back exactly through the public access paths.\n",
)


def cell() -> CellResult:
    result = run()
    return CellResult(
        sections=[*SECTION, markdown_block(render(result).render())],
        rows=result.rows,
        metrics={},
    )


if __name__ == "__main__":
    render(run()).print()
