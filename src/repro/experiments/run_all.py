"""Run every experiment and regenerate EXPERIMENTS.md.

Usage::

    python -m repro.experiments.run_all [output-path]

This is now a thin client of the sweep engine: the experiment sections
live in the cell registry (``repro.sweep.registry``) and the document
layout in ``repro.sweep.document``.  ``generate()`` runs every cell
serially and assembles the same bytes that ``python -m repro sweep``
produces in parallel; pass ``jobs``/``cache`` to opt into either.
"""

from __future__ import annotations

import sys
from typing import Optional


def generate(jobs: int = 1, cache: Optional[object] = None) -> str:
    from repro.sweep.document import assemble
    from repro.sweep.engine import run_sweep

    report = run_sweep(jobs=jobs, cache=cache)
    return assemble(report.results)


def main() -> None:
    from repro.sweep.document import write_document

    output = sys.argv[1] if len(sys.argv) > 1 else "EXPERIMENTS.md"
    content = generate()
    write_document(output, content)
    print(f"wrote {output} ({len(content)} bytes)")


if __name__ == "__main__":
    main()
