"""Flat structured-array access traces (phase 1 of the replay engine).

A compiled trace is the engine's exchange format: one numpy structured
array with a row per memory access, in program order.  Workload
generators emit it from ``compile_trace()`` entry points; the replay
interpreter (:mod:`repro.engine.replay`) consumes it.  The row layout is

====== ====== =====================================================
field  dtype  meaning
====== ====== =====================================================
addr   <u8    virtual byte address
size   <u4    access size in bytes
op     <u1    0 = load, 1 = store (workloads.trace's encoding)
thread <u2    logical thread id (0 for single-threaded workloads)
ts     <u8    issue timestamp hint in ns (0 when untimed)
====== ====== =====================================================

``thread`` and ``ts`` are carried for multi-threaded compilers and for
interop with externally captured traces; the single-clock interpreter
replays rows strictly in array order, which is the order the scalar
generator would have issued them.

The legacy per-region trace container (:class:`repro.workloads.trace.Trace`)
stores (op, offset, size) triples relative to a region base; the
converters here bridge the two formats so recorded traces can be
replayed through the vectorized engine and vice versa.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (workloads import us)
    from repro.workloads.trace import Trace

#: Operation codes; numerically identical to repro.workloads.trace's.
OP_LOAD = 0
OP_STORE = 1

#: One row per access, program order.  Little-endian fixed layout so
#: saved traces are portable across hosts.
TRACE_DTYPE = np.dtype(
    [
        ("addr", "<u8"),
        ("size", "<u4"),
        ("op", "<u1"),
        ("thread", "<u2"),
        ("ts", "<u8"),
    ]
)


class AccessTrace:
    """An immutable compiled access trace over :data:`TRACE_DTYPE` rows."""

    __slots__ = ("rows",)

    def __init__(self, rows: np.ndarray) -> None:
        if rows.dtype != TRACE_DTYPE:
            raise TypeError(f"trace rows must have dtype {TRACE_DTYPE}, got {rows.dtype}")
        if rows.ndim != 1:
            raise ValueError(f"trace rows must be 1-D, got shape {rows.shape}")
        self.rows = rows

    # ------------------------------------------------------------------ #
    # Builders
    # ------------------------------------------------------------------ #

    @classmethod
    def from_columns(
        cls,
        addrs: Sequence[int],
        sizes: Sequence[int],
        ops: Sequence[int],
        threads: Optional[Sequence[int]] = None,
        timestamps: Optional[Sequence[int]] = None,
    ) -> "AccessTrace":
        """Build a trace from per-column arrays (broadcast scalars allowed)."""
        addr_col = np.asarray(addrs, dtype=np.uint64)
        count = addr_col.shape[0]
        rows = np.zeros(count, dtype=TRACE_DTYPE)
        rows["addr"] = addr_col
        rows["size"] = np.broadcast_to(np.asarray(sizes, dtype=np.uint32), (count,))
        rows["op"] = np.broadcast_to(np.asarray(ops, dtype=np.uint8), (count,))
        if threads is not None:
            rows["thread"] = np.broadcast_to(np.asarray(threads, dtype=np.uint16), (count,))
        if timestamps is not None:
            rows["ts"] = np.broadcast_to(np.asarray(timestamps, dtype=np.uint64), (count,))
        return cls(rows).validate()

    @classmethod
    def loads(cls, addrs: Sequence[int], size: int) -> "AccessTrace":
        """All-load trace of fixed-size accesses."""
        return cls.from_columns(addrs, size, OP_LOAD)

    @classmethod
    def stores(cls, addrs: Sequence[int], size: int) -> "AccessTrace":
        """All-store trace of fixed-size accesses."""
        return cls.from_columns(addrs, size, OP_STORE)

    @classmethod
    def interleaved_rw(cls, addrs: Sequence[int], size: int) -> "AccessTrace":
        """Read-modify-write trace: a load then a store at each address.

        This is GUPS's access shape — each random update reads the word
        and writes it back before moving on.
        """
        addr_col = np.asarray(addrs, dtype=np.uint64)
        rows = np.zeros(2 * addr_col.shape[0], dtype=TRACE_DTYPE)
        rows["addr"] = np.repeat(addr_col, 2)
        rows["size"] = size
        rows["op"][1::2] = OP_STORE
        return cls(rows).validate()

    @classmethod
    def concat(cls, traces: Sequence["AccessTrace"]) -> "AccessTrace":
        """Concatenate traces in order (program order is preserved)."""
        if not traces:
            return cls(np.zeros(0, dtype=TRACE_DTYPE))
        return cls(np.concatenate([trace.rows for trace in traces]))

    # ------------------------------------------------------------------ #
    # Validation / persistence
    # ------------------------------------------------------------------ #

    def validate(self) -> "AccessTrace":
        """Reject rows no scalar access could issue (size 0, bad opcode)."""
        rows = self.rows
        if rows.shape[0]:
            if int(rows["size"].min()) <= 0:
                raise ValueError("trace contains a zero-size access")
            if int(rows["op"].max()) > OP_STORE:
                raise ValueError("trace contains an op code other than load/store")
        return self

    def save(self, path: str) -> None:
        """Persist to ``.npz`` (compressed, dtype-checked on load)."""
        np.savez_compressed(path, rows=self.rows)

    @classmethod
    def load(cls, path: str) -> "AccessTrace":
        with np.load(path) as archive:
            return cls(np.ascontiguousarray(archive["rows"], dtype=TRACE_DTYPE)).validate()

    # ------------------------------------------------------------------ #
    # Interop with the legacy per-region trace container
    # ------------------------------------------------------------------ #

    @classmethod
    def from_legacy(cls, trace: "Trace", base_addr: int) -> "AccessTrace":
        """Lift a :class:`repro.workloads.trace.Trace` to absolute addresses."""
        ops: List[Tuple[int, int, int]] = trace.ops
        count = len(ops)
        rows = np.zeros(count, dtype=TRACE_DTYPE)
        if count:
            columns = np.asarray(ops, dtype=np.int64)
            rows["op"] = columns[:, 0].astype(np.uint8)
            rows["addr"] = (columns[:, 1] + base_addr).astype(np.uint64)
            rows["size"] = columns[:, 2].astype(np.uint32)
        return cls(rows).validate()

    def to_legacy(self, base_addr: int, name: str = "compiled") -> "Trace":
        """Lower to a region-relative legacy trace (for Trace.replay/save)."""
        from repro.workloads.trace import Trace

        offsets = self.rows["addr"].astype(np.int64) - base_addr
        if offsets.shape[0] and int(offsets.min()) < 0:
            raise ValueError("trace contains addresses below base_addr")
        triples = list(
            zip(
                self.rows["op"].astype(int).tolist(),
                offsets.tolist(),
                self.rows["size"].astype(int).tolist(),
            )
        )
        return Trace(name=name, ops=triples)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return int(self.rows.shape[0])

    @property
    def num_loads(self) -> int:
        return int(np.count_nonzero(self.rows["op"] == OP_LOAD))

    @property
    def num_stores(self) -> int:
        return int(np.count_nonzero(self.rows["op"] == OP_STORE))

    def __repr__(self) -> str:
        return (
            f"AccessTrace(ops={len(self)}, loads={self.num_loads}, "
            f"stores={self.num_stores})"
        )
