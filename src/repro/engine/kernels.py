"""Registry of the scalar kernels the fused replay path inlines.

The interpreter's fused DRAM path does not call :meth:`TLB.lookup`,
:meth:`TLB.fill`, :meth:`PageTable.walk` or :meth:`PageTable.lookup`
through their Python entry points — it inlines their (tiny) bodies and
batches their stat updates.  Every such inlined function is an
*extracted kernel* and must stay tied to the static oracles:

* it must be certified kernel-eligible in ``EFFECTS.json``;
* its ``COSTS.json`` entry point's counter/latency contract must match
  what the fused code applies (encoded here as ``counters`` and
  ``returns_time`` and checked by tests/test_engine_oracles.py);
* it must be reachable from a certified VECTORIZABLE/REDUCTION region
  in ``BATCH.json`` (``region``), proving the loop around it is
  batchable in the first place;
* everything else the scalar access path can reach is ORDER_DEPENDENT
  and is *delegated*, never inlined — ``DELEGATED_ORDER_DEPENDENT``
  lists those boundaries so a gate can fail if a future kernel grows
  across one.

Anything the fused path touches that is **not** listed here (DRAM frame
touch, payload writes, promotion settling, remap drains) is executed by
calling the original scalar method, so no certification is needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.engine import guards


@dataclass(frozen=True)
class KernelSpec:
    """One scalar function the fused interpreter inlines."""

    #: Dotted qualname as the oracles spell it (module path sans `repro.`).
    qualname: str
    #: Stat names the kernel may bump, exactly as COSTS.json bounds them.
    counters: Tuple[str, ...] = ()
    #: Whether the kernel returns a latency the caller charges
    #: (COSTS.json's ``returns_time``).
    returns_time: bool = False
    #: The BATCH.json certified region whose loop covers this kernel.
    #: ``None`` is only legal for kernels COSTS.json proves pure (no
    #: counters, no clock charge): purity implies reorder-safety without
    #: needing a certified loop to witness it.
    region: Optional[str] = "core.memory_system.MemorySystem.warm_translations"
    #: How the fused interpreter realises the kernel (documentation for
    #: the differential suite's failure messages).
    strategy: str = field(default="inline", compare=False)


#: The fused DRAM fast path, kernel by kernel.  The per-op sequence is
#: pte peek -> tlb probe -> (walk + fill on miss) -> scalar frame touch.
KERNELS: Dict[str, KernelSpec] = {
    "pte_peek": KernelSpec(
        qualname="host.page_table.PageTable.lookup",
        counters=(),
        returns_time=False,
        region=None,  # pure probe per COSTS.json; reorder-safe by construction
        strategy="inline dict .get; side-effect-free dispatch probe",
    ),
    "tlb_probe": KernelSpec(
        qualname="host.tlb.TLB.lookup",
        counters=("tlb.hits:hit", "tlb.hits:miss", "tlb.hits:total"),
        returns_time=False,
        region="core.memory_system.MemorySystem.warm_translations",
        strategy="inline OrderedDict membership + move_to_end; hits batched",
    ),
    "pt_walk": KernelSpec(
        qualname="host.page_table.PageTable.walk",
        counters=("page_table.walks",),
        returns_time=True,
        region="core.memory_system.MemorySystem.warm_translations",
        strategy="walk counter batched; walk_cost_ns folded into latency tally",
    ),
    "tlb_fill": KernelSpec(
        qualname="host.tlb.TLB.fill",
        counters=(),
        returns_time=False,
        region="core.memory_system.MemorySystem.warm_translations",
        strategy="inline LRU insert with capacity eviction",
    ),
}

#: ORDER_DEPENDENT functions on the scalar access path.  The fused path
#: must *delegate* any access that can reach one of these; the
#: interpreter's dispatch rule (delegate unless the PTE is a present
#: DRAM mapping and the access stays inside one page) guarantees it.
DELEGATED_ORDER_DEPENDENT: Tuple[str, ...] = (
    "core.memory_system.MemorySystem._access",
    "core.hierarchy.FlatFlash._plb_access",
    "core.hierarchy.FlatFlash._start_pending_promotions",
    "core.hierarchy.FlatFlash._settle_promotions",
    "core.hierarchy.FlatFlash._complete_promotion",
    "core.hierarchy.FlatFlash._drain_remaps",
    "core.hierarchy.FlatFlash._guarded_mmio",
)


def check_kernel_certified(spec: KernelSpec) -> None:
    """Raise if ``spec`` violates any oracle contract (used by tests)."""
    certified = guards.certified_functions()
    if spec.qualname not in certified:
        raise AssertionError(f"{spec.qualname} is not certified in EFFECTS.json")
    entry = guards.cost_entry(spec.qualname)
    declared = tuple(sorted(entry.get("counters", ())))
    if declared != tuple(sorted(spec.counters)):
        raise AssertionError(
            f"{spec.qualname}: COSTS.json counters {declared} != kernel "
            f"spec counters {tuple(sorted(spec.counters))}"
        )
    if bool(entry.get("returns_time")) != spec.returns_time:
        raise AssertionError(
            f"{spec.qualname}: COSTS.json returns_time={entry.get('returns_time')} "
            f"!= kernel spec returns_time={spec.returns_time}"
        )
    if spec.region is None:
        # Purity must be witnessed by COSTS.json: no counters, no clock
        # charge, no latency charges on any path.
        if entry.get("counters") or entry.get("charges") or entry.get("charges_clock"):
            raise AssertionError(
                f"{spec.qualname} has effects per COSTS.json and therefore "
                f"needs a BATCH.json region"
            )
        return
    region = guards.batch_region(spec.region)
    if not region.get("certified"):
        raise AssertionError(f"region {spec.region} is not certified in BATCH.json")
    if spec.qualname != region["function"] and spec.qualname not in region.get(
        "kernel_calls", ()
    ):
        raise AssertionError(
            f"{spec.qualname} is not covered by BATCH.json region {spec.region}"
        )
