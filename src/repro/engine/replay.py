"""Phase 2 of the replay engine: the fused trace interpreter.

``replay(system, trace)`` executes a compiled :class:`AccessTrace`
against a live memory system with semantics byte-identical to issuing
``system.load``/``system.store`` per row, but without the per-access
Python call tower for the common case.  The dispatch rule per row:

* **Fused** — the access stays inside one page *and* its PTE peek
  (side-effect-free, :data:`~repro.engine.kernels.KERNELS` ``pte_peek``)
  shows a present DRAM mapping.  The interpreter then inlines exactly
  the certified kernels (TLB probe, page-table walk, TLB fill), calls
  the scalar frame bookkeeping inline (touch + dirty, two attribute
  writes and an LRU move), charges ``walk + dram_{load,store}_ns``, and
  batches the commutative stat updates (COSTS.json proves each kernel's
  counters are plain sums, so deferred flushing is exact).  FlatFlash's
  per-access maintenance hooks (`_settle_promotions`, `_drain_remaps`)
  are ORDER_DEPENDENT and are invoked for real — but only when their
  cheap emptiness guards (`_in_flight`, `ssd._remap`) say they would do
  work, which is exactly when the scalar path does work too.

* **Delegated, thin** — a single-page access whose PTE is not DRAM
  resident (SSD direct access, page fault, in-flight promotion) still
  gets the inlined wrapper kernels (TLB probe/walk/fill, batched
  counters, inline clock advance) but hands the page access itself to
  the unmodified scalar ``system._access_page`` with the simulated
  clock synchronised across the boundary.  That method *is* the
  ORDER_DEPENDENT region from BATCH.json (see
  :data:`repro.engine.kernels.DELEGATED_ORDER_DEPENDENT`), so its
  internal order — settle promotions, drain remaps, then dispatch —
  is preserved exactly.

* **Delegated, full** — page-crossing accesses (rare: trace rows are
  cache lines or words) go through the whole scalar ``system._access``
  wrapper, which owns the per-page chunk loop.

The only scalar-visible state the interpreter keeps locally during a
chunk is the clock (an int) and the commutative stat tallies; both are
flushed in a ``finally`` so even a raising replay (unmapped address,
injected fault) leaves the system exactly as the scalar loop would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

import numpy as np

from repro.engine.guards import engine_enabled, fused_blockers
from repro.engine.trace import OP_STORE, AccessTrace

__all__ = ["ReplayResult", "replay", "replay_enabled"]


@dataclass
class ReplayResult:
    """Outcome of one trace replay."""

    #: Per-row access latency in ns, same order as the trace.
    latencies: np.ndarray
    #: Rows executed on the fused fast path.
    fused_ops: int = 0
    #: Rows delegated to the scalar hierarchy.
    delegated_ops: int = 0
    #: Why fused mode was off for the whole replay ([] when it was on).
    blockers: List[str] = field(default_factory=list)

    @property
    def total_ops(self) -> int:
        return self.fused_ops + self.delegated_ops


def replay_enabled(system: Any) -> bool:
    """True when ``system`` opts into trace-compiled replay."""
    return engine_enabled(system)


def replay(system: Any, trace: AccessTrace) -> ReplayResult:
    """Replay ``trace`` against ``system``; exact w.r.t. the scalar loop."""
    rows = trace.rows
    count = int(rows.shape[0])
    latencies = np.zeros(count, dtype=np.int64)
    if count == 0:
        return ReplayResult(latencies)
    blockers = fused_blockers(system)
    if blockers:
        _replay_scalar(system, rows, latencies)
        return ReplayResult(latencies, fused_ops=0, delegated_ops=count, blockers=blockers)
    fused = _replay_fused(system, rows, latencies)
    return ReplayResult(latencies, fused_ops=fused, delegated_ops=count - fused)


def _replay_scalar(system: Any, rows: np.ndarray, latencies: np.ndarray) -> None:
    """Degraded mode: every row through the unmodified scalar path."""
    access = system._access
    addr_list = rows["addr"].astype(np.int64).tolist()
    size_list = rows["size"].astype(np.int64).tolist()
    store_list = (rows["op"] == OP_STORE).tolist()
    for index in range(rows.shape[0]):
        result = access(addr_list[index], size_list[index], store_list[index], None)
        latencies[index] = result.latency_ns


def _replay_fused(system: Any, rows: np.ndarray, latencies: np.ndarray) -> int:
    """Fused interpreter; returns the number of fast-path rows."""
    from repro.core.hierarchy import FlatFlash
    from repro.host.page_table import Domain

    domain_dram = Domain.DRAM
    config = system.config
    chunk_ops = config.engine.chunk_ops
    page_size = system.page_size
    load_ns = config.latency.dram_load_ns
    store_ns = config.latency.dram_store_ns

    tlb = system.tlb
    cached = tlb._cached
    cached_move = cached.move_to_end
    cached_evict = cached.popitem
    capacity = tlb.capacity

    page_table = system.page_table
    entries_get = page_table._entries.get
    walk_ns = page_table.walk_cost_ns

    dram = system.dram
    frames = dram.frames
    lru = dram._lru
    lru_move = lru.move_to_end

    clk = system.clock
    now = clk._now
    access = system._access
    page_access = system._access_page
    by_source_cache = system._by_source_latency
    registry_latency = system.stats.latency

    is_flat = isinstance(system, FlatFlash)
    if is_flat:
        in_flight = system._in_flight
        ssd_remap = system.ssd._remap
        settle = system._settle_promotions
        drain = system._drain_remaps

    # Commutative tallies, flushed once (see the ``finally`` below).
    loads_tally = 0
    stores_tally = 0
    tlb_hits = 0
    tlb_misses = 0
    # Per-source {latency: count}; "dram" is hot enough to special-case.
    dram_tally: Dict[int, int] = {}
    other_tallies: Dict[str, Dict[int, int]] = {}
    by_source_dram = by_source_cache.get("dram")
    fused_count = 0

    total = int(rows.shape[0])
    try:
        for start in range(0, total, chunk_ops):
            chunk = rows[start : start + chunk_ops]
            addr_col = chunk["addr"].astype(np.int64)
            size_col = chunk["size"].astype(np.int64)
            offset_col = addr_col % page_size
            size_list = size_col.tolist()
            vpn_list = (addr_col // page_size).tolist()
            offset_list = offset_col.tolist()
            crossing_col = offset_col + size_col > page_size
            # Hoist the rare-case tests out of the per-op loop: scalar
            # _access rejects size <= 0 before any bookkeeping, and
            # page-crossing rows only occur for > cacheline accesses.
            check_sizes = len(size_list) > 0 and int(size_col.min()) <= 0
            check_crossing = bool(crossing_col.any())
            crossing_list = crossing_col.tolist() if check_crossing else None
            store_list = (chunk["op"] == OP_STORE).tolist()
            lat_list = []
            lat_append = lat_list.append

            for i in range(len(size_list)):
                size = size_list[i]
                if check_sizes and size <= 0:
                    raise ValueError(f"access size must be > 0, got {size}")
                is_write = store_list[i]
                if check_crossing and crossing_list[i]:
                    # Full scalar delegation: _access owns the chunk
                    # loop (and its own counters) for multi-page ops.
                    clk._now = now
                    try:
                        result = access(
                            vpn_list[i] * page_size + offset_list[i],
                            size,
                            is_write,
                            None,
                        )
                    finally:
                        now = clk._now
                    lat_append(result.latency_ns)
                    continue

                vpn = vpn_list[i]
                if is_write:
                    stores_tally += 1
                else:
                    loads_tally += 1
                # --- inlined wrapper kernels: tlb_probe/pt_walk/tlb_fill ---
                if vpn in cached:
                    cached_move(vpn)
                    tlb_hits += 1
                    walk_cost = 0
                    pte = entries_get(vpn)
                else:
                    tlb_misses += 1
                    pte = entries_get(vpn)
                    if pte is None:
                        # the walk raises before the TLB fill happens
                        raise KeyError(f"vpn {vpn} has no mapping (unmapped address)")
                    if len(cached) >= capacity:
                        cached_evict(last=False)
                    cached[vpn] = None
                    walk_cost = walk_ns
                if pte is not None and pte.present and pte.domain is domain_dram:
                    # --- fused DRAM fast path ---
                    if is_flat:
                        # ORDER_DEPENDENT maintenance runs for real; the
                        # emptiness guards mirror the scalar early-returns.
                        # (Settle/drain never demote a DRAM-resident PTE,
                        # so the dispatch above cannot be invalidated.)
                        if in_flight:
                            clk._now = now
                            settle()
                            now = clk._now
                        if ssd_remap:
                            clk._now = now
                            drain()
                            now = clk._now
                    frame = frames[pte.frame_index]
                    frame.referenced = True
                    frame_index = frame.index
                    if frame_index in lru:
                        lru_move(frame_index)
                    if is_write:
                        frame.dirty = True
                        frame_data = frame.data
                        if frame_data is not None:
                            offset = offset_list[i]
                            # store with no payload writes zeros (scalar
                            # _dram_access's data=None convention)
                            frame_data[offset : offset + size] = bytes(size)
                        latency = walk_cost + store_ns
                    else:
                        latency = walk_cost + load_ns
                    fused_count += 1
                    now += latency
                    lat_append(latency)
                    dram_tally[latency] = dram_tally.get(latency, 0) + 1
                    if by_source_dram is None:
                        # Materialise mem.by_source.dram at the position
                        # the scalar loop would, keeping registry order
                        # stable.
                        by_source_dram = registry_latency(
                            "mem.by_source.dram", keep_samples=False
                        )
                        by_source_cache["dram"] = by_source_dram
                    continue

                # --- thin delegation: the ORDER_DEPENDENT page access
                # runs unmodified, wrapper bookkeeping stays batched ---
                clk._now = now
                try:
                    result = page_access(vpn, offset_list[i], size, is_write, None)
                finally:
                    now = clk._now
                latency = walk_cost + result.latency_ns
                now += latency
                lat_append(latency)
                source = result.source
                if source == "dram":
                    dram_tally[latency] = dram_tally.get(latency, 0) + 1
                    if by_source_dram is None:
                        by_source_dram = registry_latency(
                            "mem.by_source.dram", keep_samples=False
                        )
                        by_source_cache["dram"] = by_source_dram
                else:
                    tally = other_tallies.get(source)
                    if tally is None:
                        other_tallies[source] = tally = {}
                        if source not in by_source_cache:
                            by_source_cache[source] = registry_latency(
                                f"mem.by_source.{source}", keep_samples=False
                            )
                    tally[latency] = tally.get(latency, 0) + 1

            latencies[start : start + len(lat_list)] = lat_list
    finally:
        clk._now = now
        if loads_tally:
            system._loads.add(loads_tally)
        if stores_tally:
            system._stores.add(stores_tally)
        if tlb_hits or tlb_misses:
            tlb._hits.record_batch(tlb_hits, tlb_hits + tlb_misses)
        if tlb_misses:
            page_table._walks.add(tlb_misses)
        access_latency = system._access_latency
        if dram_tally:
            for value, value_count in dram_tally.items():
                access_latency.record_batch(value, value_count)
                by_source_dram.record_batch(value, value_count)
        for source, tally in other_tallies.items():
            by_source = by_source_cache[source]
            for value, value_count in tally.items():
                access_latency.record_batch(value, value_count)
                by_source.record_batch(value, value_count)

    return fused_count
