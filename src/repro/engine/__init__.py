"""Trace-compiled vectorized access engine (ROADMAP item 1).

Two phases behind the existing hierarchy API:

1. **Compile** — workload generators emit their access stream as a flat
   structured-array :class:`AccessTrace` (``compile_trace()`` entry
   points in :mod:`repro.workloads`), with numpy doing the address
   arithmetic that the scalar generators do per access.
2. **Replay** — :func:`replay` interprets the trace with a fused fast
   path for DRAM-resident single-page accesses (inlining exactly the
   EFFECTS.json-certified kernels, batching their COSTS.json-proven
   commutative stat updates) and delegates everything else to the
   unmodified scalar path; the fallback boundary is derived from
   BATCH.json's ORDER_DEPENDENT classifications.

Selection is per-cell via ``FlatFlashConfig.engine``; results are
byte-identical either way (tests/test_engine_equivalence.py and the
sweep byte-identity gate enforce it).  See docs/engine.md.
"""

from repro.engine.guards import engine_enabled, fused_blockers, fused_supported
from repro.engine.kernels import DELEGATED_ORDER_DEPENDENT, KERNELS, KernelSpec
from repro.engine.trace import OP_LOAD, OP_STORE, TRACE_DTYPE, AccessTrace
from repro.engine.replay import ReplayResult, replay, replay_enabled

__all__ = [
    "AccessTrace",
    "TRACE_DTYPE",
    "OP_LOAD",
    "OP_STORE",
    "ReplayResult",
    "replay",
    "replay_enabled",
    "engine_enabled",
    "fused_blockers",
    "fused_supported",
    "KERNELS",
    "KernelSpec",
    "DELEGATED_ORDER_DEPENDENT",
]
