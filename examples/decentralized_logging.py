#!/usr/bin/env python3
"""Database logging: centralized vs per-transaction commits (§5.6, Fig. 7).

Runs TPCB on a mini transactional engine at increasing thread counts,
comparing the centralized log buffer (one lock, everyone serializes)
against FlatFlash's decentralized per-transaction durable writes.

Run:  python examples/decentralized_logging.py
"""

from repro.apps.database import LoggingScheme, run_oltp
from repro.experiments.common import build_system, scaled_config
from repro.workloads.oltp import TPCB

THREADS = (2, 4, 8, 16)
TX_PER_THREAD = 50


def throughput(scheme: LoggingScheme, threads: int) -> tuple:
    config = scaled_config(dram_pages=48, ssd_to_dram=64, ssd_cache_pages=64)
    system = build_system("FlatFlash", config)
    outcome = run_oltp(
        system,
        TPCB,
        num_transactions=TX_PER_THREAD * threads,
        num_threads=threads,
        scheme=scheme,
        table_pages=128,
    )
    return outcome.throughput_tps, outcome.log_lock_contention


def main() -> None:
    print("TPCB on FlatFlash: centralized log vs per-transaction logging\n")
    print(f"{'threads':>7} | {'centralized':>12} | {'per-tx':>12} | {'scaling win':>11} | lock contention")
    print("-" * 72)
    for threads in THREADS:
        central_tps, contention = throughput(LoggingScheme.CENTRALIZED, threads)
        per_tx_tps, _ = throughput(LoggingScheme.PER_TRANSACTION, threads)
        print(
            f"{threads:>7} | {central_tps:>10,.0f} | {per_tx_tps:>10,.0f} "
            f"| {per_tx_tps / central_tps:>10.2f}x | {contention:.0%}"
        )
    print("\nByte-granular durable writes let every transaction persist its own")
    print("log record concurrently — the centralized buffer's lock disappears.")


if __name__ == "__main__":
    main()
