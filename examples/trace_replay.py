#!/usr/bin/env python3
"""Record an application's access trace, replay it on every system.

Traces make comparisons exact: the *same* byte-for-byte access stream runs
against each hierarchy.  This example records a skewed workload, saves it
to disk, reloads it, and replays it on all three systems — then shows how
locality changes the verdict.

Run:  python examples/trace_replay.py
"""

import os
import tempfile

from repro.experiments.common import build_system, scaled_config
from repro.workloads.trace import Trace, synthetic_trace


def replay_everywhere(trace: Trace, label: str) -> None:
    print(f"\n{label} ({len(trace)} ops, {trace.read_ratio:.0%} reads, "
          f"{trace.footprint_bytes // 4096} pages):")
    print(f"  {'system':>17} | mean access")
    for name in ("TraditionalStack", "UnifiedMMap", "FlatFlash"):
        system = build_system(name, scaled_config(dram_pages=16, ssd_to_dram=256))
        stats = trace.replay(system)
        print(f"  {name:>17} | {stats.mean / 1000:7.2f} us")


def main() -> None:
    # 1. Generate, save and reload a trace (what you would do with a real
    #    application recording via TraceRecorder).
    hot = synthetic_trace(3_000, 64 * 4_096, read_ratio=0.9, locality=0.9, seed=1)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "workload.npz")
        hot.save(path)
        reloaded = Trace.load(path)
        print(f"saved and reloaded {len(reloaded)} ops from {path.split('/')[-1]}")

    # 2. The same trace on every system: high locality (hot 10% gets 90%).
    replay_everywhere(hot, "high-locality trace")

    # 3. A uniform-random trace: the paging systems lose their cache.
    cold = synthetic_trace(3_000, 64 * 4_096, read_ratio=0.9, locality=0.0, seed=1)
    replay_everywhere(cold, "uniform-random trace")

    print("\nByte-granular access keeps the random case bounded: 64B over PCIe")
    print("instead of 4KB through the page-fault path.")


if __name__ == "__main__":
    main()
