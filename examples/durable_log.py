#!/usr/bin/env python3
"""Byte-granular persistence: a crash-consistent write-ahead log (§3.5).

Builds a tiny durable log on a FlatFlash persistent memory region, commits
some records, leaves one un-fenced, crashes the machine, and shows what
recovery sees: committed records survive in the battery-backed domain, the
un-fenced record does not.

Run:  python examples/durable_log.py
"""

import struct

from repro import FlatFlash, create_pmem_region, small_config

RECORD = struct.Struct("<I28s")  # length-prefixed 32-byte log records


def write_record(pmem, offset: int, payload: bytes, fence: bool) -> int:
    data = RECORD.pack(len(payload), payload.ljust(28, b"\x00"))
    pmem.persist_store(offset, RECORD.size, data)
    if fence:
        pmem.commit()  # write-verify read: durable past this point
    return offset + RECORD.size


def read_back(pmem, count: int):
    for index in range(count):
        raw = pmem.recover_bytes(index * RECORD.size, RECORD.size)
        length, payload = RECORD.unpack(raw)
        yield payload[:length].decode() if length else "(empty)"


def main() -> None:
    system = FlatFlash(small_config())
    pmem = create_pmem_region(system, num_pages=4, name="wal")
    print(f"persistent region: {pmem.size} bytes, pages pinned to the SSD\n")

    cost_us = pmem.durable_store(2_048, 8) / 1_000
    print(f"for scale: one fully durable 8-byte update costs {cost_us:.1f} us —")
    print("a block-interface journal write would cost a full 4 KB page\n")

    offset = 0
    offset = write_record(pmem, offset, b"txn-1: alice +=100", fence=True)
    offset = write_record(pmem, offset, b"txn-2: bob -=100", fence=True)
    offset = write_record(pmem, offset, b"txn-3: UNFENCED", fence=False)
    print("wrote 3 records; txn-3 was posted but never fenced")

    system.ssd.crash()
    print("power failure! battery-backed SSD-Cache destages, posted writes die\n")

    print("recovery reads the log from flash:")
    for index, text in enumerate(read_back(pmem, 3), start=1):
        status = "SURVIVED" if not text.startswith("(") else "LOST"
        print(f"  record {index}: {text!r:30} [{status}]")


if __name__ == "__main__":
    main()
