#!/usr/bin/env python3
"""Quickstart: the unified memory interface in five minutes.

Maps an SSD-backed region on FlatFlash, shows byte-granular access to
SSD-resident pages, watches the adaptive promotion move a hot page into
DRAM, and compares the same accesses against the paging baselines.

Run:  python examples/quickstart.py
"""

from repro import FlatFlash, TraditionalStack, UnifiedMMap, small_config


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


def main() -> None:
    banner("1. Map SSD-backed memory and access it with plain loads/stores")
    system = FlatFlash(small_config())
    region = system.mmap(num_pages=256, name="demo")
    print(f"mapped {region.num_pages} pages at vaddr {region.base_addr:#x}")

    system.store(region.addr(128), 16, b"hello flatflash!")
    result = system.load(region.addr(128), 16)
    print(f"load -> {result.data!r}")
    cold = system.load(region.addr(4096 * 3), 64)
    print(f"cold 64B load: served from {cold.source} in {cold.latency_ns / 1000:.1f} us")
    print("      (no page fault: the PTE points straight at the flash page)")

    banner("2. Hot pages promote to DRAM automatically (Algorithm 1)")
    hot_page = region.addr(0)
    for line in range(16):  # walk the page's cache lines: the SSD sees each
        system.load(hot_page + line * 64, 64)
    system.quiesce()  # let the in-flight promotion finish
    result = system.load(hot_page + 16 * 64, 64)
    print(f"after 16 touches: served from {result.source} "
          f"in {result.latency_ns / 1000:.1f} us")
    print(f"promotions so far: {system.promotions}")

    banner("3. The same workload on the paging baselines")
    for cls in (UnifiedMMap, TraditionalStack):
        baseline = cls(small_config())
        other = baseline.mmap(num_pages=256)
        first = baseline.load(other.addr(4096 * 7), 64)
        again = baseline.load(other.addr(4096 * 7), 64)
        print(
            f"{baseline.name:>17}: first touch {first.latency_ns / 1000:6.1f} us "
            f"(page fault={first.fault}), cached {again.latency_ns / 1000:.1f} us, "
            f"faults={baseline.page_faults}"
        )

    banner("4. Where did the time go?")
    for key, value in sorted(system.stats.counters().items()):
        if value and key.startswith(("mem.", "ssd.", "plb.")):
            print(f"  {key:<32} {value}")


if __name__ == "__main__":
    main()
