#!/usr/bin/env python3
"""A B+-tree index on unified memory: point lookups vs range scans.

Builds an index far larger than DRAM on each memory system, then compares
the cost of skewed point lookups (upper levels promote to DRAM; cold
leaves ride byte-granular MMIO) and leaf-chain range scans.

Run:  python examples/btree_index.py
"""

import numpy as np

from repro.apps.btree import BPlusTree
from repro.experiments.common import build_system, scaled_config
from repro.workloads.zipfian import ZipfianGenerator

NUM_KEYS = 4_000
LOOKUPS = 1_500
SCANS = 30
SCAN_WIDTH = 200


def main() -> None:
    rng = np.random.default_rng(13)
    keys = rng.permutation(NUM_KEYS)
    zipf = ZipfianGenerator(NUM_KEYS, theta=0.9, seed=14)

    print(f"index: {NUM_KEYS} keys; {LOOKUPS} Zipfian lookups; "
          f"{SCANS} scans of {SCAN_WIDTH} keys\n")
    print(f"{'system':>17} | {'height':>6} | {'lookup us':>9} | {'scan us':>9} | movements")
    print("-" * 66)
    for name in ("TraditionalStack", "UnifiedMMap", "FlatFlash"):
        config = scaled_config(dram_pages=24, ssd_to_dram=128, track_data=True)
        system = build_system(name, config)
        tree = BPlusTree(system, capacity_pages=1_024)
        for key in keys:
            tree.insert(int(key), int(key) * 2 + 1)

        start = system.clock.now
        for rank in zipf.sample(LOOKUPS):
            value = tree.get(int(rank))
            assert value == int(rank) * 2 + 1
        lookup_us = (system.clock.now - start) / LOOKUPS / 1_000

        start = system.clock.now
        for index in range(SCANS):
            low = (index * 123) % (NUM_KEYS - SCAN_WIDTH)
            count = sum(1 for _ in tree.scan(low, low + SCAN_WIDTH))
            assert count == SCAN_WIDTH
        scan_us = (system.clock.now - start) / SCANS / 1_000

        print(
            f"{name:>17} | {tree.height:>6} | {lookup_us:>9.1f} | {scan_us:>9.1f} "
            f"| {system.page_movements}"
        )
    print("\nHot inner nodes promote to DRAM on FlatFlash; cold leaves are read")
    print("byte-granularly instead of paging 4 KB per 16-byte index entry.")


if __name__ == "__main__":
    main()
