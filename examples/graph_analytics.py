#!/usr/bin/env python3
"""Out-of-core graph analytics on a byte-addressable SSD (§5.3).

Generates a power-law graph larger than DRAM, runs PageRank through the
memory hierarchy on all three systems, and prints runtimes and page
movements — the Fig. 10 experiment in miniature.  Also verifies the ranks
against a pure-numpy reference so you can see the engine computes real
answers, not just traffic.

Run:  python examples/graph_analytics.py
"""

import numpy as np

from repro.apps.graph_analytics import GraphEngine
from repro.experiments.common import build_system, scaled_config
from repro.workloads.graphs import power_law_graph


def main() -> None:
    graph = power_law_graph(num_vertices=3_000, avg_degree=14, seed=9)
    footprint_pages = -(-(graph.num_edges + 2 * graph.num_vertices) * 8 // 4_096)
    dram_pages = max(8, footprint_pages // 5)
    print(
        f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges "
        f"(~{footprint_pages} pages); DRAM: {dram_pages} pages "
        f"(graph is {footprint_pages / dram_pages:.1f}x DRAM)\n"
    )

    reference = None
    print(f"{'system':>17} | {'sim time':>10} | movements | top-vertex check")
    print("-" * 66)
    for name in ("TraditionalStack", "UnifiedMMap", "FlatFlash"):
        config = scaled_config(dram_pages=dram_pages, ssd_to_dram=128)
        system = build_system(name, config)
        engine = GraphEngine(system, graph)
        ranks = engine.pagerank(iterations=3)
        if reference is None:
            baseline_engine = GraphEngine(
                build_system("DRAM-only", scaled_config(dram_pages=footprint_pages + 64)),
                graph,
            )
            reference = baseline_engine.pagerank(iterations=3, charge_accesses=False)
        agree = np.argmax(ranks) == np.argmax(reference)
        print(
            f"{name:>17} | {system.clock.now / 1e6:8.2f}ms | {system.page_movements:9} "
            f"| {'ok' if agree else 'MISMATCH'}"
        )
    print("\nFlatFlash streams cold edge pages byte-granularly and promotes the")
    print("hot, high-in-degree vertex pages — both baselines must page everything.")


if __name__ == "__main__":
    main()
