#!/usr/bin/env python3
"""FlatFS: a working file system on byte-granular persistence (§3.5).

Creates directories and files, crashes the machine mid-stream, recovers by
replaying the logical redo journal, and shows what each metadata operation
cost compared to a block-journaling file system.

Run:  python examples/flatfs_demo.py
"""

from repro import FlatFlash, UnifiedMMap, small_config
from repro.apps.filesystem import FileSystemKind, make_filesystem
from repro.apps.flatfs import FlatFS
from repro.workloads.filebench import CREATE_FILE, repeated_ops


def build_fs() -> FlatFS:
    config = small_config()
    config.geometry.dram_pages = 32
    config.geometry.ssd_pages = 8_192
    config.geometry.ssd_cache_pages = 64
    return FlatFS(FlatFlash(config.validate()), num_inodes=32, data_blocks=48)


def main() -> None:
    fs = build_fs()
    print("=== 1. A real namespace on unified memory ===")
    fs.mkdir("/projects")
    fs.create("/projects/paper.tex")
    fs.write_file("/projects/paper.tex", b"\\title{FlatFlash}" * 40)
    fs.rename("/projects/paper.tex", "/projects/camera-ready.tex")
    print("  /projects ->", fs.listdir("/projects"))
    print("  size:", fs.stat("/projects/camera-ready.tex")["size"], "bytes")

    print("\n=== 2. Crash mid-workload, then redo-journal recovery ===")
    fs.create("/projects/reviews.md")
    fs.create("/scratch")  # these two ops are journaled but not checkpointed
    fs.system.ssd.crash()
    redone = fs.recover()
    print(f"  recovered by replaying {redone} journaled ops")
    print("  / ->", fs.listdir("/"))
    print("  /projects ->", fs.listdir("/projects"))
    data = fs.read_file("/projects/camera-ready.tex")
    print("  file contents intact:", data[:17], f"({len(data)} bytes)")

    print("\n=== 3. What did metadata persistence cost? ===")
    start = fs.system.clock.now
    for index in range(20):
        fs.create(f"/scratch-file-{index}")
    flatfs_us = (fs.system.clock.now - start) / 20 / 1_000

    block = make_filesystem(FileSystemKind.EXT4, UnifiedMMap(small_config()))
    outcome = block.run(repeated_ops(CREATE_FILE, 20))
    print(f"  FlatFS create (byte-granular journal): {flatfs_us:6.1f} us/op")
    print(f"  EXT4-model create (block journal):     {outcome.mean_op_ns / 1_000:6.1f} us/op")


if __name__ == "__main__":
    main()
