#!/usr/bin/env python3
"""Redis-style key-value store: tail latency under memory pressure (§5.4).

Runs YCSB-B (95% reads, Zipfian) against a KV store whose working set is
8x the host DRAM, on all three systems, and prints the mean / p50 / p99
latency plus page-movement counts — the experiment behind Figs. 11-12.

Run:  python examples/kvstore_tail_latency.py
"""

from repro.apps.kvstore import KVStore, run_ycsb
from repro.experiments.common import build_system, scaled_config
from repro.workloads.ycsb import RECORD_SIZE, YCSB_B

DRAM_PAGES = 32
WS_RATIO = 8  # working set : DRAM
NUM_OPS = 6_000


def main() -> None:
    records = WS_RATIO * DRAM_PAGES * 4_096 // RECORD_SIZE
    print(f"KV store: {records} records of {RECORD_SIZE} B, "
          f"working set {WS_RATIO}x DRAM, {NUM_OPS} YCSB-B ops\n")
    print(f"{'system':>17} | {'mean':>9} | {'p50':>9} | {'p99':>9} | movements")
    print("-" * 68)
    for name in ("TraditionalStack", "UnifiedMMap", "FlatFlash"):
        config = scaled_config(dram_pages=DRAM_PAGES, ssd_to_dram=256)
        system = build_system(name, config)
        store = KVStore(system, capacity_records=records + 1_024)
        stats = run_ycsb(store, YCSB_B, num_ops=NUM_OPS, num_records=records)
        print(
            f"{name:>17} | {stats.mean / 1000:7.1f}us | {stats.p50 / 1000:7.1f}us "
            f"| {stats.p99 / 1000:7.1f}us | {system.page_movements}"
        )
    print("\nFlatFlash keeps the tail down by serving cold keys byte-granularly")
    print("over PCIe instead of paging whole 4KB pages for 64B records.")


if __name__ == "__main__":
    main()
