"""Shared benchmark plumbing.

Every benchmark runs its experiment once under pytest-benchmark (the
simulator is deterministic, so one round is exact), prints the
paper-shaped table, and asserts the qualitative *shape* the paper reports
— who wins, roughly by how much, where the crossovers are.
"""

import pytest


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark a deterministic experiment with a single round."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def runner(func, *args, **kwargs):
        return run_once(benchmark, func, *args, **kwargs)

    return runner
