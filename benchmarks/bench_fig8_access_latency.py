"""Figure 8: sequential vs random 64B access latency across SSD:DRAM ratios.

Paper shape: random accesses — FlatFlash 1.2-1.4x faster than UnifiedMMap
and 1.8-2.1x faster than TraditionalStack; sequential — FlatFlash close to
UnifiedMMap (slight promotion overhead), both far ahead of the traditional
stack's per-fault storage software costs on cold pages.
"""

from repro.experiments import fig8


def test_fig8_sequential_and_random_latency(once):
    result = once(fig8.run, ratios=[16, 128, 512], num_ops=2_000, warmup_ops=1_000)
    fig8.render(result).print()

    speedups = fig8.summarize_speedups(result)
    print("\nFlatFlash random-access speedup:", speedups)

    # Shape: FlatFlash wins random access against both baselines.
    assert speedups["UnifiedMMap"] > 1.1
    assert speedups["TraditionalStack"] > 1.4
    # Ordering holds at every ratio for random access.
    for ratio in (16, 128, 512):
        flat = result.filtered(ratio=ratio, system="FlatFlash")[0]["random_ns"]
        unified = result.filtered(ratio=ratio, system="UnifiedMMap")[0]["random_ns"]
        traditional = result.filtered(ratio=ratio, system="TraditionalStack")[0][
            "random_ns"
        ]
        assert flat < unified < traditional
