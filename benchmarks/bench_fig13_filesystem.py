"""Figure 13: file-system metadata persistence, block vs byte-granular.

Paper shape: FlatFlash improves the five FileBench-style workloads by
2.6-18.9x across EXT4/XFS/BtrFS, with SSD-lifetime gains from the removed
journal/COW write amplification; copy-on-write (BtrFS) benefits most,
logical journaling (XFS) least.
"""

from repro.apps.filesystem import FileSystemKind
from repro.experiments import fig13


def test_fig13_metadata_persistence(once):
    result = once(fig13.run, ops_per_workload=100)
    fig13.render(result).print()

    ranges = fig13.speedup_range(result)
    print("\nspeedup ranges:", ranges)

    # Every cell: byte-granular persistence wins.
    for row in result.rows:
        assert row["speedup"] > 1.0, f"{row['filesystem']}/{row['workload']}"
        assert row["lifetime_gain"] > 1.0

    # Ordering of write-amplification disciplines: BtrFS > EXT4 > XFS.
    assert ranges["btrfs"][1] > ranges["ext4"][1] > ranges["xfs"][1]

    # Magnitude: the best case lands in the paper's multi-x territory.
    best = max(row["speedup"] for row in result.rows)
    assert best > 3.0


def test_fig13_journal_page_model(once):
    """The per-op block write counts that drive Fig. 13's spread."""
    ext4, xfs, btrfs = once(
        lambda: tuple(
            fig13_pages(kind)
            for kind in (FileSystemKind.EXT4, FileSystemKind.XFS, FileSystemKind.BTRFS)
        )
    )
    print(f"journal pages per CreateFile: ext4={ext4} xfs={xfs} btrfs={btrfs}")
    assert btrfs > ext4 > xfs


def fig13_pages(kind):
    from repro.apps.filesystem import _journal_pages
    from repro.workloads.filebench import CREATE_FILE

    return _journal_pages(kind, CREATE_FILE)
