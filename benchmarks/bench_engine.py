"""Scalar-vs-engine wall clock for the trace-replay engine (ROADMAP item 1).

The replay engine (:mod:`repro.engine`) only pays off if the compiled
fast path actually beats the per-access scalar loop on the paper-shape
experiments that adopted it.  This benchmark times three sweep cells
both ways — engine disabled (scalar reference) and enabled — and checks
two things:

* the rows are byte-identical (the engine is an optimisation, never a
  result change);
* the engine run has not regressed past 2x the committed baseline
  (``--check benchmarks/BENCH_engine_baseline.json`` in CI, mirroring
  ``bench_analyze.py``).

Cells and what they exercise:

* ``fig9a`` — GUPS random access: mostly SSD-resident pages, so the
  thin-delegation path (inlined translation kernels + direct
  ``_access_page``) dominates.
* ``fig10`` — graph analytics: mixed DRAM/SSD with promotions, so the
  fused DRAM path and the ORDER_DEPENDENT settle hooks both run hot.
* ``fig14`` — OLTP on MiniDB: *not* engine-accelerated — the DES
  workers feed each access latency back into the scheduler, making
  global order loop-carried (see BATCH.json) — timed here so the cost
  of leaving it scalar stays visible.

Usage::

    pytest benchmarks/bench_engine.py --benchmark-only
    python benchmarks/bench_engine.py --output BENCH_engine.json \
        --check benchmarks/BENCH_engine_baseline.json
"""

from __future__ import annotations

import hashlib
import json
import sys
import time
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

#: Sweep cells timed scalar-vs-engine.
CELLS = ("fig9a", "fig10", "fig14")

#: Engine run slower than 2x its baseline time fails ``--check``.
SLOWDOWN_LIMIT = 2.0

#: Baseline times are clamped up to this before comparing (scheduler
#: jitter on sub-second cells must not fail CI).
NOISE_FLOOR_SECONDS = 0.5


def _run_cell(name: str, engine: bool) -> Dict[str, object]:
    """One cold cell run; returns wall seconds + a digest of the rows."""
    from repro.config import set_engine_default
    from repro.sweep.registry import call_cell, default_registry

    previous = set_engine_default(engine)
    try:
        cell = default_registry()[name]
        start = time.perf_counter()
        result = call_cell(cell)
        elapsed = time.perf_counter() - start
    finally:
        set_engine_default(previous)
    blob = json.dumps(result.rows, sort_keys=True, default=str)
    return {
        "seconds": round(elapsed, 4),
        "rows_sha256": hashlib.sha256(blob.encode("utf-8")).hexdigest(),
    }


def time_cells() -> Dict[str, Dict[str, object]]:
    """Run every cell scalar then engine; returns the comparison table."""
    table: Dict[str, Dict[str, object]] = {}
    for name in CELLS:
        scalar = _run_cell(name, engine=False)
        engine = _run_cell(name, engine=True)
        table[name] = {
            "scalar_seconds": scalar["seconds"],
            "engine_seconds": engine["seconds"],
            "speedup": round(
                float(scalar["seconds"]) / max(float(engine["seconds"]), 1e-9), 2
            ),
            "identical": scalar["rows_sha256"] == engine["rows_sha256"],
            "rows_sha256": engine["rows_sha256"],
        }
    return table


# --------------------------------------------------------------------------
# pytest-benchmark cases: engine-on cell runs, equivalence asserted
# --------------------------------------------------------------------------


def _bench_cell(once, name: str) -> None:
    scalar = _run_cell(name, engine=False)
    engine = once(_run_cell, name, engine=True)
    assert engine["rows_sha256"] == scalar["rows_sha256"], (
        f"{name}: engine rows diverged from the scalar reference"
    )


def test_bench_engine_fig9a(once):
    _bench_cell(once, "fig9a")


def test_bench_engine_fig10(once):
    _bench_cell(once, "fig10")


def test_bench_engine_fig14(once):
    _bench_cell(once, "fig14")


# --------------------------------------------------------------------------
# Script mode: write BENCH_engine.json for the CI artifact
# --------------------------------------------------------------------------


def check_regressions(
    table: Dict[str, Dict[str, object]], baseline: Dict[str, object]
) -> List[str]:
    """Cells that diverged or slowed past ``SLOWDOWN_LIMIT`` vs baseline.

    Cells absent from the baseline (newly adopted) are skipped — the
    baseline must be regenerated to start guarding them.
    """
    failures: List[str] = []
    old_cells = baseline.get("cells", {})
    for name, row in table.items():
        if not row["identical"]:
            failures.append(f"{name}: engine rows differ from scalar rows")
        old = old_cells.get(name)
        if not isinstance(old, dict) or "engine_seconds" not in old:
            continue
        budget = (
            max(float(old["engine_seconds"]), NOISE_FLOOR_SECONDS) * SLOWDOWN_LIMIT
        )
        if float(row["engine_seconds"]) > budget:
            failures.append(
                f"{name}: engine {row['engine_seconds']:.3f}s > {budget:.3f}s "
                f"(baseline {float(old['engine_seconds']):.3f}s x {SLOWDOWN_LIMIT:g})"
            )
    return failures


def main(argv: List[str]) -> int:
    output = "BENCH_engine.json"
    if "--output" in argv:
        output = argv[argv.index("--output") + 1]
    check_path = None
    if "--check" in argv:
        check_path = argv[argv.index("--check") + 1]
    table = time_cells()
    document = {
        "schema_version": 1,
        "cells": table,
        "total_engine_seconds": round(
            sum(float(row["engine_seconds"]) for row in table.values()), 4
        ),
        "total_scalar_seconds": round(
            sum(float(row["scalar_seconds"]) for row in table.values()), 4
        ),
    }
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for name, row in table.items():
        print(
            f"{name:>8}: scalar {row['scalar_seconds']:7.3f}s  "
            f"engine {row['engine_seconds']:7.3f}s  "
            f"({row['speedup']:.2f}x, identical={row['identical']})"
        )
    print(f"wrote {output}")
    if check_path is not None:
        with open(check_path, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        failures = check_regressions(table, baseline)
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION {failure}", file=sys.stderr)
            return 1
        print(f"no cell slower than {SLOWDOWN_LIMIT:g}x the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
