"""Figure 9: HPCC-GUPS throughput and SSD-Cache sensitivity.

Paper shape: (a) FlatFlash 1.5-1.6x faster than UnifiedMMap and 2.5-2.7x
faster than TraditionalStack, with fewer SSD<->DRAM page movements;
(b) FlatFlash's edge *grows* with the SSD-Cache size while the paging
baselines cannot use the SSD-Cache at all.
"""

from repro.experiments import fig9


def test_fig9a_gups_throughput(once):
    result = once(fig9.run_fig9a, ratios=[16, 128, 512], num_updates=8_000)
    fig9.render_fig9a(result).print()
    for ratio in (16, 128, 512):
        flat = result.filtered(ratio=ratio, system="FlatFlash")[0]
        unified = result.filtered(ratio=ratio, system="UnifiedMMap")[0]
        traditional = result.filtered(ratio=ratio, system="TraditionalStack")[0]
        # Performance ordering: FlatFlash < UnifiedMMap < TraditionalStack
        # in per-update time.
        assert flat["mean_update_ns"] < unified["mean_update_ns"]
        assert unified["mean_update_ns"] < traditional["mean_update_ns"]
        # Page movements: FlatFlash avoids migrating low-reuse pages.
        assert flat["page_movements"] < unified["page_movements"]
    # Magnitude: within the paper's ballpark (1.5-2.7x band, loosely).
    speedup = (
        result.filtered(ratio=512, system="UnifiedMMap")[0]["mean_update_ns"]
        / result.filtered(ratio=512, system="FlatFlash")[0]["mean_update_ns"]
    )
    assert 1.2 < speedup < 4.0


def test_fig9b_ssd_cache_sensitivity(once):
    result = once(
        fig9.run_fig9b,
        cache_ratios=[0.0005, 0.00125, 0.005, 0.02],
        num_updates=6_000,
    )
    fig9.render_fig9b(result).print()
    speedups = [row["speedup_vs_unified"] for row in result.rows]
    # Monotone (non-decreasing) benefit with a larger SSD-Cache.
    assert all(b >= a * 0.98 for a, b in zip(speedups, speedups[1:]))
    assert speedups[-1] > speedups[0]
