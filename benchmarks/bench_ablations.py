"""Ablations of FlatFlash's design choices (DESIGN.md §6).

Each assertion pins the *reason* a mechanism exists:

* adaptive promotion avoids the page-movement storm of promote-always
  while staying competitive on latency;
* the PLB keeps the 12.1 us page copy off the critical path;
* RRIP resists scans better than LRU in the SSD-Cache;
* cacheable (CAPI) MMIO collapses hot-line re-reads to cache latency;
* per-transaction logging breaks the centralized log's lock ceiling.
"""

from repro.experiments import ablations


def test_promotion_policy_ablation(once):
    result = once(ablations.run_promotion_policy)
    ablations.render_promotion_policy(result).print()
    rows = {row["policy"]: row for row in result.rows}
    adaptive = rows["adaptive (Alg. 1)"]
    promote_always = rows["fixed(1)"]
    never = rows["no promotion"]
    # Promote-always floods the SSD<->DRAM channel with page movements...
    assert promote_always["page_movements"] > 20 * max(1, adaptive["page_movements"])
    # ...while adaptive stays within 25% of its latency without the traffic
    # and beats never-promoting.
    assert adaptive["mean_ns"] <= promote_always["mean_ns"] * 1.25
    assert adaptive["mean_ns"] <= never["mean_ns"]


def test_plb_ablation(once):
    result = once(ablations.run_plb)
    ablations.render_plb(result).print()
    rows = {row["mode"]: row for row in result.rows}
    plb = rows["PLB (off critical path)"]
    stall = rows["stall on promotion"]
    assert plb["promotions"] == stall["promotions"]  # same policy decisions
    assert stall["mean_ns"] > plb["mean_ns"] * 1.2  # the stall is real
    assert stall["p99_ns"] > plb["p99_ns"]


def test_ssd_cache_policy_ablation(once):
    result = once(ablations.run_cache_policy)
    ablations.render_cache_policy(result).print()
    rows = {row["policy"]: row for row in result.rows}
    assert rows["RRIP"]["cache_hit_ratio"] >= rows["LRU"]["cache_hit_ratio"]
    assert rows["RRIP"]["mean_access_ns"] <= rows["LRU"]["mean_access_ns"]


def test_cacheable_mmio_ablation(once):
    result = once(ablations.run_cacheable_mmio)
    ablations.render_cacheable_mmio(result).print()
    rows = {row["mode"]: row for row in result.rows}
    hot_capi = rows["cacheable (CAPI)"]["hot_line_ns"]
    hot_plain = rows["uncacheable"]["hot_line_ns"]
    # Hot lines collapse to near cache latency with coherence.
    assert hot_plain > 10 * hot_capi


def test_prefetch_extension(once):
    result = once(ablations.run_prefetch)
    ablations.render_prefetch(result).print()
    rows = {row["mode"]: row for row in result.rows}
    off = rows["off (paper)"]
    near = rows["prefetch after 2"]
    # Prefetching helps sequential streams without hurting random access.
    assert near["sequential_ns"] < off["sequential_ns"]
    assert near["random_ns"] <= off["random_ns"] * 1.05
    assert near["prefetches"] > 0
    assert off["prefetches"] == 0


def test_sequential_fairness(once):
    """Even with kernel readahead on the baselines' side, FlatFlash with
    stream prefetch wins sequential sweeps."""
    result = once(ablations.run_sequential_fairness)
    ablations.render_sequential_fairness(result).print()
    rows = {(row["system"], row["mode"]): row for row in result.rows}
    readahead = rows[("UnifiedMMap", "readahead 8")]
    no_readahead = rows[("UnifiedMMap", "no readahead")]
    prefetch = rows[("FlatFlash", "prefetch after 2")]
    assert readahead["sequential_ns"] <= no_readahead["sequential_ns"]
    assert prefetch["sequential_ns"] < readahead["sequential_ns"]


def test_logging_scheme_ablation(once):
    result = once(ablations.run_logging_scheme)
    ablations.render_logging_scheme(result).print()
    # At 16 threads per-tx logging clearly outscales the centralized log.
    high = result.filtered(threads=16)[0]
    assert high["per_tx_tps"] > 1.8 * high["central_tps"]
    assert high["lock_contention"] > 0.5
    # At 2 threads the difference is small (the lock is barely contended).
    low = result.filtered(threads=2)[0]
    assert low["per_tx_tps"] < 1.3 * low["central_tps"]
