"""YCSB-E (scan-heavy) on the B+-tree index over unified memory.

An adoption-style benchmark beyond the paper's own figures: an ordered
index larger than DRAM, driven by YCSB workload E (95 % short scans, 5 %
inserts).  Shape: FlatFlash serves leaf chains byte-granularly and keeps
the hot inner nodes in DRAM, beating both paging baselines; enabling the
sequential-prefetch extension improves it further on the leaf chains.
"""

from repro.apps.btree import BPlusTree
from repro.experiments.common import build_system, scaled_config

NUM_KEYS = 2_000
OPS = 400


def build_tree(system_name: str, prefetch: int = 0) -> BPlusTree:
    config = scaled_config(dram_pages=16, ssd_to_dram=256, track_data=True)
    config.promotion.sequential_prefetch = prefetch
    system = build_system(system_name, config)
    tree = BPlusTree(system, capacity_pages=512)
    for key in range(NUM_KEYS):
        tree.insert(key, key * 3 + 1)
    return tree


def run_all_systems():
    results = {}
    for name in ("TraditionalStack", "UnifiedMMap", "FlatFlash"):
        tree = build_tree(name)
        stats = tree.run_ycsb_e(num_ops=OPS, num_records=NUM_KEYS)
        results[name] = stats.mean
    tree = build_tree("FlatFlash", prefetch=2)
    results["FlatFlash+prefetch"] = tree.run_ycsb_e(
        num_ops=OPS, num_records=NUM_KEYS
    ).mean
    return results


def test_ycsb_e_on_btree(once):
    means = once(run_all_systems)
    print("\nYCSB-E mean op latency (us):")
    for name, mean in means.items():
        print(f"  {name:>20}: {mean / 1_000:8.1f}")

    assert means["FlatFlash"] < means["UnifiedMMap"]
    assert means["FlatFlash"] < means["TraditionalStack"]
    # The prefetch extension must not regress scan-heavy indexes.
    assert means["FlatFlash+prefetch"] <= means["FlatFlash"] * 1.05
