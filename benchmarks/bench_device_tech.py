"""Device-technology extension study (§6's DRAM-NVM outlook).

Shape: FlatFlash beats paging on every device generation, and from
low-latency flash toward NVM-class media the YCSB advantage *grows* — the
faster the medium, the more the paging software path dominates the
baseline, which is the paper's argument that these techniques carry over
to DRAM-NVM hierarchies.
"""

from repro.experiments import device_tech


def test_device_technology_sweep(once):
    result = once(device_tech.run, num_ops=4_000)
    device_tech.render(result).print()

    # FlatFlash wins on every generation and workload.
    for row in result.rows:
        assert row["speedup"] > 1.0, f"{row['device']}/{row['workload']}"

    # From low-latency flash to XPoint-class, the YCSB advantage grows.
    ycsb = [
        row["speedup"]
        for row in result.rows
        if row["workload"] == "YCSB-B" and row["device"] != "NAND flash"
    ]
    assert ycsb == sorted(ycsb)
    assert ycsb[-1] > ycsb[0]
