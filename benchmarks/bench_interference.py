"""Workload-interference study (§5.4's DRAM-pollution claim).

Shape: with a thrashing co-runner, FlatFlash's victim keeps both the best
absolute latency and the smallest degradation — the adaptive threshold
refuses to promote the antagonist's low-reuse pages, so the victim's hot
set stays in DRAM while the paging baselines keep re-admitting antagonist
pages through the fault path.
"""

from repro.experiments import interference


def test_interference_isolation(once):
    result = once(interference.run, num_ops=3_000)
    interference.render(result).print()

    rows = {row["system"]: row for row in result.rows}
    flat = rows["FlatFlash"]
    unified = rows["UnifiedMMap"]
    traditional = rows["TraditionalStack"]

    # Absolute victim latency under load: FlatFlash clearly ahead.
    assert flat["loaded_mean_ns"] * 1.8 < unified["loaded_mean_ns"]
    assert flat["loaded_mean_ns"] * 2.0 < traditional["loaded_mean_ns"]
    assert flat["loaded_p99_ns"] < unified["loaded_p99_ns"]

    # Relative degradation: FlatFlash suffers no more than the baselines.
    assert flat["p99_blowup"] <= unified["p99_blowup"] + 0.01
    flat_mean_blowup = flat["loaded_mean_ns"] / flat["alone_mean_ns"]
    unified_mean_blowup = unified["loaded_mean_ns"] / unified["alone_mean_ns"]
    assert flat_mean_blowup < unified_mean_blowup
