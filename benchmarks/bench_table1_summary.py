"""Table 1: the summary improvements over UnifiedMMap, all workloads."""

from repro.experiments import table1


def test_table1_summary(once):
    result = once(table1.run)
    table1.render(result).print()

    by_benchmark = {row["benchmark"]: row for row in result.rows}

    # Every workload: FlatFlash at least matches UnifiedMMap on performance.
    for benchmark, row in by_benchmark.items():
        assert row["measured_perf"] >= 0.95, f"{benchmark} regressed"

    # The headline wins of Table 1 reproduce as wins.
    for benchmark in ("GUPS", "YCSB-B", "CreateFile", "VarMail", "TPCB"):
        assert by_benchmark[benchmark]["measured_perf"] > 1.2, benchmark

    # Lifetime: file-system workloads must show large flash-write savings.
    assert by_benchmark["CreateFile"]["measured_lifetime"] > 2.0
    assert by_benchmark["VarMail"]["measured_lifetime"] > 2.0
