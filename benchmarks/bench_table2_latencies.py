"""Table 2: component latencies — measured through the public interfaces."""

from repro.experiments import table2


def test_table2_component_latencies(once):
    result = once(table2.run)
    table2.render(result).print()
    for row in result.rows:
        assert row["measured_us"] == row["paper_us"], (
            f"{row['component']}: measured {row['measured_us']}us, "
            f"paper says {row['paper_us']}us"
        )
