"""FlatFS end-to-end: a working file system on byte-granular persistence.

Beyond Fig. 13's cost models, FlatFS executes *real* namespace operations
(directory scans, inode updates, redo journaling) through the memory
hierarchy.  Shape: metadata ops on FlatFS (byte-granular journal +
battery-backed durability) beat the block-journaling model running over
the paging baseline, and crash recovery replays the journal exactly.
"""

from repro import FlatFlash, UnifiedMMap
from repro.apps.filesystem import FileSystemKind, make_filesystem
from repro.apps.flatfs import FlatFS
from repro.experiments.common import scaled_config
from repro.workloads.filebench import CREATE_FILE, RENAME_FILE, repeated_ops

OPS = 60


def run_comparison():
    config = scaled_config(
        dram_pages=32, ssd_to_dram=256, ssd_cache_pages=64, track_data=True
    )
    fs = FlatFS(FlatFlash(config), num_inodes=128, data_blocks=64)
    start = fs.system.clock.now
    for index in range(OPS):
        fs.create(f"/f{index}")
    create_us = (fs.system.clock.now - start) / OPS / 1_000
    start = fs.system.clock.now
    for index in range(OPS):
        fs.rename(f"/f{index}", f"/r{index}")
    rename_us = (fs.system.clock.now - start) / OPS / 1_000

    block_config = scaled_config(dram_pages=32, ssd_to_dram=256)
    block = make_filesystem(FileSystemKind.EXT4, UnifiedMMap(block_config))
    block_create_us = block.run(repeated_ops(CREATE_FILE, OPS)).mean_op_ns / 1_000
    block_rename_us = block.run(repeated_ops(RENAME_FILE, OPS)).mean_op_ns / 1_000

    # Crash consistency end to end: journaled ops survive.
    fs.create("/crash-me")
    fs.system.ssd.crash()
    fs.recover()
    recovered = fs.exists("/crash-me") and fs.exists("/r0")

    return {
        "flatfs_create_us": create_us,
        "flatfs_rename_us": rename_us,
        "block_create_us": block_create_us,
        "block_rename_us": block_rename_us,
        "recovered": recovered,
    }


def test_flatfs_vs_block_journaling(once):
    result = once(run_comparison)
    print(
        f"\ncreate: FlatFS {result['flatfs_create_us']:.1f} us vs "
        f"block-journal {result['block_create_us']:.1f} us"
    )
    print(
        f"rename: FlatFS {result['flatfs_rename_us']:.1f} us vs "
        f"block-journal {result['block_rename_us']:.1f} us"
    )
    assert result["recovered"], "journaled namespace lost after crash"
    assert result["flatfs_create_us"] < result["block_create_us"]
    assert result["flatfs_rename_us"] < result["block_rename_us"]
