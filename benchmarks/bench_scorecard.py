"""The reproduction scorecard: every abstract claim, one verdict each.

The gate for the whole harness: no claim may FAIL, and the
latency/performance claims must at least land inside the paper's reported
ranges.
"""

from repro.experiments import scorecard


def test_scorecard_no_failures(once):
    result = once(scorecard.run)
    scorecard.render(result).print()
    for row in result.rows:
        assert row["verdict"] != "FAILS", row["claim"]
        assert row["verdict"] != "PARTIAL", row["claim"]
        assert row["measured"] > 1.0
    strong = sum(1 for row in result.rows if row["verdict"] == "STRONG")
    assert strong >= 2  # several claims should land near the paper's best
