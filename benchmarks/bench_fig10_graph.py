"""Figure 10: graph analytics (PageRank, ConnComp) vs DRAM size.

Paper shape: FlatFlash 1.1-1.6x (PageRank) and 1.1-2.3x (ConnComp) over
UnifiedMMap, 1.2-4.8x over TraditionalStack, with the benefit growing as
DRAM shrinks; page movements lower for FlatFlash.
"""

from repro.experiments import fig10


def test_fig10_graph_analytics(once):
    result = once(fig10.run, dram_ratios=[3, 6], pagerank_iterations=2, cc_iterations=2)
    fig10.render(result).print()

    vs_unified = fig10.speedup_over(result, "UnifiedMMap")
    vs_traditional = fig10.speedup_over(result, "TraditionalStack")
    print("\nmax speedup vs UnifiedMMap:", vs_unified)
    print("max speedup vs TraditionalStack:", vs_traditional)

    # Shape: FlatFlash ahead of both baselines on connected components and
    # at least competitive on PageRank (the paper's weakest case is 1.1x).
    assert vs_unified["connected-components"] > 1.05
    assert vs_traditional["connected-components"] > 1.2
    assert vs_unified["pagerank"] > 0.95
    assert vs_traditional["pagerank"] > 1.1
    # TraditionalStack never beats UnifiedMMap (unified translation wins).
    for row_u in result.filtered(system="UnifiedMMap"):
        row_t = result.filtered(
            system="TraditionalStack",
            graph=row_u["graph"],
            algorithm=row_u["algorithm"],
            dram_ratio=row_u["dram_ratio"],
        )[0]
        assert row_t["elapsed_ms"] >= row_u["elapsed_ms"]
