"""Table 3: cost-effectiveness of FlatFlash vs a DRAM-only configuration.

Paper shape: FlatFlash is 1.2-11x slower but 2.4-15x cheaper, netting
1.3-3.8x better performance-per-dollar for every workload.
"""

from repro.experiments import table3


def test_table3_cost_effectiveness(once):
    result = once(table3.run)
    table3.render(result).print()

    for row in result.rows:
        # DRAM-only is always faster...
        assert row["slowdown"] > 1.0, row["workload"]
        # ...but FlatFlash is always cheaper...
        assert row["cost_saving"] > 1.0, row["workload"]
        # ...and wins on performance per dollar (the paper's conclusion).
        assert row["cost_effectiveness"] > 1.0, row["workload"]
