"""Per-analyzer wall-clock timing for the static-analysis family.

Two entry points share one measurement core:

* Under pytest-benchmark (``pytest benchmarks/bench_analyze.py
  --benchmark-only``) each analyzer is one benchmark case, so analysis
  cost shows up in the same report as the paper-shape experiments.
* As a script (``python benchmarks/bench_analyze.py --output
  BENCH_analyze.json``) it times every analyzer once and writes a small
  JSON document — the artifact CI uploads so analyzer-cost regressions
  are visible per commit.  ``--check BASELINE`` additionally compares
  the fresh timings against a committed baseline document and fails
  (exit 1) when any analyzer has slowed by more than 2x, with a small
  absolute noise floor so sub-50 ms analyzers can't trip the guard on
  scheduler jitter.

simeffect, simcost and simbatch are whole-program (one call-graph
fixpoint over the tree); the other three are per-file.  All are timed
over ``src/repro``.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

ANALYZE_PATHS = [str(SRC / "repro")]


def _simlint() -> int:
    from repro.analysis.simlint.engine import lint_paths

    return len(lint_paths(ANALYZE_PATHS))


def _simrace() -> int:
    from repro.analysis.simrace.engine import analyze_paths

    return len(analyze_paths(ANALYZE_PATHS))


def _simflow() -> int:
    from repro.analysis.simflow.engine import analyze_paths

    return len(analyze_paths(ANALYZE_PATHS))


def _simeffect() -> int:
    from repro.analysis.simeffect.engine import analyze_paths

    return len(analyze_paths(ANALYZE_PATHS))


def _simeffect_report() -> int:
    from repro.analysis.simeffect.engine import report_for_paths

    report = report_for_paths(ANALYZE_PATHS)
    return int(report["summary"]["annotated"])


def _simcost() -> int:
    from repro.analysis.simcost.engine import analyze_paths

    return len(analyze_paths(ANALYZE_PATHS))


def _simcost_report() -> int:
    from repro.analysis.simcost.engine import report_for_paths

    report = report_for_paths(ANALYZE_PATHS)
    return int(report["summary"]["entry_points"])


def _simbatch() -> int:
    from repro.analysis.simbatch.engine import analyze_paths

    return len(analyze_paths(ANALYZE_PATHS))


def _simbatch_report() -> int:
    from repro.analysis.simbatch.engine import report_for_paths

    report = report_for_paths(ANALYZE_PATHS)
    return int(report["summary"]["loops"])


ANALYZERS: Tuple[Tuple[str, Callable[[], int]], ...] = (
    ("simlint", _simlint),
    ("simrace", _simrace),
    ("simflow", _simflow),
    ("simeffect", _simeffect),
    ("simeffect_report", _simeffect_report),
    ("simcost", _simcost),
    ("simcost_report", _simcost_report),
    ("simbatch", _simbatch),
    ("simbatch_report", _simbatch_report),
)

#: Per-analyzer slowdown budget for ``--check`` (new > 2x old fails).
SLOWDOWN_LIMIT = 2.0

#: Baseline times are clamped up to this before comparing, so an
#: analyzer that took 10 ms on the baseline machine can't fail CI by
#: taking 30 ms on a noisier one.
NOISE_FLOOR_SECONDS = 0.05


def time_analyzers() -> Dict[str, Dict[str, float]]:
    """Run every analyzer once; returns {name: {seconds, result}}."""
    timings: Dict[str, Dict[str, float]] = {}
    for name, run in ANALYZERS:
        start = time.perf_counter()
        result = run()
        elapsed = time.perf_counter() - start
        timings[name] = {"seconds": round(elapsed, 4), "result": result}
    return timings


# --------------------------------------------------------------------------
# pytest-benchmark cases
# --------------------------------------------------------------------------


def test_bench_simlint(once):
    assert once(_simlint) == 0


def test_bench_simrace(once):
    assert once(_simrace) == 0


def test_bench_simflow(once):
    assert once(_simflow) == 0


def test_bench_simeffect(once):
    assert once(_simeffect) == 0


def test_bench_simeffect_report(once):
    assert once(_simeffect_report) > 0


def test_bench_simcost(once):
    assert once(_simcost) == 0


def test_bench_simcost_report(once):
    assert once(_simcost_report) > 0


def test_bench_simbatch(once):
    assert once(_simbatch) == 0


def test_bench_simbatch_report(once):
    assert once(_simbatch_report) > 0


# --------------------------------------------------------------------------
# Script mode: write BENCH_analyze.json for the CI artifact
# --------------------------------------------------------------------------


def check_regressions(
    timings: Dict[str, Dict[str, float]], baseline: Dict[str, object]
) -> List[str]:
    """Analyzers that slowed past ``SLOWDOWN_LIMIT`` vs ``baseline``.

    Analyzers absent from the baseline (newly added) are skipped — the
    baseline must be regenerated to start guarding them.
    """
    failures: List[str] = []
    old_timings = baseline.get("analyzers", {})
    for name, timing in timings.items():
        old = old_timings.get(name)
        if not isinstance(old, dict) or "seconds" not in old:
            continue
        budget = max(float(old["seconds"]), NOISE_FLOOR_SECONDS) * SLOWDOWN_LIMIT
        if timing["seconds"] > budget:
            failures.append(
                f"{name}: {timing['seconds']:.3f}s > {budget:.3f}s "
                f"(baseline {float(old['seconds']):.3f}s x {SLOWDOWN_LIMIT:g})"
            )
    return failures


def main(argv: List[str]) -> int:
    output = "BENCH_analyze.json"
    if "--output" in argv:
        output = argv[argv.index("--output") + 1]
    check_path = None
    if "--check" in argv:
        check_path = argv[argv.index("--check") + 1]
    timings = time_analyzers()
    document = {
        "schema_version": 1,
        "paths": ["src/repro"],
        "analyzers": timings,
        "total_seconds": round(sum(t["seconds"] for t in timings.values()), 4),
    }
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for name, timing in timings.items():
        print(f"{name:>18}: {timing['seconds']:8.3f}s (result={timing['result']})")
    print(f"wrote {output}")
    if check_path is not None:
        with open(check_path, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        failures = check_regressions(timings, baseline)
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION {failure}", file=sys.stderr)
            return 1
        print(f"no analyzer slower than {SLOWDOWN_LIMIT:g}x the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
