"""simsweep harness: a warm-cache replay must be near-free and byte-equal."""

from repro.sweep.cache import SweepCache
from repro.sweep.engine import run_sweep


def test_sweep_cached_replay(tmp_path, once):
    cache = SweepCache(tmp_path / "cache")
    cold = run_sweep(jobs=1, cache=cache, only=["table2"])
    warm = once(run_sweep, jobs=1, cache=cache, only=["table2"])
    assert warm.run_for("table2").cached
    assert not cold.run_for("table2").cached
    assert warm.results["table2"].rows == cold.results["table2"].rows
    assert warm.results["table2"].sections == cold.results["table2"].sections
