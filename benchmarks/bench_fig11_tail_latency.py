"""Figure 11: YCSB-B/D p99 latency on the Redis-style KV store.

Paper shape: FlatFlash reduces p99 by 2.0-2.8x vs UnifiedMMap and
1.8-2.7x vs TraditionalStack, with far fewer page movements (3.9M -> 2.7M
in the paper's B/16x cell), because adaptive promotion refuses to pollute
DRAM with low-reuse pages.
"""

from repro.experiments import fig11_12


def test_fig11_tail_latency(once):
    result = once(fig11_12.run, ws_ratios=[4, 8, 16], num_ops=6_000)
    fig11_12.render(result).print()

    for baseline in ("UnifiedMMap", "TraditionalStack"):
        reduction = fig11_12.tail_latency_reduction(result, baseline)
        print(f"max p99 reduction vs {baseline}: {reduction}x")
        assert reduction > 1.5  # paper: up to 2.8x

    # FlatFlash's p99 beats both baselines in every cell.
    for row in result.filtered(system="FlatFlash"):
        for baseline in ("UnifiedMMap", "TraditionalStack"):
            base = result.filtered(
                system=baseline, workload=row["workload"], ws_ratio=row["ws_ratio"]
            )[0]
            assert row["p99_ns"] <= base["p99_ns"]
            assert row["page_movements"] <= base["page_movements"]
