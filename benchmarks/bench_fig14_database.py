"""Figure 14: OLTP throughput with per-transaction logging.

Paper shape: (a-c) FlatFlash scales TPCC/TPCB/TATP throughput 1.1-3.0x
over UnifiedMMap and 1.6-4.2x over TraditionalStack at 4-16 threads;
(d) as device latency shrinks toward PCM-class, FlatFlash's advantage
grows (up to 5.3x) because its commit path never touches flash.
"""

from repro.experiments import fig14


def test_fig14abc_throughput_scaling(once):
    result = once(
        fig14.run_threads,
        thread_counts=[4, 8, 16],
        transactions_per_thread=50,
    )
    fig14.render_threads(result).print()

    vs_unified = fig14.max_scaling(result, "UnifiedMMap")
    vs_traditional = fig14.max_scaling(result, "TraditionalStack")
    print("\nmax ratio vs UnifiedMMap:", vs_unified)
    print("max ratio vs TraditionalStack:", vs_traditional)

    # FlatFlash wins every workload, most on the update-heavy ones.
    for workload in ("TPCC", "TPCB", "TATP"):
        assert vs_unified[workload] > 1.0
        assert vs_traditional[workload] > 1.2
    assert vs_unified["TPCB"] > vs_unified["TATP"]

    # Throughput grows with threads for FlatFlash (it scales).
    for workload in ("TPCC", "TPCB", "TATP"):
        series = [
            row["throughput_tps"]
            for row in result.filtered(workload=workload, system="FlatFlash")
        ]
        assert series == sorted(series)


def test_fig14d_device_latency_sweep(once):
    result = once(
        fig14.run_device_latency_sweep,
        latencies_us=[20, 10, 5, 1],
        transactions_per_thread=50,
    )
    fig14.render_sweep(result).print()

    # FlatFlash's advantage over UnifiedMMap grows as the device gets
    # faster (its commit path is PCIe-bound, not flash-bound).
    ratios = []
    for latency_us in (20, 10, 5, 1):
        flat = result.filtered(device_latency_us=latency_us, system="FlatFlash")[0]
        unified = result.filtered(device_latency_us=latency_us, system="UnifiedMMap")[0]
        ratios.append(flat["throughput_tps"] / unified["throughput_tps"])
    print("\nFlatFlash/UnifiedMMap ratio by device latency:", ratios)
    assert ratios[-1] > ratios[0]
    assert ratios[-1] > 2.0  # paper: up to 5.3x at the fastest devices
