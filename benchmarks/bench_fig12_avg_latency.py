"""Figure 12: YCSB-B/D mean latency and cache hit ratio.

Paper shape: FlatFlash improves the mean by 1.1-1.4x vs UnifiedMMap and
1.2-3.2x vs TraditionalStack; hit-ratio lines explain the gap — locality
is served from DRAM/caches while the random remainder rides byte-granular
MMIO instead of paging.
"""

from repro.experiments import fig11_12


def test_fig12_average_latency(once):
    result = once(fig11_12.run, ws_ratios=[4, 8, 16], num_ops=6_000)
    fig11_12.render(result).print()

    for row in result.filtered(system="FlatFlash"):
        unified = result.filtered(
            system="UnifiedMMap", workload=row["workload"], ws_ratio=row["ws_ratio"]
        )[0]
        traditional = result.filtered(
            system="TraditionalStack", workload=row["workload"], ws_ratio=row["ws_ratio"]
        )[0]
        # Mean latency ordering.
        assert row["mean_ns"] < unified["mean_ns"] < traditional["mean_ns"]

    # Mean latency grows as the working set outgrows DRAM (both systems).
    for system in ("FlatFlash", "UnifiedMMap"):
        for workload in ("YCSB-B", "YCSB-D"):
            series = [
                row["mean_ns"]
                for row in result.filtered(system=system, workload=workload)
            ]
            assert series[0] < series[-1]
